"""Unit tests for unification and matching (repro.datalog.unify)."""


from repro import Constant, LinExpr, Struct, Variable
from repro.datalog.unify import (
    compose,
    match,
    match_sequences,
    resolve,
    unify,
    unify_sequences,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestUnify:
    def test_identical(self):
        assert unify(a, a) == {}
        assert unify(X, X) == {}

    def test_variable_to_constant(self):
        assert unify(X, a) == {X: a}
        assert unify(a, X) == {X: a}

    def test_variable_to_variable(self):
        subst = unify(X, Y)
        assert subst in ({X: Y}, {Y: X})

    def test_clash(self):
        assert unify(a, b) is None

    def test_struct_decomposition(self):
        subst = unify(Struct("f", (X, b)), Struct("f", (a, Y)))
        assert subst == {X: a, Y: b}

    def test_functor_mismatch(self):
        assert unify(Struct("f", (X,)), Struct("g", (X,))) is None

    def test_arity_mismatch(self):
        assert unify(Struct("f", (X,)), Struct("f", (X, Y))) is None

    def test_occurs_check(self):
        assert unify(X, Struct("f", (X,))) is None
        assert unify(X, Struct("f", (X,)), occurs_check=False) is not None

    def test_chained_resolution(self):
        subst = unify(X, Y)
        subst = unify(Y, a, subst)
        assert resolve(X, subst) == a

    def test_input_not_mutated(self):
        base = {X: a}
        out = unify(Y, b, base)
        assert base == {X: a}
        assert out == {X: a, Y: b}

    def test_sequences(self):
        subst = unify_sequences((X, Y), (a, b))
        assert subst == {X: a, Y: b}
        assert unify_sequences((X,), (a, b)) is None

    def test_shared_variable_consistency(self):
        assert unify_sequences((X, X), (a, b)) is None
        assert unify_sequences((X, X), (a, a)) == {X: a}


class TestLinExprUnification:
    def test_solve_on_match(self):
        expr = LinExpr(X, 2, 2)
        subst = unify(expr, Constant(6))
        assert subst == {X: Constant(2)}

    def test_unsolvable(self):
        expr = LinExpr(X, 2, 2)
        assert unify(expr, Constant(5)) is None

    def test_against_non_integer(self):
        assert unify(LinExpr(X, 2, 0), Constant("a")) is None

    def test_identical_exprs_unify_vars(self):
        left = LinExpr(X, 2, 1)
        right = LinExpr(Y, 2, 1)
        subst = unify(left, right)
        assert subst in ({X: Y}, {Y: X})

    def test_different_coefficients_fail(self):
        assert unify(LinExpr(X, 2, 1), LinExpr(Y, 3, 1)) is None

    def test_evaluates_when_var_bound(self):
        subst = {X: Constant(3)}
        out = unify(LinExpr(X, 2, 1), Y, subst)
        assert resolve(Y, out) == Constant(7)


class TestMatch:
    def test_one_way(self):
        subst = match(Struct("f", (X,)), Struct("f", (a,)))
        assert subst == {X: a}

    def test_ground_mismatch(self):
        assert match(a, b) is None

    def test_sequences_with_seed(self):
        subst = match_sequences((X, Y), (a, b), {Z: a})
        assert subst == {Z: a, X: a, Y: b}

    def test_repeated_variable(self):
        assert match_sequences((X, X), (a, b)) is None
        assert match_sequences((X, X), (a, a)) == {X: a}

    def test_linexpr_inversion(self):
        subst = match(LinExpr(X, 5, 4), Constant(14))
        assert subst == {X: Constant(2)}
        assert match(LinExpr(X, 5, 4), Constant(13)) is None


class TestCompose:
    def test_apply_outer_after_inner(self):
        inner = {X: Struct("f", (Y,))}
        outer = {Y: a}
        composed = compose(outer, inner)
        assert composed[X] == Struct("f", (a,))
        assert composed[Y] == a
