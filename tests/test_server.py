"""The query server (repro.server): MVCC snapshots, scheduling, wire.

Five layers of guarantees:

* **Copy-on-write.**  ``Database.snapshot()`` is O(#relations) and
  shares ``Relation`` objects until a side mutates; the first mutation
  through either database's methods clones the touched relation for
  the mutating side only, and ``check_integrity()`` stays clean on
  both sides throughout.
* **Scheduling.**  Reads run against pinned refcounted snapshots;
  identical in-flight cold queries coalesce into exactly one
  evaluation; mutations serialize through one writer and publish
  atomically; budgets are capped by server config.
* **Snapshot isolation.**  A reader pinned at version V observes
  identical rows before/during/after a concurrent writer advances to
  V+1 -- across compiled semi-naive, supplementary-magic, and
  view-served paths, including a hypothesis property over random
  mutation scripts.
* **Writer atomicity.**  A mutation batch that fails mid-way (parse
  error, injected fault) is rolled back via the mutation log's
  inverse: the live database returns to its pre-batch state, no new
  version is published, and published snapshots never show a partial
  batch.
* **The wire.**  Request validation, structured errors carrying
  CLI-compatible exit codes, the TCP client, stats, graceful drain.
"""

import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database
from repro.session import Session
from repro.server import (
    ERROR_EXIT_CODES,
    ProtocolError,
    ReproClient,
    ReproServer,
    ServerConfig,
    ServerError,
    ServerHandle,
    SnapshotManager,
)
from repro.server.protocol import (
    decode_line,
    encode_message,
    normalize_options,
    sorted_rows,
    validate_request,
)
from repro.server.scheduler import MutationScheduler

ANCESTOR = """
par(john, alice). par(alice, ted). par(ted, zoe).
anc(X, Y) :- par(X, Y).
anc(X, Z) :- par(X, Y), anc(Y, Z).
"""

BOM = """
part(engine). part(piston). part(bolt).
sub(engine, piston). sub(piston, bolt).
uses(X, Y) :- sub(X, Y).
uses(X, Z) :- sub(X, Y), uses(Y, Z).
banned(bolt).
ok(X) :- part(X), not banned(X).
"""


def chain_db(depth):
    db = Database()
    db.add_values("par", [(f"n{i}", f"n{i + 1}") for i in range(depth)])
    return db


# ----------------------------------------------------------------------
# copy-on-write snapshots (Database.snapshot)
# ----------------------------------------------------------------------
class TestCopyOnWrite:
    def test_snapshot_shares_relation_objects(self):
        db = chain_db(3)
        snap = db.snapshot()
        assert snap.get("par") is db.get("par")
        assert snap.version == db.version

    def test_write_clones_only_touched_relation(self):
        db = chain_db(3)
        db.add_values("lab", [("n0", "x")])
        snap = db.snapshot()
        shared_par = snap.get("par")
        db.add_values("par", [("n3", "n4")])
        # par was cloned for the writer; lab is still the same object
        assert db.get("par") is not shared_par
        assert snap.get("par") is shared_par
        assert snap.get("lab") is db.get("lab")

    def test_snapshot_is_frozen_under_writes(self):
        db = chain_db(3)
        snap = db.snapshot()
        before = snap.tuples("par")
        db.add_values("par", [("n3", "n4")])
        db.retract_values("par", [("n0", "n1")])
        assert snap.tuples("par") == before
        assert len(db.get("par")) == 3

    def test_snapshot_side_write_clones_for_snapshot(self):
        db = chain_db(3)
        snap = db.snapshot()
        snap.add_values("par", [("m0", "m1")])
        assert len(snap.get("par")) == 4
        assert len(db.get("par")) == 3
        assert snap.get("par") is not db.get("par")

    def test_integrity_clean_on_both_sides(self):
        db = chain_db(3)
        snap = db.snapshot()
        db.add_values("par", [("n3", "n4")])
        snap.retract_values("par", [("n0", "n1")])
        assert db.check_integrity()
        assert snap.check_integrity()

    def test_chained_snapshots(self):
        db = chain_db(2)
        snap1 = db.snapshot()
        db.add_values("par", [("a", "b")])
        snap2 = db.snapshot()
        db.add_values("par", [("c", "d")])
        assert len(snap1.get("par")) == 2
        assert len(snap2.get("par")) == 3
        assert len(db.get("par")) == 4
        for side in (db, snap1, snap2):
            assert side.check_integrity()

    def test_new_relation_invisible_to_snapshot(self):
        db = chain_db(2)
        snap = db.snapshot()
        db.add_values("extra", [("e",)])
        assert "extra" not in snap
        assert db.check_integrity()

    def test_copy_starts_unshared(self):
        db = chain_db(2)
        db.snapshot()
        dup = db.copy()
        assert dup._shared == set()
        assert dup.check_integrity()


class TestSnapshotManager:
    def test_refcounting_retires_old_versions(self):
        db = chain_db(2)
        manager = SnapshotManager(db)
        manager.publish()
        first = manager.current()
        assert manager.live_count == 1
        db.add_values("par", [("x", "y")])
        manager.publish()
        # the old version survives while the reader still holds it
        assert manager.live_count == 2
        assert len(first.db.tuples("par")) == 2
        first.release()
        assert manager.live_count == 1

    def test_acquire_after_retire_is_an_error(self):
        db = chain_db(1)
        manager = SnapshotManager(db)
        manager.publish()
        snap = manager.current()
        manager.publish()
        snap.release()
        with pytest.raises(RuntimeError):
            snap.acquire()

    def test_current_tracks_database_version(self):
        db = chain_db(1)
        manager = SnapshotManager(db)
        manager.publish()
        v0 = manager.current_version
        db.add_values("par", [("x", "y")])
        manager.publish()
        assert manager.current_version == v0 + 1


# ----------------------------------------------------------------------
# protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        msg = {"op": "query", "query": "anc(john, X)?", "id": 7}
        assert decode_line(encode_message(msg).strip()) == msg

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_line(b"{nope")
        assert err.value.code == "parse_error"
        assert err.value.exit_code == 2

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            validate_request({"op": "frobnicate"})
        assert err.value.code == "bad_request"

    def test_query_requires_text(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "query", "query": ""})

    def test_facts_must_be_strings(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "assert", "facts": [1, 2]})
        with pytest.raises(ProtocolError):
            validate_request({"op": "retract", "facts": []})

    def test_unknown_option_rejected(self):
        with pytest.raises(ProtocolError) as err:
            normalize_options({"max_fact": 10})
        assert "max_fact" in str(err.value)

    def test_option_types_checked(self):
        with pytest.raises(ProtocolError):
            normalize_options({"timeout": -1})
        with pytest.raises(ProtocolError):
            normalize_options({"max_facts": True})
        assert normalize_options({"timeout": 2})["timeout"] == 2.0

    def test_exit_codes_match_cli_conventions(self):
        assert ERROR_EXIT_CODES["budget_exceeded"] == 4
        assert ERROR_EXIT_CODES["evaluation_error"] == 1
        assert ERROR_EXIT_CODES["bad_request"] == 2

    def test_sorted_rows_deterministic(self):
        rows = {("b", 2), ("a", 1), ("a", 0)}
        assert sorted_rows(rows) == [["a", 0], ["a", 1], ["b", 2]]


# ----------------------------------------------------------------------
# the served surface (in-process handle + TCP)
# ----------------------------------------------------------------------
class TestServerHandle:
    def test_cold_then_memo(self):
        with ServerHandle.start(ANCESTOR) as handle:
            first = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert first["ok"] and first["served"] == "cold"
            assert first["row_count"] == 3
            again = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert again["served"] == "memo"
            assert again["rows"] == first["rows"]

    def test_mutation_advances_version_and_invalidates(self):
        with ServerHandle.start(ANCESTOR) as handle:
            first = handle.request({"op": "query", "query": "anc(john, X)?"})
            done = handle.request(
                {"op": "assert", "facts": ["par(zoe, ann)."]}
            )
            assert done["ok"] and done["changed"] == 1
            assert done["version"] > first["version"]
            after = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert after["served"] == "cold"
            assert after["row_count"] == 4

    def test_retract(self):
        with ServerHandle.start(ANCESTOR) as handle:
            done = handle.request(
                {"op": "retract", "facts": ["par(ted, zoe)."]}
            )
            assert done["changed"] == 1
            rows = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert rows["row_count"] == 2

    def test_error_payload_carries_exit_code(self):
        with ServerHandle.start(ANCESTOR) as handle:
            bad = handle.request({"op": "query", "query": "anc(john, X)?",
                                  "options": {"method": "nope"}})
            assert not bad["ok"]
            assert bad["error"]["code"] == "bad_request"
            assert bad["error"]["exit_code"] == 2

    def test_budget_cap_applies_server_side(self):
        config = ServerConfig(max_facts=1)
        with ServerHandle.start(ANCESTOR, config=config) as handle:
            out = handle.request(
                {"op": "query", "query": "anc(john, X)?",
                 "options": {"max_facts": 10_000_000}}
            )
            assert not out["ok"]
            assert out["error"]["code"] == "budget_exceeded"
            assert out["error"]["exit_code"] == 4

    def test_stats_surface(self):
        with ServerHandle.start(ANCESTOR) as handle:
            handle.request({"op": "query", "query": "anc(john, X)?"})
            handle.request({"op": "query", "query": "anc(john, X)?"})
            stats = handle.stats()
            for key in (
                "qps", "latency_p50", "latency_p95", "memo_hits",
                "coalesced", "cold_evaluations", "snapshots_live",
                "snapshots_published", "view_serves", "version",
            ):
                assert key in stats, key
            assert stats["queries"] == 2
            assert stats["memo_hits"] == 1

    def test_drain_refuses_new_requests(self):
        with ServerHandle.start(ANCESTOR) as handle:
            # enter drain mode without stopping (deterministic window)
            handle.server._draining = True
            out = handle.request({"op": "ping"})
            assert not out["ok"]
            assert out["error"]["code"] == "shutting_down"
            assert out["error"]["exit_code"] == 5
            # stats stays observable while draining
            assert handle.request({"op": "stats"})["ok"]
            handle.server._draining = False
            assert handle.request({"op": "ping"})["ok"]

    def test_shutdown_op_stops_cleanly(self):
        handle = ServerHandle.start(ANCESTOR)
        out = handle.request({"op": "shutdown"})
        assert out["ok"] and out["stopping"]
        handle._thread.join(timeout=5)
        assert not handle._thread.is_alive()
        handle.close()  # idempotent after self-stop

    def test_coalescing_counts_one_evaluation(self):
        # N identical cold queries in flight together -> 1 evaluation
        with ServerHandle.start(ANCESTOR) as handle:
            n = 8
            results = [None] * n
            barrier = threading.Barrier(n)

            def fire(i):
                barrier.wait()
                results[i] = handle.request(
                    {"op": "query", "query": "anc(john, X)?",
                     "options": {"method": "seminaive"}}
                )

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r["ok"] and r["row_count"] == 3 for r in results)
            stats = handle.stats()
            assert stats["cold_evaluations"] == 1
            served = {r["served"] for r in results}
            assert "cold" in served
            assert (
                stats["coalesced"] + stats["memo_hits"] == n - 1
            ), stats


class TestTcp:
    def test_client_roundtrip(self):
        with ServerHandle.start(ANCESTOR) as handle:
            host, port = handle.address
            with ReproClient(host, port) as client:
                out = client.query("anc(john, X)?")
                assert out["row_count"] == 3
                client.assert_facts(["par(zoe, ann)."])
                assert client.query("anc(john, X)?")["row_count"] == 4
                assert client.ping()["pong"] is True
                assert "qps" in client.stats()

    def test_server_error_raises(self):
        with ServerHandle.start(ANCESTOR) as handle:
            host, port = handle.address
            with ReproClient(host, port) as client:
                with pytest.raises(ServerError) as err:
                    client.query("anc(john, X", method="auto")
                assert err.value.exit_code in (1, 2)

    def test_negation_program_served(self):
        with ServerHandle.start(BOM) as handle:
            host, port = handle.address
            with ReproClient(host, port) as client:
                out = client.query("ok(X)?")
                assert sorted(r[0] for r in out["rows"]) == [
                    "engine", "piston"
                ]


# ----------------------------------------------------------------------
# view serving
# ----------------------------------------------------------------------
class TestViewServing:
    def test_view_served_and_maintained_across_writes(self):
        with ServerHandle.start(
            ANCESTOR, materialize=["anc"]
        ) as handle:
            out = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert out["served"] == "view"
            assert out["row_count"] == 3
            done = handle.request(
                {"op": "assert", "facts": ["par(zoe, ann)."]}
            )
            assert done["views_published"] == ["anc"]
            after = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert after["served"] == "view"
            assert after["row_count"] == 4

    def test_view_selection_is_exact(self):
        with ServerHandle.start(
            ANCESTOR, materialize=["anc"]
        ) as handle:
            bound = handle.request(
                {"op": "query", "query": "anc(john, zoe)?"}
            )
            assert bound["served"] == "view"
            assert bound["rows"] == [[]]  # boolean yes: one empty row
            miss = handle.request({"op": "query", "query": "anc(zoe, X)?"})
            assert miss["served"] == "view"
            assert miss["row_count"] == 0

    def test_explicit_materialized_method_without_view_is_an_error(self):
        with ServerHandle.start(ANCESTOR) as handle:
            out = handle.request(
                {"op": "query", "query": "anc(john, X)?",
                 "options": {"method": "materialized"}}
            )
            assert not out["ok"]
            assert out["error"]["code"] == "bad_request"

    def test_stale_views_fall_back_cold(self):
        with ServerHandle.start(
            ANCESTOR, materialize=["anc"]
        ) as handle:
            os.environ["REPRO_FAULT_INJECT"] = "any:1"
            try:
                done = handle.request(
                    {"op": "assert", "facts": ["par(zoe, ann)."]}
                )
            finally:
                del os.environ["REPRO_FAULT_INJECT"]
            # the maintenance pass aborted: the write committed, but no
            # stale view was published with the new version
            assert done["ok"]
            assert done["views_published"] == []
            out = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert out["served"] == "cold"
            assert out["row_count"] == 4


# ----------------------------------------------------------------------
# writer atomicity under failure
# ----------------------------------------------------------------------
class TestWriterAtomicity:
    def test_bad_fact_mid_batch_rolls_back(self):
        with ServerHandle.start(ANCESTOR) as handle:
            server = handle.server
            before_rows = handle.request(
                {"op": "query", "query": "anc(john, X)?"}
            )
            version = server.snapshots.current_version
            live_version = server.session.database.version
            out = handle.request(
                {"op": "assert",
                 "facts": ["par(x1, x2).", "par(x2, x3).", "@@@ bad"]}
            )
            assert not out["ok"]
            assert out["error"]["exit_code"] == 2
            # no new version published; the live database rolled back
            assert server.snapshots.current_version == version
            from repro.core.pipeline import unwrap_values

            assert unwrap_values(
                server.session.database.tuples("par")
            ) == {("john", "alice"), ("alice", "ted"), ("ted", "zoe")}
            assert server.session.database.check_integrity()
            # rollback itself bumps the monotone counter (never rewinds)
            assert server.session.database.version >= live_version
            after_rows = handle.request(
                {"op": "query", "query": "anc(john, X)?"}
            )
            assert after_rows["rows"] == before_rows["rows"]
            assert handle.stats()["mutations_rolled_back"] == 1

    def test_fault_injected_writer_abort_leaves_snapshots_intact(self):
        with ServerHandle.start(
            ANCESTOR, materialize=["anc"]
        ) as handle:
            server = handle.server
            baseline = handle.request(
                {"op": "query", "query": "anc(john, X)?"}
            )
            os.environ["REPRO_FAULT_INJECT"] = "any:1"
            try:
                done = handle.request(
                    {"op": "assert", "facts": ["par(zoe, ann)."]}
                )
            finally:
                del os.environ["REPRO_FAULT_INJECT"]
            assert done["ok"]
            assert server.session.database.check_integrity()
            snap = server.snapshots.current()
            try:
                assert snap.db.check_integrity()
                # the snapshot shows the whole committed batch
                from repro.core.pipeline import unwrap_values

                assert ("zoe", "ann") in unwrap_values(
                    snap.db.tuples("par")
                )
            finally:
                snap.release()
            after = handle.request({"op": "query", "query": "anc(john, X)?"})
            assert after["row_count"] == baseline["row_count"] + 1


# ----------------------------------------------------------------------
# snapshot isolation
# ----------------------------------------------------------------------
def _rows(database, query, method):
    session = Session(program=_PROGRAM, database=database, memo_size=1)
    return session.query(_QUERY_TEXT, method=method).rows


_PROGRAM = None
_QUERY_TEXT = "anc(n0, X)?"


def _isolation_fixture(depth=6):
    from repro.datalog.parser import parse_program

    global _PROGRAM
    source = (
        "anc(X, Y) :- par(X, Y).\n"
        "anc(X, Z) :- par(X, Y), anc(Y, Z).\n"
    )
    parsed = parse_program(source)
    _PROGRAM = parsed.program
    db = chain_db(depth)
    session = Session(program=parsed.program, database=db)
    return session, db


class TestSnapshotIsolation:
    @pytest.mark.parametrize("method", ["seminaive", "supplementary_magic"])
    def test_pinned_reader_sees_frozen_rows(self, method):
        session, db = _isolation_fixture()
        manager = SnapshotManager(db)
        manager.publish()
        pinned = manager.current()
        expected = _rows(pinned.db, _QUERY_TEXT, method)
        # the writer advances several versions under the reader
        for step in range(3):
            session.assert_("par", f"x{step}", f"x{step + 1}")
            manager.publish()
            assert _rows(pinned.db, _QUERY_TEXT, method) == expected
        session.retract("par", "n0", "n1")
        manager.publish()
        assert _rows(pinned.db, _QUERY_TEXT, method) == expected
        # a fresh reader sees the new version
        fresh = manager.current()
        assert _rows(fresh.db, _QUERY_TEXT, method) != expected
        fresh.release()
        pinned.release()

    def test_pinned_reader_concurrent_with_writer_thread(self):
        session, db = _isolation_fixture(depth=30)
        manager = SnapshotManager(db)
        manager.publish()
        pinned = manager.current()
        expected = _rows(pinned.db, _QUERY_TEXT, "seminaive")
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                got = _rows(pinned.db, _QUERY_TEXT, "seminaive")
                if got != expected:
                    failures.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for step in range(40):
            if step % 3 == 2:
                session.retract("par", f"m{step - 1}", f"m{step}")
            else:
                session.assert_("par", f"m{step}", f"m{step + 1}")
            manager.publish()
        stop.set()
        for t in threads:
            t.join()
        assert not failures
        assert _rows(pinned.db, _QUERY_TEXT, "seminaive") == expected
        assert db.check_integrity()
        pinned.release()

    def test_view_served_path_is_isolated(self):
        with ServerHandle.start(
            ANCESTOR, materialize=["anc"]
        ) as handle:
            server = handle.server
            pinned = server.snapshots.current()
            try:
                frozen_view = pinned.views["anc"]
                before = set(frozen_view)
                handle.request(
                    {"op": "assert", "facts": ["par(zoe, ann)."]}
                )
                # the pinned version's frozen view is untouched by the
                # maintenance pass that produced the next version
                assert set(frozen_view) == before
                out = handle.request(
                    {"op": "query", "query": "anc(john, X)?"}
                )
                assert out["served"] == "view"
                assert out["row_count"] == 4  # new version sees the write
            finally:
                pinned.release()

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from(["assert", "retract"]),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_random_mutation_scripts_never_leak(self, script):
        """Property: whatever the writer does, a pinned reader's rows
        never change, on the cold paths and the view-served path."""
        session, db = _isolation_fixture(depth=5)
        view_session = Session(program=_PROGRAM, database=db)
        view_session.materialize("anc")
        manager = SnapshotManager(db)
        manager.publish(view_session.materialized_relations())
        pinned = manager.current()
        expected = {
            method: _rows(pinned.db, _QUERY_TEXT, method)
            for method in ("seminaive", "supplementary_magic")
        }
        from repro.server.scheduler import _select_from_relation
        from repro.datalog.parser import parse_query

        query = parse_query(_QUERY_TEXT)
        expected_view = _select_from_relation(
            pinned.views["anc"], query
        )
        assert expected_view == expected["seminaive"]
        for op, a, b in script:
            fact = ("par", f"p{a}", f"p{b}")
            if op == "assert":
                view_session.assert_(*fact)
            else:
                view_session.retract(*fact)
            manager.publish(view_session.materialized_relations())
            for method, rows in expected.items():
                assert _rows(pinned.db, _QUERY_TEXT, method) == rows
            assert (
                _select_from_relation(pinned.views["anc"], query)
                == expected_view
            )
        assert db.check_integrity()
        assert pinned.db.check_integrity()
        pinned.release()


# ----------------------------------------------------------------------
# writer rollback unit (no asyncio)
# ----------------------------------------------------------------------
class TestRollbackUnit:
    def test_inverse_replay_restores_contents(self):
        session, db = _isolation_fixture(depth=3)
        before = db.tuples("par")
        log = db.start_mutation_log()
        session.assert_("par", "q1", "q2")
        session.retract("par", "n0", "n1")
        db.stop_mutation_log(log)
        MutationScheduler._rollback(db, log)
        assert db.tuples("par") == before
        assert db.check_integrity()
