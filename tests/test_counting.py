"""Generalized counting -- Section 6, Appendix A.5 (experiment E4)."""

import pytest

from repro import (
    NonTerminationError,
    RewriteError,
    adorn_program,
    evaluate,
    parse_program,
    parse_query,
    rewrite,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import assert_rules_equal, canonical_rules


def gc(program, query, **kwargs):
    return rewrite(program, query, method="counting", **kwargs)


class TestAppendixA5:
    def test_ancestor(self):
        rewritten = gc(ancestor_program(), ancestor_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "anc_ix_bf(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), "
                "par(D, E).",
                "anc_ix_bf(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), "
                "par(D, F), anc_ix_bf(A+1, 2*B+2, 2*C+2, F, E).",
                "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- "
                "cnt_anc_bf(A, B, C, E), par(E, D).",
            ],
        )
        assert [str(s) for s in rewritten.seed_facts] == [
            "cnt_anc_bf(0, 0, 0, john)"
        ]

    def test_nonlinear_samegen_example_6(self):
        rewritten = gc(nonlinear_samegen_program(), samegen_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- "
                "cnt_sg_bf(A, B, C, E), up(E, D).",
                "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- "
                "cnt_sg_bf(A, B, C, E), up(E, F), "
                "sg_ix_bf(A+1, 2*B+2, 5*C+2, F, G), flat(G, D).",
                "sg_ix_bf(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), "
                "flat(D, E).",
                "sg_ix_bf(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), "
                "up(D, F), sg_ix_bf(A+1, 2*B+2, 5*C+2, F, G), flat(G, H), "
                "sg_ix_bf(A+1, 2*B+2, 5*C+4, H, I), down(I, E).",
            ],
        )

    def test_nested_samegen(self):
        rewritten = gc(
            nested_samegen_program(), nested_samegen_query("john")
        )
        rules = canonical_rules(rewritten)
        # the cnt chain p -> sg and the recursion use distinct codes
        assert (
            "cnt_sg_bf(A+1, 4*B+2, 3*C+1, D) :- cnt_p_bf(A, B, C, D)."
            in rules
        )
        assert (
            "cnt_sg_bf(A+1, 4*B+4, 3*C+2, D) :- cnt_sg_bf(A, B, C, E), "
            "up(E, D)." in rules
        )

    def test_list_reverse(self):
        rewritten = gc(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        rules = canonical_rules(rewritten)
        # the bound argument shrinks along the recursion ([E|D] -> D)
        assert (
            "cnt_reverse_bf(A+1, 4*B+2, 2*C+1, D) :- "
            "cnt_reverse_bf(A, B, C, [E | D])." in rules
        )
        # append's counting rule is seeded from reverse's sip arc
        assert any(r.startswith("cnt_append_bbf(") for r in rules)


class TestIndexSemantics:
    """The indices buy no selectivity: projecting them out recovers the
    magic-sets facts (Section 6's explicit remark)."""

    def test_projection_equals_magic(self):
        program = ancestor_program()
        query = ancestor_query("n0")
        db = chain_database(7)

        magic = rewrite(program, query, method="magic")
        magic_result = evaluate(magic.program, magic.seeded_database(db))
        magic_facts = magic_result.database.tuples("anc^bf")

        counting = gc(program, query)
        counting_result = evaluate(
            counting.program, counting.seeded_database(db)
        )
        indexed = counting_result.database.tuples("anc_ix_bf")
        projected = {row[3:] for row in indexed}
        assert projected == magic_facts

    def test_structural_mode_same_answers(self):
        program = ancestor_program()
        query = ancestor_query("n0")
        db = chain_database(7)
        numeric = gc(program, query, mode="numeric")
        structural = gc(program, query, mode="structural")
        answers = {}
        for name, rw in (("numeric", numeric), ("structural", structural)):
            result = evaluate(rw.program, rw.seeded_database(db))
            answers[name] = rw.extract_answers(result)
        assert answers["numeric"] == answers["structural"]
        assert structural.index_arity == 1
        assert numeric.index_arity == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            gc(ancestor_program(), ancestor_query("a"), mode="weird")


class TestDivergence:
    """Theorem 10.3 behaviour: counting diverges where magic does not."""

    def test_nonlinear_ancestor_diverges_even_on_chains(self):
        rewritten = gc(nonlinear_ancestor_program(), ancestor_query("n0"))
        db = chain_database(4)
        with pytest.raises(NonTerminationError):
            evaluate(
                rewritten.program,
                rewritten.seeded_database(db),
                max_facts=3000,
            )

    def test_linear_ancestor_diverges_on_cyclic_data(self):
        rewritten = gc(ancestor_program(), ancestor_query("n0"))
        db = cycle_database(4)
        with pytest.raises(NonTerminationError):
            evaluate(
                rewritten.program,
                rewritten.seeded_database(db),
                max_iterations=120,
            )

    def test_magic_terminates_on_both(self):
        magic = rewrite(
            nonlinear_ancestor_program(), ancestor_query("n0"), method="magic"
        )
        evaluate(magic.program, magic.seeded_database(chain_database(4)))
        magic2 = rewrite(
            ancestor_program(), ancestor_query("n0"), method="magic"
        )
        evaluate(magic2.program, magic2.seeded_database(cycle_database(4)))


class TestRangeRestriction:
    def test_unindexable_partial_sip_rejected(self):
        """A sip passing bindings through an all-base tail with the head
        excluded cannot carry indices (Section 6 footnote territory)."""
        from repro.core.sips import HEAD, Sip, SipArc, build_full_sip
        from repro import Variable

        program = parse_program(
            """
            r(X, Y) :- e(X, Y).
            r(X, Y) :- f(X, W), g(W, Z), r(Z, Y).
            """
        ).program

        def builder(rule, adornment, is_derived):
            if len(rule.body) != 3:
                return build_full_sip(rule, adornment, is_derived)
            W, X, Z = Variable("W"), Variable("X"), Variable("Z")
            return Sip(
                rule,
                adornment,
                (
                    SipArc({HEAD}, 0, {X}),
                    SipArc({0}, 1, {W}),
                    SipArc({1}, 2, {Z}),  # tail {g}: base only, no index
                ),
            )

        adorned = adorn_program(
            program, parse_query("r(a, Y)?"), sip_builder=builder
        )
        from repro.core.counting import counting_rewrite

        with pytest.raises(RewriteError):
            counting_rewrite(adorned)
