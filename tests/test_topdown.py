"""The QSQ evaluator -- the reference sip strategy (Section 9's oracle)."""

import pytest

from repro import (
    EvaluationError,
    NonTerminationError,
    adorn_program,
    bottom_up_answer,
    qsq_evaluate,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    integer_list,
    list_reverse_program,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    random_dag_database,
    reverse_query,
    samegen_database,
    samegen_query,
)
from repro.datalog.database import Database


def run_qsq(program, query, db, **kwargs):
    adorned = adorn_program(program, query)
    result = qsq_evaluate(
        adorned.program, db, adorned.query_literal, **kwargs
    )
    return adorned, result


class TestAnswers:
    def test_ancestor_chain(self):
        db = chain_database(8)
        adorned, result = run_qsq(ancestor_program(), ancestor_query("n0"), db)
        expected = bottom_up_answer(
            ancestor_program(), db, ancestor_query("n0")
        ).answers
        assert result.query_answers(adorned.query_literal) == expected

    def test_ancestor_cycle_terminates(self):
        db = cycle_database(5)
        adorned, result = run_qsq(ancestor_program(), ancestor_query("n0"), db)
        assert len(result.query_answers(adorned.query_literal)) == 5

    def test_nonlinear_ancestor(self):
        db = random_dag_database(20, 0.15, seed=1)
        q = ancestor_query("n0")
        adorned, result = run_qsq(nonlinear_ancestor_program(), q, db)
        expected = bottom_up_answer(nonlinear_ancestor_program(), db, q).answers
        assert result.query_answers(adorned.query_literal) == expected

    def test_nonlinear_samegen(self):
        db = samegen_database(3, 4, flat_edges=6)
        q = samegen_query("L0_0")
        adorned, result = run_qsq(nonlinear_samegen_program(), q, db)
        expected = bottom_up_answer(
            nonlinear_samegen_program(), db, q
        ).answers
        assert result.query_answers(adorned.query_literal) == expected

    def test_list_reverse(self):
        q = reverse_query(integer_list(4))
        adorned, result = run_qsq(list_reverse_program(), q, Database())
        answers = result.query_answers(adorned.query_literal)
        assert len(answers) == 1
        assert str(next(iter(answers))[0]) == "[3, 2, 1, 0]"


class TestQueriesGenerated:
    def test_magic_set_shape_on_chain(self):
        """Q for anc^bf on a chain from n0 is exactly the reachable
        nodes -- the magic set."""
        db = chain_database(6)
        adorned, result = run_qsq(ancestor_program(), ancestor_query("n0"), db)
        queries = result.queries["anc^bf"]
        names = {str(row[0]) for row in queries}
        assert names == {f"n{i}" for i in range(7)}

    def test_subquery_counter(self):
        db = chain_database(4)
        _, result = run_qsq(ancestor_program(), ancestor_query("n0"), db)
        assert result.subqueries_generated == result.query_count()


class TestBudgets:
    def test_iteration_budget(self):
        from repro import parse_program, parse_query

        program = parse_program(
            """
            s(X, Y) :- base(X, Y).
            s(X, [a | Y]) :- s(X, Y).
            """
        ).program
        db = Database()
        db.add_values("base", [("q", "nil")])
        adorned = adorn_program(program, parse_query("s(q, Y)?"))
        with pytest.raises(NonTerminationError):
            qsq_evaluate(
                adorned.program, db, adorned.query_literal, max_iterations=20
            )

    def test_unknown_query_predicate(self):
        from repro import Literal, Constant

        adorned = adorn_program(ancestor_program(), ancestor_query("a"))
        with pytest.raises(EvaluationError):
            qsq_evaluate(
                adorned.program,
                Database(),
                Literal("nope", (Constant("a"),), "b"),
            )
