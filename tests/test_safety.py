"""Safety analyses -- Section 10 (experiment E9)."""


from repro import (
    Constant,
    Variable,
    adorn_program,
    counting_safety,
    magic_safety,
    parse_program,
    parse_query,
    parse_term,
)
from repro.core.safety import (
    LengthPolynomial,
    all_cycles_positive,
    argument_graph,
    argument_graph_cyclic,
    binding_graph,
    term_length_polynomial,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    reverse_query,
)


class TestLengthPolynomials:
    def test_constant_length(self):
        assert term_length_polynomial(Constant(1)) == LengthPolynomial(1)

    def test_variable_length(self):
        poly = term_length_polynomial(Variable("X"))
        assert poly.const == 0
        assert poly.coeff_map() == {"X": 1}

    def test_struct_length(self):
        # |X.X| = 2|X| + 1 (the paper's example)
        term = parse_term("[X | X]")
        poly = term_length_polynomial(term)
        assert poly.const == 1
        assert poly.coeff_map() == {"X": 2}

    def test_lower_bound_default(self):
        # |X.X| >= 3 with |X| >= 1
        poly = term_length_polynomial(parse_term("[X | X]"))
        assert poly.lower_bound() == 3

    def test_lower_bound_with_supplied_bounds(self):
        poly = term_length_polynomial(parse_term("[X | X]"))
        assert poly.lower_bound({"X": (5, 5)}) == 11

    def test_lower_bound_negative_coefficient(self):
        head = term_length_polynomial(Variable("X"))
        body = term_length_polynomial(parse_term("[X | X]"))
        diff = head - body  # -|X| - 1: unbounded below
        assert diff.lower_bound() is None
        assert diff.lower_bound({"X": (1, 10)}) == -11

    def test_arithmetic(self):
        a = LengthPolynomial(1, (("X", 2),))
        b = LengthPolynomial(2, (("X", 1), ("Y", 1)))
        total = a + b
        assert total.const == 3
        assert total.coeff_map() == {"X": 3, "Y": 1}
        diff = a - b
        assert diff.coeff_map() == {"X": 1, "Y": -1}


class TestBindingGraph:
    def test_reverse_arcs_are_positive(self):
        """Theorem 10.1 certifies list reverse: the bound argument loses
        one cons cell per recursive call."""
        adorned = adorn_program(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        graph = binding_graph(adorned)
        assert all_cycles_positive(graph) is True

    def test_datalog_cycles_are_zero(self):
        adorned = adorn_program(ancestor_program(), ancestor_query("a"))
        graph = binding_graph(adorned)
        # for a Datalog program every binding is a constant (|X| = 1);
        # the anc^bf -> anc^bf cycle then has length exactly 0
        bounds = {"X": (1, 1), "Y": (1, 1), "Z": (1, 1)}
        assert all_cycles_positive(graph, bounds) is False
        # without length bounds, |Z| is unbounded above: no verdict
        assert all_cycles_positive(graph) is None

    def test_growing_argument_no_certificate(self):
        program = parse_program(
            """
            s(X) :- seed(X).
            s([a | X]) :- s(X).
            """
        ).program
        adorned = adorn_program(program, parse_query("s(X)?"))
        # all-free query: nothing shrinks (bound arguments are empty on
        # both ends, cycle length 0) -- no certificate, and indeed the
        # program diverges bottom-up
        assert all_cycles_positive(binding_graph(adorned)) is False

    def test_shrinking_argument_certified(self):
        program = parse_program(
            """
            len(X) :- is_nil(X).
            len([H | T]) :- len(T).
            """
        ).program
        adorned = adorn_program(
            program, parse_query("len([a, b])?")
        )
        assert all_cycles_positive(binding_graph(adorned)) is True


class TestMagicSafety:
    def test_datalog_always_safe(self):
        adorned = adorn_program(ancestor_program(), ancestor_query("a"))
        report = magic_safety(adorned)
        assert report.safe is True
        assert report.theorem == "10.2"

    def test_reverse_certified_by_positive_cycles(self):
        adorned = adorn_program(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        report = magic_safety(adorned)
        assert report.safe is True
        assert report.theorem == "10.1"

    def test_growing_program_not_certified(self):
        program = parse_program(
            """
            s(X, Y) :- base(X, Y).
            s(X, [a | Y]) :- s(X, Y), grow(X).
            """
        ).program
        adorned = adorn_program(program, parse_query("s(q, Y)?"))
        report = magic_safety(adorned)
        # bound argument X never shrinks: cycle length 0, no certificate
        assert report.safe is None


class TestArgumentGraph:
    def test_nonlinear_ancestor_cyclic(self):
        """Theorem 10.3's canonical example: anc^bf(1) -> anc^bf(1)."""
        adorned = adorn_program(
            nonlinear_ancestor_program(), ancestor_query("a")
        )
        assert argument_graph_cyclic(adorned) is True
        graph = argument_graph(adorned)
        assert ("anc^bf", 0) in graph.get(("anc^bf", 0), set())

    def test_linear_ancestor_acyclic(self):
        adorned = adorn_program(ancestor_program(), ancestor_query("a"))
        assert argument_graph_cyclic(adorned) is False

    def test_nested_samegen_acyclic(self):
        adorned = adorn_program(
            nested_samegen_program(), nested_samegen_query("a")
        )
        assert argument_graph_cyclic(adorned) is False


class TestCountingSafety:
    def test_nonlinear_ancestor_certified_diverging(self):
        adorned = adorn_program(
            nonlinear_ancestor_program(), ancestor_query("a")
        )
        report = counting_safety(adorned)
        assert report.safe is False
        assert report.theorem == "10.3"

    def test_linear_ancestor_data_dependent(self):
        adorned = adorn_program(ancestor_program(), ancestor_query("a"))
        assert counting_safety(adorned).safe is None
        assert counting_safety(adorned, assume_acyclic_data=True).safe is True

    def test_reverse_certified_safe(self):
        adorned = adorn_program(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        report = counting_safety(adorned)
        assert report.safe is True
        assert report.theorem == "10.1"
