"""Adversarial semijoin cases: programs where the optimization must NOT
fire (or must fire only partially), because bound arguments do real work.

Theorem 8.3's conditions are easy to satisfy accidentally; these tests
pin down the refusal cases and check answers stay correct either way.
"""

import pytest

from repro import (
    Database,
    bottom_up_answer,
    evaluate,
    parse_program,
    parse_query,
    rewrite,
    semijoin_optimize,
)

from conftest import canonical_rules


def run_both(program, query, db, max_iterations=400):
    plain = rewrite(program, query, method="counting")
    optimized = semijoin_optimize(plain)
    plain_res = evaluate(
        plain.program, plain.seeded_database(db), max_iterations=max_iterations
    )
    opt_res = evaluate(
        optimized.program,
        optimized.seeded_database(db),
        max_iterations=max_iterations,
    )
    return plain, optimized, plain_res, opt_res


class TestBoundArgumentDoesRealWork:
    def test_bound_arg_joined_with_base_literal_not_dropped(self):
        """The recursive call's bound argument is re-used by a later base
        literal (a filter): dropping it would change answers."""
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, Z), t(Z, Y), ok(Z).
            """
        ).program
        query = parse_query("t(a, Y)?")
        db = Database()
        db.add_values("e", [("a", "b"), ("b", "c"), ("c", "d")])
        db.add_values("ok", [("b",), ("c",)])
        plain, optimized, plain_res, opt_res = run_both(program, query, db)

        # the occurrence t(Z, Y) has Z also in ok(Z), which is NOT in the
        # arc tail feeding t -- the bound column must survive
        t_rules = [
            r for r in canonical_rules(optimized) if r.startswith("t_ix_bf")
        ]
        assert any("ok(" in r for r in t_rules)
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )
        baseline = bottom_up_answer(program, db, query)
        assert optimized.extract_answers(opt_res) == baseline.answers

    def test_bound_arg_in_head_free_position_not_dropped(self):
        """The recursive call's bound variable also feeds a FREE position
        of the head: dropping the column would lose the value."""
        program = parse_program(
            """
            walk(X, Y, T) :- e(X, Y), tag(X, T).
            walk(X, Y, T) :- e(X, Z), walk(Z, Y, T2), combine(T2, T).
            """
        ).program
        query = parse_query("walk(a, Y, T)?")
        db = Database()
        db.add_values("e", [("a", "b"), ("b", "c")])
        db.add_values("tag", [("a", "t0"), ("b", "t1"), ("c", "t2")])
        db.add_values(
            "combine", [("t1", "u1"), ("t2", "u2"), ("u2", "v2")]
        )
        plain, optimized, plain_res, opt_res = run_both(program, query, db)
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )
        baseline = bottom_up_answer(program, db, query)
        assert optimized.extract_answers(opt_res) == baseline.answers

    def test_shared_bound_variable_across_two_recursive_calls(self):
        """Two recursive occurrences share a bound variable: neither side
        may drop it unilaterally; the optimizer must stay sound."""
        program = parse_program(
            """
            s(X, Y) :- base(X, Y).
            s(X, Y) :- e(X, Z), s(Z, W), s(Z, Y), small(W).
            """
        ).program
        query = parse_query("s(a, Y)?")
        db = Database()
        db.add_values("base", [("b", "y1"), ("c", "y2")])
        db.add_values("e", [("a", "b"), ("b", "c")])
        db.add_values("small", [("y1",), ("y2",)])
        plain, optimized, plain_res, opt_res = run_both(program, query, db)
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )


class TestListReverseStaysIntact:
    def test_no_rule_changes(self):
        """V rides from the magic set through append's data columns:
        every bound argument supports a real join, nothing may fire."""
        from repro.workloads import (
            integer_list,
            list_reverse_program,
            reverse_query,
        )

        plain = rewrite(
            list_reverse_program(),
            reverse_query(integer_list(3)),
            method="counting",
        )
        optimized = semijoin_optimize(plain)
        assert canonical_rules(optimized) == canonical_rules(plain)


class TestPartialFiring:
    def test_one_predicate_drops_the_other_keeps(self):
        """Two recursive predicates, only one satisfies Theorem 8.3:
        the optimizer drops columns for it alone."""
        program = parse_program(
            """
            clean(X, Y) :- e(X, Y).
            clean(X, Y) :- e(X, Z), clean(Z, Y).
            dirty(X, Y) :- e(X, Y).
            dirty(X, Y) :- e(X, Z), dirty(Z, Y), mark(Z).
            top(X, Y) :- clean(X, W), dirty(W, Y).
            """
        ).program
        query = parse_query("top(a, Y)?")
        db = Database()
        db.add_values(
            "e", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e1")]
        )
        db.add_values("mark", [("b",), ("c",), ("d",)])
        plain = rewrite(program, query, method="counting")
        optimized = semijoin_optimize(plain)

        widths = {}
        for rr in optimized.rules:
            head = rr.rule.head
            if head.pred.endswith("_ix_bf"):
                widths[head.pred] = len(head.args)
        # clean keeps no bound column (index walk), dirty keeps its
        # bound column (mark(Z) uses it)
        assert widths["clean_ix_bf"] < widths["dirty_ix_bf"]

        plain_res = evaluate(
            plain.program, plain.seeded_database(db), max_iterations=400
        )
        opt_res = evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=400,
        )
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )
        baseline = bottom_up_answer(program, db, query)
        assert optimized.extract_answers(opt_res) == baseline.answers


class TestSemijoinPreservesDivergenceBehaviour:
    def test_optimized_program_still_diverges_on_cycles(self):
        """The optimization must not accidentally 'fix' counting's
        divergence on cyclic data (the indices still grow)."""
        from repro import NonTerminationError
        from repro.workloads import (
            ancestor_program,
            ancestor_query,
            cycle_database,
        )

        optimized = semijoin_optimize(
            rewrite(ancestor_program(), ancestor_query("n0"), "counting")
        )
        with pytest.raises(NonTerminationError):
            evaluate(
                optimized.program,
                optimized.seeded_database(cycle_database(4)),
                max_iterations=150,
            )
