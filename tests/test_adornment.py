"""Adorned rule sets -- Section 3 and Appendix A.2 (experiment E1)."""

import pytest

from repro import (
    AdornmentError,
    Literal,
    Query,
    Variable,
    adorn_program,
    build_chain_sip,
    parse_program,
    parse_query,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import assert_rules_equal


class TestAppendixA2:
    """The four adorned rule sets of Appendix A.2."""

    def test_ancestor(self):
        adorned = adorn_program(ancestor_program(), ancestor_query("john"))
        assert_rules_equal(
            adorned,
            [
                "anc^bf(A, B) :- par(A, B).",
                "anc^bf(A, B) :- par(A, C), anc^bf(C, B).",
            ],
        )
        assert adorned.query_literal.pred_key == "anc^bf"

    def test_nonlinear_ancestor(self):
        adorned = adorn_program(
            nonlinear_ancestor_program(), ancestor_query("john")
        )
        assert_rules_equal(
            adorned,
            [
                "anc^bf(A, B) :- par(A, B).",
                "anc^bf(A, B) :- anc^bf(A, C), anc^bf(C, B).",
            ],
        )

    def test_nested_samegen(self):
        adorned = adorn_program(
            nested_samegen_program(), nested_samegen_query("john")
        )
        assert_rules_equal(
            adorned,
            [
                "p^bf(A, B) :- b1(A, B).",
                "p^bf(A, B) :- sg^bf(A, C), p^bf(C, D), b2(D, B).",
                "sg^bf(A, B) :- flat(A, B).",
                "sg^bf(A, B) :- up(A, C), sg^bf(C, D), down(D, B).",
            ],
        )

    def test_list_reverse(self):
        adorned = adorn_program(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        assert_rules_equal(
            adorned,
            [
                "append^bbf(A, [B | C], [B | D]) :- append^bbf(A, C, D).",
                "append^bbf(A, [], [A]).",
                "reverse^bf([A | B], C) :- reverse^bf(B, D), append^bbf(A, D, C).",
                "reverse^bf([], []).",
            ],
        )

    def test_nonlinear_samegen_example_3(self):
        """Example 3 of the paper (the adorned nonlinear sg rules)."""
        adorned = adorn_program(
            nonlinear_samegen_program(), samegen_query("john")
        )
        assert_rules_equal(
            adorned,
            [
                "sg^bf(A, B) :- flat(A, B).",
                "sg^bf(A, B) :- up(A, C), sg^bf(C, D), flat(D, E), "
                "sg^bf(E, F), down(F, B).",
            ],
        )

    def test_partial_sip_gives_same_adornments(self):
        """Example 3: the partial sip of Example 2 yields the same
        adorned program (the difference surfaces only in later stages)."""
        full = adorn_program(
            nonlinear_samegen_program(), samegen_query("john")
        )
        partial = adorn_program(
            nonlinear_samegen_program(),
            samegen_query("john"),
            sip_builder=build_chain_sip,
        )
        assert full.program == partial.program


class TestConstruction:
    def test_multiple_adornments_per_predicate(self):
        program = parse_program(
            """
            r(X, Y) :- e(X, Y).
            r(X, Y) :- e(X, Z), r(Z, Y).
            q(X, Y) :- r(X, Z), r(Y, Z).
            """
        ).program
        # q(a, b): first r called bf... and second r called bf via Z? The
        # second r has Y bound and Z bound from the first: adornment bb.
        query = parse_query("q(a, b)?")
        adorned = adorn_program(program, query)
        keys = adorned.adorned_predicates()
        assert "q^bb" in keys
        assert "r^bf" in keys
        assert "r^bb" in keys

    def test_all_free_query_full_sip(self):
        adorned = adorn_program(
            ancestor_program(),
            Query(Literal("anc", (Variable("X"), Variable("Y")))),
        )
        assert adorned.query_literal.pred_key == "anc^ff"
        # even with no query bindings, the full sip passes bindings from
        # the base literal par into the recursive call (the Example 2
        # pattern {flat} -> sg.2): anc^bf appears
        keys = adorned.adorned_predicates()
        assert keys == {"anc^ff", "anc^bf"}

    def test_all_free_query_empty_sip(self):
        from repro import build_empty_sip

        adorned = adorn_program(
            ancestor_program(),
            Query(Literal("anc", (Variable("X"), Variable("Y")))),
            sip_builder=build_empty_sip,
        )
        # with no information passing at all, everything stays all-free
        assert adorned.adorned_predicates() == {"anc^ff"}

    def test_bound_second_argument(self):
        adorned = adorn_program(
            ancestor_program(), parse_query("anc(X, john)?")
        )
        assert adorned.query_literal.pred_key == "anc^fb"
        # with a full left-to-right sip the binding reaches the recursive
        # occurrence through its second argument
        assert "anc^fb" in adorned.adorned_predicates()

    def test_unknown_query_predicate(self):
        with pytest.raises(AdornmentError):
            adorn_program(ancestor_program(), parse_query("nope(a, X)?"))

    def test_termination_with_many_adornments(self):
        # a 3-ary predicate exercised under several binding patterns
        program = parse_program(
            """
            t(X, Y, Z) :- e3(X, Y, Z).
            t(X, Y, Z) :- e3(X, Y, W), t(W, Z, Y).
            """
        ).program
        adorned = adorn_program(program, parse_query("t(a, Y, Z)?"))
        assert len(adorned.adorned_predicates()) >= 1

    def test_max_body_length(self):
        adorned = adorn_program(
            nonlinear_samegen_program(), samegen_query("john")
        )
        assert adorned.max_body_length() == 5

    def test_sip_remapped_to_reordered_body(self):
        # with a query binding the SECOND argument and a greedy
        # (binding-maximizing) order, the body is reordered canonically
        from repro.core.sips import (
            build_full_sip,
            greedy_order,
            sip_builder_with_order,
        )

        program = parse_program("p(X, Y) :- e(X, Z), f(Z, Y).").program
        builder = sip_builder_with_order(build_full_sip, greedy_order)
        adorned = adorn_program(
            program, parse_query("p(X, b)?"), sip_builder=builder
        )
        rule = adorned.rules[0]
        # f receives Y and is evaluated first
        assert rule.body[0].pred == "f"
        assert rule.sip.arcs_into(0)[0].has_head()
