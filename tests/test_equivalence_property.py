"""Property-based equivalence tests (hypothesis).

The paper's central correctness results -- Theorems 3.1/4.1/5.1/6.1/7.1:
each transformation preserves the query's answers on *every* database.
We approximate "every database" with randomized graphs and queries, and
check every method against the naive bottom-up baseline.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import answer_query, bottom_up_answer
from repro.datalog.database import Database
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    samegen_query,
)

# small node universe so that random graphs are dense enough to recurse
NODES = [f"v{i}" for i in range(8)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=24,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def edge_db(edges, relation="par"):
    db = Database()
    db.add_values(relation, set(edges))
    return db


class TestAncestorEquivalence:
    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_all_methods_agree_with_naive(self, edges, root):
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(edges)
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic", "qsq"):
            answer = answer_query(program, db, query, method=method)
            assert answer.answers == baseline.answers, method

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_nonlinear_ancestor(self, edges, root):
        program = nonlinear_ancestor_program()
        query = ancestor_query(root)
        db = edge_db(edges)
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic"):
            answer = answer_query(program, db, query, method=method)
            assert answer.answers == baseline.answers, method

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_counting_on_acyclic_data(self, edges, root):
        """Counting is only safe on acyclic data: orient the random
        edges by node index so cycles cannot arise, then it must agree."""
        acyclic = {(a, b) for a, b in edges if a < b}
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(acyclic)
        baseline = bottom_up_answer(program, db, query)
        for method in ("counting", "supplementary_counting"):
            answer = answer_query(
                program, db, query, method=method, max_iterations=200
            )
            assert answer.answers == baseline.answers, method


class TestSameGenerationEquivalence:
    three_relations = st.tuples(
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        ),
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        ),
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        ),
    )

    @given(data=three_relations, root=st.sampled_from(NODES))
    @SETTINGS
    def test_magic_methods_agree(self, data, root):
        up, flat, down = data
        db = Database()
        db.add_values("up", set(up))
        db.add_values("flat", set(flat))
        db.add_values("down", set(down))
        program = nonlinear_samegen_program()
        query = samegen_query(root)
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic"):
            answer = answer_query(
                program, db, query, method=method, max_iterations=400
            )
            assert answer.answers == baseline.answers, method


class TestEngineAgreementProperty:
    @given(edges=edges_strategy)
    @SETTINGS
    def test_naive_equals_seminaive(self, edges):
        from repro import evaluate_naive, evaluate_seminaive

        program = ancestor_program()
        db = edge_db(edges)
        naive = evaluate_naive(program, db)
        semi = evaluate_seminaive(program, db)
        assert naive.derived_tuples("anc") == semi.derived_tuples("anc")

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_semijoin_preserves_answers_on_acyclic_data(self, edges, root):
        from repro import evaluate, rewrite, semijoin_optimize

        acyclic = {(a, b) for a, b in edges if a < b}
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(acyclic)
        plain = rewrite(program, query, method="counting")
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(
            plain.program, plain.seeded_database(db), max_iterations=200
        )
        opt_res = evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=200,
        )
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )
