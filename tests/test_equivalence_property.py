"""Property-based equivalence tests (hypothesis).

The paper's central correctness results -- Theorems 3.1/4.1/5.1/6.1/7.1:
each transformation preserves the query's answers on *every* database.
We approximate "every database" with randomized graphs and queries, and
check every method against the naive bottom-up baseline.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import answer_query, bottom_up_answer
from repro.datalog.database import Database
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    samegen_query,
)

# small node universe so that random graphs are dense enough to recurse
NODES = [f"v{i}" for i in range(8)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=24,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def edge_db(edges, relation="par"):
    db = Database()
    db.add_values(relation, set(edges))
    return db


class TestAncestorEquivalence:
    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_all_methods_agree_with_naive(self, edges, root):
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(edges)
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic", "qsq"):
            answer = answer_query(program, db, query, method=method)
            assert answer.answers == baseline.answers, method

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_nonlinear_ancestor(self, edges, root):
        program = nonlinear_ancestor_program()
        query = ancestor_query(root)
        db = edge_db(edges)
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic"):
            answer = answer_query(program, db, query, method=method)
            assert answer.answers == baseline.answers, method

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_counting_on_acyclic_data(self, edges, root):
        """Counting is only safe on acyclic data: orient the random
        edges by node index so cycles cannot arise, then it must agree."""
        acyclic = {(a, b) for a, b in edges if a < b}
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(acyclic)
        baseline = bottom_up_answer(program, db, query)
        for method in ("counting", "supplementary_counting"):
            answer = answer_query(
                program, db, query, method=method, max_iterations=200
            )
            assert answer.answers == baseline.answers, method


class TestSameGenerationEquivalence:
    three_relations = st.tuples(
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        ),
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        ),
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        ),
    )

    @given(data=three_relations, root=st.sampled_from(NODES))
    @SETTINGS
    def test_magic_methods_agree(self, data, root):
        up, flat, down = data
        db = Database()
        db.add_values("up", set(up))
        db.add_values("flat", set(flat))
        db.add_values("down", set(down))
        program = nonlinear_samegen_program()
        query = samegen_query(root)
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic"):
            answer = answer_query(
                program, db, query, method=method, max_iterations=400
            )
            assert answer.answers == baseline.answers, method


class TestEngineAgreementProperty:
    @given(edges=edges_strategy)
    @SETTINGS
    def test_naive_equals_seminaive(self, edges):
        from repro import evaluate_naive, evaluate_seminaive

        program = ancestor_program()
        db = edge_db(edges)
        naive = evaluate_naive(program, db)
        semi = evaluate_seminaive(program, db)
        assert naive.derived_tuples("anc") == semi.derived_tuples("anc")

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_semijoin_preserves_answers_on_acyclic_data(self, edges, root):
        from repro import evaluate, rewrite, semijoin_optimize

        acyclic = {(a, b) for a, b in edges if a < b}
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(acyclic)
        plain = rewrite(program, query, method="counting")
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(
            plain.program, plain.seeded_database(db), max_iterations=200
        )
        opt_res = evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=200,
        )
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )


# ----------------------------------------------------------------------
# columnar / batch execution layer
# ----------------------------------------------------------------------

# Safe stratified rule groups over a single edge relation ``e``.  A
# random program is a dependency-closed subset of these, so every
# sampled program is safe and stratified by construction while still
# exercising recursion, negation, and multi-literal joins.
RULE_GROUPS = {
    "node": ("node(X) :- e(X, Y).", "node(Y) :- e(X, Y)."),
    "tc": ("tc(X, Y) :- e(X, Y).", "tc(X, Z) :- e(X, Y), tc(Y, Z)."),
    "sym": ("sym(X, Y) :- e(X, Y), e(Y, X).",),
    "selfloop": ("selfloop(X) :- tc(X, X).",),
    "acyc": ("acyc(X) :- node(X), not selfloop(X).",),
    "nontc": ("nontc(X, Y) :- node(X), node(Y), not tc(X, Y).",),
    "far": ("far(X, Y) :- tc(X, Y), not e(X, Y).",),
}
GROUP_DEPS = {
    "selfloop": ("tc",),
    "acyc": ("node", "selfloop", "tc"),
    "nontc": ("node", "tc"),
    "far": ("tc",),
}


def _closed_program(picks):
    from repro import parse_program

    names = set(picks) | {"tc"}  # recursion always present
    for name in picks:
        names.update(GROUP_DEPS.get(name, ()))
    rules = [
        rule for name in sorted(names) for rule in RULE_GROUPS[name]
    ]
    return parse_program("\n".join(rules)).program


class TestColumnarBatchEquivalence:
    """The columnar/batch execution layer is invisible: every engine
    config -- batch-vectorized or row-compiled, naive or semi-naive --
    derives exactly what the legacy row-at-a-time interpreter
    (``use_planner=False``) derives, on random safe stratified
    programs."""

    @given(
        edges=edges_strategy,
        picks=st.sets(st.sampled_from(sorted(RULE_GROUPS))),
    )
    @SETTINGS
    def test_columnar_batch_matches_legacy(self, edges, picks):
        from repro import evaluate

        program = _closed_program(picks)
        database = edge_db(edges, relation="e")
        legacy = evaluate(
            program, database, method="naive", use_planner=False
        )
        derived = program.derived_predicates()
        for method in ("naive", "seminaive"):
            for vectorized in (True, False):
                result = evaluate(
                    program,
                    database,
                    method=method,
                    use_planner=True,
                    vectorized=vectorized,
                )
                for pred in derived:
                    assert result.database.tuples(
                        pred
                    ) == legacy.database.tuples(pred), (
                        method, vectorized, pred
                    )


# ----------------------------------------------------------------------
# parallel execution tier
# ----------------------------------------------------------------------

FORK_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _stat_counters(stats):
    return (
        stats.facts_derived,
        stats.rule_firings,
        stats.duplicate_derivations,
        stats.iterations,
        dict(stats.facts_by_predicate),
    )


class TestParallelEquivalenceProperty:
    """The worker pool is invisible: on random safe stratified programs,
    ``workers=4`` derives exactly the same relations *and the same work
    counters* as serial evaluation, for both engines and both backends,
    and an injected fault at a random boundary aborts atomically."""

    @given(
        edges=edges_strategy,
        picks=st.sets(st.sampled_from(sorted(RULE_GROUPS))),
    )
    @SETTINGS
    def test_workers_agree_with_serial_thread(self, edges, picks):
        self._check_agreement(edges, picks, backend="thread")

    @given(
        edges=edges_strategy,
        picks=st.sets(st.sampled_from(sorted(RULE_GROUPS))),
    )
    @FORK_SETTINGS
    def test_workers_agree_with_serial_auto(self, edges, picks):
        # "auto" exercises the fork backend where the platform has it
        self._check_agreement(edges, picks, backend="auto")

    def _check_agreement(self, edges, picks, backend):
        from repro import evaluate

        program = _closed_program(picks)
        database = edge_db(edges, relation="e")
        derived = program.derived_predicates()
        for method in ("naive", "seminaive"):
            serial = evaluate(program, database, method=method)
            parallel = evaluate(
                program,
                database,
                method=method,
                workers=4,
                parallel_backend=backend,
            )
            for pred in derived:
                assert parallel.database.tuples(
                    pred
                ) == serial.database.tuples(pred), (method, pred)
            # stats determinism: the shard merge replays the serial
            # derivation order, so the counters match exactly
            assert _stat_counters(parallel.stats) == _stat_counters(
                serial.stats
            ), method
            assert database.check_integrity()

    @given(
        edges=edges_strategy,
        picks=st.sets(st.sampled_from(sorted(RULE_GROUPS))),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @SETTINGS
    def test_fault_injection_is_atomic_under_workers(
        self, edges, picks, seed
    ):
        from repro import EvaluationBudget, EvaluationCancelled, FaultPlan
        from repro import evaluate
        from repro.core.limits import InjectedFault

        program = _closed_program(picks)
        database = edge_db(edges, relation="e")
        before = {
            pred: database.tuples(pred)
            for pred in database.predicate_keys()
        }
        oracle = evaluate(program, database, method="seminaive")
        meter = EvaluationBudget(
            fault_plan=FaultPlan.randomized(seed)
        ).start()
        try:
            result = evaluate(
                program,
                database,
                method="seminaive",
                workers=4,
                parallel_backend="thread",
                meter=meter,
            )
        except (InjectedFault, EvaluationCancelled):
            result = None
        # the source database is untouched whether or not the fault hit
        assert {
            pred: database.tuples(pred)
            for pred in database.predicate_keys()
        } == before
        assert database.check_integrity()
        if result is not None:
            for pred in program.derived_predicates():
                assert result.database.tuples(
                    pred
                ) == oracle.database.tuples(pred), pred
