"""Magic sets under stratified negation (the conservative extension).

Three guarantees are pinned down here:

* **Answer equivalence.**  On random safe stratified programs, the
  supplementary-magic and magic rewrites agree exactly with the
  stratum-wise naive oracle (legacy join, no planner) -- for bound and
  free query patterns alike.
* **Re-stratifiability.**  The conservative rewrite never turns a
  stratified program into an unstratifiable one:
  ``pipeline.rewrite`` re-stratifies its output through
  ``stratify_or_raise``, and the property test asserts the invariant
  on random inputs (plus the BOM program explicitly).
* **Dispatch.**  ``method="auto"`` on stratified input executes the
  query-directed path and reports it via ``QueryResult.method``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    Program,
    Session,
    StratificationError,
    answer_query,
    parse_program,
    parse_query,
    parse_rule,
    rewrite,
)
from repro.core.stratify import stratify_or_raise
from repro.datalog.analysis import stratify_or_raise as stratify_pair
from repro.workloads import bom_database, bom_program

DOMAIN = ("c0", "c1", "c2", "c3")


def db(**relations) -> Database:
    database = Database()
    for name, rows in relations.items():
        database.add_values(
            name,
            [row if isinstance(row, tuple) else (row,) for row in rows],
        )
    return database


# ----------------------------------------------------------------------
# random safe stratified programs + selective queries
# ----------------------------------------------------------------------


def _pairs():
    return st.lists(
        st.tuples(st.sampled_from(DOMAIN), st.sampled_from(DOMAIN)),
        max_size=10,
    )


def _units():
    return st.lists(st.sampled_from(DOMAIN), max_size=4)


@st.composite
def stratified_query_case(draw):
    """A random safe stratified program, database, and query.

    Stratum 0: ``t`` = transitive closure of ``e`` (linear or
    nonlinear), plus a unary ``u``.  Stratum 1: ``s`` joins positive
    stratum-0 literals with a negated literal the positives bind.
    Stratum 2 (sometimes): ``w`` negates ``s``.  The query targets the
    topmost stratified predicate with a random binding pattern, so the
    rewrite has to push bindings *around* (never through) negation.
    """
    rules = [
        parse_rule("t(X, Y) :- e(X, Y)."),
        parse_rule(
            draw(
                st.sampled_from(
                    [
                        "t(X, Y) :- e(X, Z), t(Z, Y).",
                        "t(X, Y) :- t(X, Z), t(Z, Y).",
                        "t(X, Y) :- t(X, Z), e(Z, Y).",
                    ]
                )
            )
        ),
        parse_rule(
            draw(
                st.sampled_from(
                    ["u(X) :- m(X).", "u(X) :- e(X, Y), m(Y)."]
                )
            )
        ),
    ]
    positive = draw(st.sampled_from(["t(X, Y)", "e(X, Y)"]))
    negated = draw(
        st.sampled_from(
            ["u(X)", "u(Y)", "t(Y, X)", "t(X, X)", "m(X)"]
        )
    )
    rules.append(parse_rule(f"s(X, Y) :- {positive}, not {negated}."))
    query_pred = "s"
    if draw(st.booleans()):
        w_negated = draw(st.sampled_from(["s(X, Y)", "s(Y, X)"]))
        rules.append(
            parse_rule(f"w(X, Y) :- t(X, Y), not {w_negated}.")
        )
        query_pred = draw(st.sampled_from(["s", "w"]))
    program = Program(tuple(rules))
    database = db(e=draw(_pairs()), m=draw(_units()))
    constant = draw(st.sampled_from(DOMAIN))
    query_text = draw(
        st.sampled_from(
            [
                f"{query_pred}(X, Y)?",
                f"{query_pred}({constant}, Y)?",
                f"{query_pred}(X, {constant})?",
            ]
        )
    )
    return program, database, parse_query(query_text)


@settings(max_examples=60, deadline=None)
@given(stratified_query_case())
def test_rewrites_match_stratumwise_naive_oracle(case):
    program, database, query = case
    oracle = answer_query(
        program, database, query, method="naive", use_planner=False
    )
    for method in ("supplementary_magic", "magic"):
        answer = answer_query(
            program, database, query, method=method
        )
        assert answer.answers == oracle.answers, (
            f"{method} disagrees with the stratum-wise naive oracle "
            f"on {query} over {program}"
        )


@settings(max_examples=60, deadline=None)
@given(stratified_query_case())
def test_rewrite_output_always_restratifies(case):
    program, _, query = case
    for method in ("supplementary_magic", "magic"):
        rewritten = rewrite(program, query, method=method)
        # must not raise: the conservative treatment never creates a
        # cycle through negation
        strat = stratify_or_raise(rewritten.program)
        assert len(strat) >= 1


# ----------------------------------------------------------------------
# the BOM workload: explicit re-stratification + dispatch
# ----------------------------------------------------------------------


class TestBomRewrites:
    @pytest.mark.parametrize(
        "query_text", ("buildable(P)?", "clean(p1, S)?", "buildable(p3)?")
    )
    @pytest.mark.parametrize(
        "method", ("supplementary_magic", "magic")
    )
    def test_rewritten_bom_restratifies(self, method, query_text):
        rewritten = rewrite(
            bom_program(), parse_query(query_text), method=method
        )
        assert rewritten.program.has_negation()
        strat = stratify_or_raise(rewritten.program)
        # the negation layering survives the rewrite: strictly more
        # than one stratum, anti-joins always probe completed relations
        assert len(strat) > 1

    @pytest.mark.parametrize(
        "query_text", ("buildable(P)?", "clean(p1, S)?")
    )
    def test_auto_reports_query_directed_method(self, query_text):
        session = Session(
            program=bom_program(),
            database=bom_database(4, 2, 0.25, seed=3),
        )
        result = session.query(query_text)
        assert result.requested_method == "auto"
        assert result.method == "supplementary_magic"

    @pytest.mark.parametrize(
        "query_text", ("buildable(P)?", "clean(p1, S)?", "buildable(p3)?")
    )
    def test_bom_rewrites_match_oracle(self, query_text):
        database = bom_database(4, 2, 0.25, seed=11)
        program = bom_program()
        query = parse_query(query_text)
        oracle = answer_query(
            program, database, query, method="naive", use_planner=False
        )
        for method in ("supplementary_magic", "magic", "auto"):
            answer = answer_query(
                program, database, query, method=method
            )
            assert answer.answers == oracle.answers

    def test_negated_occurrences_probe_complete_relations(self):
        # the all-free tainted cone inside the rewritten program must
        # equal the full tainted relation of the original program
        from repro import evaluate

        database = bom_database(4, 2, 0.25, seed=7)
        program = bom_program()
        rewritten = rewrite(
            program, parse_query("clean(p1, S)?"),
            method="supplementary_magic",
        )
        full = evaluate(program, database)
        seeded = rewritten.seeded_database(database)
        partial = evaluate(rewritten.program, seeded)
        assert partial.database.tuples(
            "tainted^f"
        ) == full.database.tuples("tainted")


# ----------------------------------------------------------------------
# facts asserted under derived predicate names
# ----------------------------------------------------------------------


class TestDerivedNameFacts:
    """``seeded_database`` mirrors derived-name facts into the adorned
    relations: the rewrites must honor them exactly like the bottom-up
    baselines do (under negation a dropped fact flips answers)."""

    def test_negated_derived_fact_agrees_with_baselines(self):
        parsed = parse_program(
            "p(X) :- e(X), not q(X).\nq(X) :- g(X).\nq(b).\n"
        )
        database = db(e=["a", "b"], g=["a"])
        database.add_facts(parsed.facts)
        query = parse_query("p(X)?")
        oracle = answer_query(
            parsed.program, database, query,
            method="naive", use_planner=False,
        )
        assert oracle.answers == set()  # q(b) blocks p(b)
        for method in ("supplementary_magic", "magic", "auto"):
            answer = answer_query(
                parsed.program, database, query, method=method
            )
            assert answer.answers == oracle.answers, method

    def test_positive_derived_fact_reaches_the_rewrite(self):
        parsed = parse_program(
            "anc(X, Y) :- par(X, Y).\n"
            "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
            "anc(zeus, ares).\npar(a, b).\n"
        )
        database = Database()
        database.add_facts(parsed.facts)
        for method in ("supplementary_magic", "magic", "seminaive"):
            answer = answer_query(
                parsed.program, database,
                parse_query("anc(zeus, Y)?"), method=method,
            )
            assert answer.values() == {("ares",)}, method

    def test_memo_invalidated_by_derived_name_mutation(self):
        # the footprint covers original derived names: retracting the
        # q(b) fact must re-evaluate the rewritten entry
        parsed = parse_program(
            "p(X) :- e(X), not q(X).\nq(X) :- g(X).\nq(b).\n"
        )
        database = db(e=["a", "b"], g=["a"])
        database.add_facts(parsed.facts)
        session = Session(program=parsed.program, database=database)
        first = session.query("p(X)?")
        assert first.method == "supplementary_magic"
        assert first.values() == set()
        session.retract("q(b)")
        second = session.query("p(X)?")
        assert not second.from_memo
        assert second.values() == {("b",)}


# ----------------------------------------------------------------------
# stratify_or_raise entry points
# ----------------------------------------------------------------------


class TestStratifyOrRaise:
    def test_returns_stratification(self):
        program = parse_program(
            "p(X) :- e(X), not q(X).\nq(X) :- bad(X).\n"
        ).program
        strat = stratify_or_raise(program)
        assert strat.stratum_of("p") > strat.stratum_of("q")

    def test_context_prefixes_the_error(self):
        program = parse_program(
            "win(X) :- move(X, Y), not win(Y).\n"
        ).program
        with pytest.raises(StratificationError) as exc:
            stratify_or_raise(program, context="invariant check")
        assert str(exc.value).startswith("invariant check: ")
        assert exc.value.cycle  # the offending SCC survives wrapping

    def test_low_level_pair_variant(self):
        program = parse_program(
            "p(X) :- e(X), not q(X).\nq(X) :- bad(X).\n"
        ).program
        predicate_stratum, rule_strata = stratify_pair(program)
        assert predicate_stratum["p"] == 1
        assert len(rule_strata) == 2

    def test_no_context_raises_unwrapped(self):
        program = parse_program(
            "win(X) :- move(X, Y), not win(Y).\n"
        ).program
        with pytest.raises(StratificationError) as exc:
            stratify_or_raise(program)
        assert "invariant" not in str(exc.value)
