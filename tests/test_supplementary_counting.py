"""Generalized supplementary counting -- Section 7, Appendix A.6 (E5)."""


from repro import evaluate, rewrite
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import assert_rules_equal, canonical_rules


def gsc(program, query, **kwargs):
    return rewrite(program, query, method="supplementary_counting", **kwargs)


class TestAppendixA6:
    def test_ancestor(self):
        rewritten = gsc(ancestor_program(), ancestor_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "anc_ix_bf(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), "
                "par(D, E).",
                "anc_ix_bf(A, B, C, D, E) :- supcnt2_2(A, B, C, D, F), "
                "anc_ix_bf(A+1, 2*B+2, 2*C+2, F, E).",
                "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- "
                "supcnt2_2(A, B, C, E, D).",
                "supcnt2_2(A, B, C, D, E) :- cnt_anc_bf(A, B, C, D), "
                "par(D, E).",
            ],
        )

    def test_nonlinear_samegen_example_7(self):
        rewritten = gsc(nonlinear_samegen_program(), samegen_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- "
                "supcnt2_2(A, B, C, E, D).",
                "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- "
                "supcnt2_4(A, B, C, E, D).",
                "sg_ix_bf(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), "
                "flat(D, E).",
                "sg_ix_bf(A, B, C, D, E) :- supcnt2_4(A, B, C, D, F), "
                "sg_ix_bf(A+1, 2*B+2, 5*C+4, F, G), down(G, E).",
                "supcnt2_2(A, B, C, D, E) :- cnt_sg_bf(A, B, C, D), "
                "up(D, E).",
                "supcnt2_3(A, B, C, D, E) :- supcnt2_2(A, B, C, D, F), "
                "sg_ix_bf(A+1, 2*B+2, 5*C+2, F, E).",
                "supcnt2_4(A, B, C, D, E) :- supcnt2_3(A, B, C, D, F), "
                "flat(F, E).",
            ],
        )

    def test_nested_samegen(self):
        rewritten = gsc(
            nested_samegen_program(), nested_samegen_query("john")
        )
        rules = canonical_rules(rewritten)
        assert (
            "supcnt2_2(A, B, C, D, E) :- cnt_p_bf(A, B, C, D), "
            "sg_ix_bf(A+1, 4*B+2, 3*C+1, D, E)." in rules
        )
        assert (
            "cnt_p_bf(A+1, 4*B+2, 3*C+2, D) :- supcnt2_2(A, B, C, E, D)."
            in rules
        )

    def test_list_reverse(self):
        rewritten = gsc(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        rules = canonical_rules(rewritten)
        assert (
            "supcnt2_2(A, B, C, D, E, F) :- "
            "cnt_reverse_bf(A, B, C, [D | E]), "
            "reverse_ix_bf(A+1, 4*B+2, 2*C+1, E, F)." in rules
        )


class TestCorrectness:
    def test_same_answers_as_counting(self):
        program = ancestor_program()
        query = ancestor_query("n0")
        db = chain_database(7)
        results = {}
        for method in ("counting", "supplementary_counting"):
            rw = rewrite(program, query, method=method)
            res = evaluate(rw.program, rw.seeded_database(db))
            results[method] = rw.extract_answers(res)
        assert results["counting"] == results["supplementary_counting"]

    def test_fewer_rule_firings_than_counting_on_nonlinear(self):
        """GSC stores prefix joins, avoiding GMS/GC's duplicate work
        (the motivation of Sections 5 and 7)."""
        from repro.workloads import samegen_database

        program = nonlinear_samegen_program()
        query = samegen_query("L0_0")
        db = samegen_database(3, 4, flat_edges=6)
        work = {}
        for method in ("counting", "supplementary_counting"):
            rw = rewrite(program, query, method=method)
            res = evaluate(
                rw.program, rw.seeded_database(db), max_iterations=400
            )
            work[method] = res.stats.tuples_scanned
        assert work["supplementary_counting"] <= work["counting"]

    def test_structural_mode(self):
        program = ancestor_program()
        query = ancestor_query("n0")
        db = chain_database(6)
        rw = gsc(program, query, mode="structural")
        res = evaluate(rw.program, rw.seeded_database(db))
        answers = rw.extract_answers(res)
        assert len(answers) == 6
