"""Stratified negation: parser, safety, engines, pipeline, CLI, property.

The correctness oracle throughout is the stratum-wise naive reference
(``evaluate_naive`` with ``use_planner=False``): every other engine
configuration must derive exactly the same relations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    Literal,
    Program,
    Query,
    Rule,
    StratificationError,
    UnsafeNegationError,
    UnsupportedProgramError,
    Variable,
    adorn_program,
    answer_query,
    evaluate,
    parse_program,
    parse_query,
    parse_rule,
    qsq_evaluate,
    rewrite,
    unwrap_values,
)
from repro.cli import main
from repro.core.safety import check_safe_negation, negation_safety
from repro.workloads import bom_database, bom_program, bom_source

ENGINES = (
    ("naive", False),  # the stratum-wise naive reference oracle first
    ("naive", True),
    ("seminaive", False),
    ("seminaive", True),
)


def prog(text: str) -> Program:
    return parse_program(text).program


def db(**relations) -> Database:
    database = Database()
    for name, rows in relations.items():
        database.add_values(
            name, [row if isinstance(row, tuple) else (row,) for row in rows]
        )
    return database


def all_engines_agree(program, database):
    """Evaluate on every engine config; assert agreement; return oracle."""
    results = [
        evaluate(program, database, method=method, use_planner=planner)
        for method, planner in ENGINES
    ]
    oracle = results[0]
    derived = program.derived_predicates()
    for result in results[1:]:
        for pred in derived:
            assert result.database.tuples(pred) == oracle.database.tuples(
                pred
            )
    return oracle


def values(result, pred):
    return unwrap_values(result.database.tuples(pred))


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

class TestParser:
    def test_not_keyword(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        assert not rule.body[0].negated
        assert rule.body[1].negated
        assert rule.body[1].pred == "r"

    def test_prolog_naf_operator(self):
        rule = parse_rule("p(X) :- q(X), \\+ r(X).")
        assert rule.body[1].negated

    def test_str_roundtrip(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        assert str(rule) == "p(X) :- q(X), not r(X)."
        assert parse_rule(str(rule)) == rule

    def test_not_as_predicate_name_with_args(self):
        # not(X) is a literal of the predicate `not`, not a negation
        rule = parse_rule("p(X) :- not(X).")
        assert rule.body[0].pred == "not"
        assert not rule.body[0].negated

    def test_double_not_is_predicate_then_negation(self):
        # `not not(X)` negates the predicate named `not`
        rule = parse_rule("p(X) :- e(X), not not(X).")
        assert rule.body[1].pred == "not"
        assert rule.body[1].negated

    def test_negated_head_rejected(self):
        with pytest.raises(ValueError):
            Rule(Literal("p", (Variable("X"),), negated=True), ())

    def test_negated_query_rejected(self):
        with pytest.raises(ValueError):
            Query(Literal("p", (Variable("X"),), negated=True))

    def test_negation_survives_substitution_and_adornment(self):
        literal = Literal("p", (Variable("X"),), negated=True)
        assert literal.substitute({Variable("X"): Variable("Y")}).negated
        assert literal.with_adornment("b").negated
        assert literal.as_positive() == Literal("p", (Variable("X"),))
        assert literal.as_positive().negate() == literal

    def test_program_has_negation(self):
        assert prog("p(X) :- e(X), not q(X).").has_negation()
        assert not prog("p(X) :- e(X), q(X).").has_negation()


# ----------------------------------------------------------------------
# safe negation
# ----------------------------------------------------------------------

class TestSafeNegation:
    def test_unbound_negated_variable_rejected(self):
        rule = parse_rule("p(X, Y) :- e(X), not r(X, Y).")
        with pytest.raises(UnsafeNegationError) as exc:
            check_safe_negation(rule)
        message = str(exc.value)
        assert "Y" in message
        assert "not r(X, Y)" in message
        assert "positive" in message  # the actionable hint
        assert exc.value.variables == (Variable("Y"),)

    def test_variable_only_under_negation_rejected(self):
        rule = parse_rule("p(X) :- e(X), not q(Z).")
        with pytest.raises(UnsafeNegationError):
            check_safe_negation(rule)

    def test_safe_rule_passes(self):
        check_safe_negation(parse_rule("p(X) :- e(X), not q(X)."))
        check_safe_negation(parse_rule("p :- e(X), not q(X)."))

    def test_negation_safety_report(self):
        good = negation_safety(prog("p(X) :- e(X), not q(X)."))
        assert good.safe is True
        bad = negation_safety(prog("p(X) :- e(X), not q(X, Y)."))
        assert bad.safe is False
        assert "Y" in bad.reason

    def test_engines_reject_unsafe_negation(self):
        program = prog("p(X, Y) :- e(X), not r(X, Y).")
        database = db(e=["a"])
        for method, planner in ENGINES:
            with pytest.raises(UnsafeNegationError):
                evaluate(
                    program, database, method=method, use_planner=planner
                )

    def test_engines_reject_unstratified(self):
        program = prog("win(X) :- move(X, Y), not win(Y).")
        database = db(move=[("a", "b")])
        for method, planner in ENGINES:
            with pytest.raises(StratificationError):
                evaluate(
                    program, database, method=method, use_planner=planner
                )


# ----------------------------------------------------------------------
# engine semantics
# ----------------------------------------------------------------------

class TestEngineSemantics:
    def test_set_difference_view(self):
        program = prog("only_s(X) :- s(X), not t(X).")
        database = db(s=["a", "b", "c"], t=["b"])
        oracle = all_engines_agree(program, database)
        assert values(oracle, "only_s") == {("a",), ("c",)}

    def test_missing_negated_relation_means_complement_of_empty(self):
        program = prog("p(X) :- s(X), not ghost(X).")
        database = db(s=["a", "b"])
        oracle = all_engines_agree(program, database)
        assert values(oracle, "p") == {("a",), ("b",)}

    def test_reachability_avoiding_nodes(self):
        program = prog(
            "safe_reach(X, Y) :- edge(X, Y), not bad(Y).\n"
            "safe_reach(X, Y) :- safe_reach(X, Z), edge(Z, Y), "
            "not bad(Y).\n"
        )
        database = db(
            edge=[("a", "b"), ("b", "c"), ("c", "d"), ("a", "x"),
                  ("x", "d")],
            bad=["x"],
        )
        oracle = all_engines_agree(program, database)
        reach = values(oracle, "safe_reach")
        assert ("a", "d") in reach  # via b, c
        assert ("a", "x") not in reach
        assert ("x", "d") in reach  # x may be a source, not a target

    def test_negation_over_derived_recursive_predicate(self):
        program = prog(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
            "unreached(X, Y) :- node(X), node(Y), not reach(X, Y).\n"
        )
        database = db(
            edge=[("a", "b"), ("b", "c")], node=["a", "b", "c"]
        )
        oracle = all_engines_agree(program, database)
        unreached = values(oracle, "unreached")
        assert ("a", "c") not in unreached
        assert ("c", "a") in unreached

    def test_negated_literal_before_binder_in_source_order(self):
        # legacy join must defer the anti-join until X is bound
        program = prog("p(X) :- not q(X), e(X).")
        database = db(e=["a", "b"], q=["a"])
        oracle = all_engines_agree(program, database)
        assert values(oracle, "p") == {("b",)}

    def test_negated_literal_with_constant(self):
        program = prog("p(X) :- e(X), not q(X, forbidden).")
        database = db(
            e=["a", "b"], q=[("a", "forbidden"), ("b", "allowed")]
        )
        oracle = all_engines_agree(program, database)
        assert values(oracle, "p") == {("b",)}

    def test_negated_literal_with_repeated_variable(self):
        program = prog("p(X) :- e(X), not q(X, X).")
        database = db(e=["a", "b"], q=[("a", "a"), ("b", "c")])
        oracle = all_engines_agree(program, database)
        assert values(oracle, "p") == {("b",)}

    def test_zero_arity_negated_literal(self):
        program = prog(
            "go(X) :- e(X), not halted.\nhalted :- stop_flag(Y)."
        )
        empty = db(e=["a"])
        oracle = all_engines_agree(program, empty)
        assert values(oracle, "go") == {("a",)}
        flagged = db(e=["a"], stop_flag=["now"])
        oracle = all_engines_agree(program, flagged)
        assert values(oracle, "go") == set()

    def test_two_negations_in_one_rule(self):
        program = prog("p(X) :- e(X), not q(X), not r(X).")
        database = db(e=["a", "b", "c", "d"], q=["b"], r=["c"])
        oracle = all_engines_agree(program, database)
        assert values(oracle, "p") == {("a",), ("d",)}

    def test_bom_hand_checked(self):
        program = bom_program()
        database = db(
            subpart=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "e")],
            part=["a", "b", "c", "d", "e"],
            exception=["e"],
        )
        oracle = all_engines_agree(program, database)
        assert values(oracle, "tainted") == {("a",), ("c",), ("e",)}
        assert values(oracle, "clean") == {
            ("a", "b"), ("a", "d"), ("b", "d")
        }
        assert values(oracle, "blocked") == {("a",), ("c",)}
        assert values(oracle, "buildable") == {("b",), ("d",), ("e",)}

    def test_bom_generator_engines_agree(self):
        program = bom_program()
        database = bom_database(
            depth=4, fanout=2, exception_rate=0.25, seed=11
        )
        oracle = all_engines_agree(program, database)
        # the acceptance scenario: >= 2 strata and the negation bites
        assert len(values(oracle, "clean")) < len(
            values(oracle, "component")
        )

    def test_stats_sane_under_negation(self):
        program = prog("p(X) :- e(X), not q(X).")
        database = db(e=["a", "b"], q=["a"])
        result = evaluate(program, database, method="seminaive")
        assert result.stats.facts_derived == 1
        assert result.stats.rule_firings == 1  # the anti-join pruned 'a'
        assert result.stats.join_probes > 0


# ----------------------------------------------------------------------
# which stages accept negation: magic family yes, counting/qsq no
# ----------------------------------------------------------------------

class TestStageSupport:
    def test_adorn_program_accepts_stratified(self):
        program = prog("p(X) :- e(X), not q(X).\nq(X) :- bad(X).")
        adorned = adorn_program(program, parse_query("p(a)?"))
        (rule,) = [
            ar for ar in adorned.rules if ar.head.pred == "p"
        ]
        negated = [lit for lit in rule.body if lit.negated]
        assert len(negated) == 1
        # conservative: all-free adornment, never specialized
        assert negated[0].adornment == "f"
        # consumers come last: the positive binder precedes the anti-join
        assert rule.body[-1].negated

    def test_adorn_program_orders_negated_last(self):
        program = prog("p(X) :- not q(X), e(X).\nq(X) :- bad(X).")
        adorned = adorn_program(program, parse_query("p(a)?"))
        (rule,) = [
            ar for ar in adorned.rules if ar.head.pred == "p"
        ]
        assert [lit.pred for lit in rule.body] == ["e", "q"]
        assert rule.body[1].negated

    def test_adorn_program_rejects_unsafe_negation(self):
        program = prog("p(X) :- e(X), not q(X, Y).")
        with pytest.raises(UnsafeNegationError):
            adorn_program(program, parse_query("p(a)?"))

    def test_adorn_program_rejects_unstratified(self):
        program = prog("win(X) :- move(X, Y), not win(Y).")
        with pytest.raises(StratificationError):
            adorn_program(program, parse_query("win(a)?"))

    def test_magic_rewrites_answer_stratified(self):
        program = prog("p(X) :- e(X), not q(X).")
        database = db(e=["a", "b"], q=["a"])
        for method in ("magic", "supplementary_magic"):
            answer = answer_query(
                program, database, parse_query("p(X)?"), method=method
            )
            assert answer.values() == {("b",)}
            assert answer.strategy == method

    def test_counting_rewrites_reject_negation(self):
        program = prog("p(X) :- e(X), not q(X).")
        for method in ("counting", "supplementary_counting"):
            with pytest.raises(UnsupportedProgramError) as exc:
                rewrite(program, parse_query("p(a)?"), method=method)
            message = str(exc.value)
            assert "not q(X)" in message
            assert "auto" in message  # points at the supported path

    def test_qsq_rejects_negation(self):
        program = prog("p(X) :- e(X), not q(X).")
        query_literal = Literal(
            "p", (Variable("X"),), adornment="f"
        )
        with pytest.raises(UnsupportedProgramError) as exc:
            qsq_evaluate(program, db(e=["a"]), query_literal)
        assert "auto" in str(exc.value)  # the recommended path

    def test_answer_query_baselines_work(self):
        program = prog("p(X) :- e(X), not q(X).")
        database = db(e=["a", "b"], q=["a"])
        query = parse_query("p(X)?")
        for method in ("naive", "seminaive"):
            answer = answer_query(program, database, query, method=method)
            assert answer.values() == {("b",)}

    def test_answer_query_default_method_works(self):
        program = prog("p(X) :- e(X), not q(X).")
        answer = answer_query(
            program, db(e=["a", "b"], q=["a"]), parse_query("p(X)?")
        )
        assert answer.strategy == "supplementary_magic"
        assert answer.values() == {("b",)}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_workload_bom_roundtrip(self, tmp_path, capsys):
        assert main(
            ["workload", "bom", "--depth", "3", "--fanout", "2",
             "--exception-rate", "0.3", "--seed", "5"]
        ) == 0
        source = capsys.readouterr().out
        path = tmp_path / "bom.dl"
        path.write_text(source)
        assert main(
            ["query", str(path), "--method", "seminaive", "--stats"]
        ) == 0
        out = capsys.readouterr()
        assert "bindings for (P)" in out.out
        assert "facts=" in out.err

    def test_workload_deterministic_per_seed(self, capsys):
        assert main(["workload", "bom", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["workload", "bom", "--seed", "9"]) == 0
        assert capsys.readouterr().out == first

    def test_query_default_method_rewrites_stratified(
        self, tmp_path, capsys
    ):
        # the default --method supplementary_magic now handles the
        # stratified BOM source through the conservative rewrite
        path = tmp_path / "bom.dl"
        path.write_text(bom_source(depth=2))
        assert main(["query", str(path), "--stats"]) == 0
        out = capsys.readouterr()
        assert "bindings for (P)" in out.out
        assert "method=supplementary_magic" in out.err

    def test_query_counting_method_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "bom.dl"
        path.write_text(bom_source(depth=2))
        assert main(["query", str(path), "--method", "counting"]) == 1
        err = capsys.readouterr().err
        assert "positive programs only" in err
        assert "auto" in err  # points at the supported path

    def test_rewrite_command_prints_stratified_magic(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bom.dl"
        path.write_text(bom_source(depth=2))
        assert main(
            ["rewrite", str(path), "--method", "magic"]
        ) == 0
        out = capsys.readouterr().out
        assert "not tainted^f(" in out  # carried unchanged, all-free
        # the negated occurrence never seeds magic (its all-free
        # version has no magic predicate); positive occurrences inside
        # tainted's own cone may still be magic-restricted
        assert "magic_tainted_f" not in out

    def test_safety_reports_strata(self, tmp_path, capsys):
        path = tmp_path / "bom.dl"
        path.write_text(bom_source(depth=2))
        assert main(["safety", str(path)]) == 0
        out = capsys.readouterr().out
        assert "safe negation" in out
        assert "stratification" in out
        assert "4 strata" in out

    def test_workload_rejects_bad_rate(self, capsys):
        assert main(
            ["workload", "bom", "--exception-rate", "1.5"]
        ) == 1
        assert "exception_rate" in capsys.readouterr().err


# ----------------------------------------------------------------------
# property: stratified evaluation == stratum-wise naive reference
# ----------------------------------------------------------------------

DOMAIN = ("c0", "c1", "c2", "c3")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def _pairs():
    return st.lists(
        st.tuples(st.sampled_from(DOMAIN), st.sampled_from(DOMAIN)),
        max_size=10,
    )


def _units():
    return st.lists(st.sampled_from(DOMAIN), max_size=4)


@st.composite
def stratified_case(draw):
    """A random safe stratified program plus a random database.

    Stratum 0: ``t`` = transitive closure of ``e`` (optionally
    nonlinear), plus a unary ``u``.  Stratum 1: ``s`` joins positive
    stratum-0 literals with one negated literal whose variables the
    positives bind.  Stratum 2 (sometimes): ``w`` negates ``s``.
    """
    rules = [
        parse_rule("t(X, Y) :- e(X, Y)."),
        parse_rule(
            draw(
                st.sampled_from(
                    [
                        "t(X, Y) :- e(X, Z), t(Z, Y).",
                        "t(X, Y) :- t(X, Z), t(Z, Y).",
                        "t(X, Y) :- t(X, Z), e(Z, Y).",
                    ]
                )
            )
        ),
        parse_rule(
            draw(
                st.sampled_from(
                    ["u(X) :- m(X).", "u(X) :- e(X, Y), m(Y)."]
                )
            )
        ),
    ]
    positive = draw(st.sampled_from(["t(X, Y)", "e(X, Y)"]))
    negated = draw(
        st.sampled_from(
            ["u(X)", "u(Y)", "t(Y, X)", "t(X, X)", "m(X)"]
        )
    )
    rules.append(parse_rule(f"s(X, Y) :- {positive}, not {negated}."))
    if draw(st.booleans()):
        w_negated = draw(st.sampled_from(["s(X, Y)", "s(Y, X)"]))
        rules.append(
            parse_rule(f"w(X, Y) :- t(X, Y), not {w_negated}.")
        )
    program = Program(tuple(rules))
    database = db(e=draw(_pairs()), m=draw(_units()))
    return program, database


@settings(max_examples=60, deadline=None)
@given(stratified_case())
def test_stratified_evaluation_matches_naive_reference(case):
    program, database = case
    all_engines_agree(program, database)


# ----------------------------------------------------------------------
# derivation trees (explain) under negation
# ----------------------------------------------------------------------

class TestExplainWithNegation:
    def test_explain_renders_negation_as_failure_leaf(self):
        from repro import explain, fact_stages

        program = bom_program()
        database = db(
            subpart=[("a", "b")], part=["a", "b"], exception=[],
        )
        result = evaluate(program, database)
        stages = fact_stages(program, database, result)
        from repro import Constant

        tree = explain(
            program, database, result,
            Literal("buildable", (Constant("a"),)),
            _stages=stages,
        )
        rendered = tree.render()
        assert "buildable(a)" in rendered
        assert "not blocked(a)" in rendered  # the anti-join leaf
        assert tree.height() >= 2

    def test_explain_cli_on_bom(self, tmp_path, capsys):
        path = tmp_path / "bom.dl"
        path.write_text(bom_source(depth=2, seed=3))
        assert main(["explain", str(path), "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "[by buildable(P) :- part(P), not blocked(P).]" in out
        assert "not blocked(" in out

    def test_fact_stages_respect_strata(self):
        from repro import fact_stages

        program = prog(
            "t(X, Y) :- e(X, Y).\n"
            "t(X, Y) :- e(X, Z), t(Z, Y).\n"
            "s(X, Y) :- t(X, Y), not m(X).\n"
        )
        database = db(e=[("a", "b"), ("b", "c")], m=["z"])
        result = evaluate(program, database)
        stages = fact_stages(program, database, result)
        # every s-fact's stage is strictly later than its t-support
        for row, stage in stages["s"].items():
            assert stage > stages["t"][row]
