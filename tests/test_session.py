"""Tests for the stateful Session API (repro.session).

Covers the tentpole guarantees: auto-dispatch choosing the same answers
as every explicit method, the cross-evaluation answer memo (hits,
invalidation on every mutation path, eviction), incremental assertion
and retraction with correct re-query answers across all four bottom-up
engine configurations, and the legacy one-shot shims staying
answer-identical.
"""

import os

import pytest

from repro import (
    Database,
    PlanCache,
    QueryAnswer,
    QueryResult,
    ReproError,
    Session,
    UnsupportedProgramError,
    answer_query,
    parse_program,
    parse_query,
)
from repro.workloads import bom_source

ANCESTOR = """
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    par(john, mary). par(mary, sue). par(sue, ann).
    anc(john, X)?
"""

STRATIFIED = """
    comp(P, Q) :- sub(P, Q).
    comp(P, Q) :- sub(P, R), comp(R, Q).
    tainted(P) :- comp(P, Q), recalled(Q).
    ok(P) :- part(P), not tainted(P).
    part(a). part(b). part(c).
    sub(a, b). sub(b, c).
    recalled(c).
    ok(P)?
"""

#: the four bottom-up engine configurations (method x execution path)
ENGINE_CONFIGS = [
    ("naive", True),
    ("naive", False),
    ("seminaive", True),
    ("seminaive", False),
]

#: every way to answer a positive query
POSITIVE_METHODS = (
    "auto",
    "magic",
    "supplementary_magic",
    "counting",
    "supplementary_counting",
    "qsq",
    "naive",
    "seminaive",
)


def ancestor_session(**kwargs):
    return Session(ANCESTOR, **kwargs)


class TestConstruction:
    def test_from_source_loads_facts_and_queries(self):
        session = ancestor_session()
        assert session.database.total_facts() == 3
        assert len(session.queries) == 1
        assert session.version == 3  # fact loading is a mutation

    def test_from_program_and_database(self):
        parsed = parse_program("anc(X, Y) :- par(X, Y).")
        db = Database()
        db.add_values("par", [("a", "b")])
        session = Session(program=parsed.program, database=db)
        assert session.query("anc(a, Y)?").values() == {("b",)}

    def test_source_and_program_conflict(self):
        parsed = parse_program("anc(X, Y) :- par(X, Y).")
        with pytest.raises(ValueError):
            Session("anc(X, Y) :- par(X, Y).", program=parsed.program)

    def test_neither_source_nor_program(self):
        with pytest.raises(ValueError):
            Session()

    def test_default_query_from_source(self):
        session = ancestor_session()
        assert session.query().values() == {("mary",), ("sue",), ("ann",)}

    def test_no_default_query(self):
        session = Session("anc(X, Y) :- par(X, Y).")
        with pytest.raises(ReproError):
            session.query()

    def test_unknown_method_rejected(self):
        session = ancestor_session()
        with pytest.raises(ValueError):
            session.query("anc(john, X)?", method="sideways")


class TestAutoDispatch:
    def test_positive_program_uses_magic_family(self):
        session = ancestor_session()
        result = session.query("anc(john, X)?")
        assert result.requested_method == "auto"
        assert result.method == "supplementary_magic"

    def test_negated_program_gets_the_rewrite_too(self):
        # the conservative magic extension: auto no longer falls back
        # to plain bottom-up just because the program negates
        session = Session(STRATIFIED)
        result = session.query()
        assert result.method == "supplementary_magic"
        assert result.values() == {("c",)}

    def test_explicit_magic_on_negated_program_works(self):
        session = Session(STRATIFIED)
        for method in ("magic", "supplementary_magic"):
            result = session.query(method=method)
            assert result.method == method
            assert result.values() == {("c",)}

    def test_counting_and_qsq_on_negated_program_still_raise(self):
        session = Session(STRATIFIED)
        with pytest.raises(UnsupportedProgramError):
            session.query(method="counting")
        with pytest.raises(UnsupportedProgramError) as exc:
            session.query(method="qsq")
        assert "auto" in str(exc.value)

    @pytest.mark.parametrize("method", POSITIVE_METHODS)
    def test_auto_identical_to_every_method_positive(self, method):
        session = ancestor_session()
        auto = session.query("anc(john, X)?", method="auto")
        explicit = session.query("anc(john, X)?", method=method)
        assert explicit.rows == auto.rows

    @pytest.mark.parametrize("engine,use_planner", ENGINE_CONFIGS)
    def test_auto_identical_to_bottom_up_stratified(
        self, engine, use_planner
    ):
        source = bom_source(depth=4, fanout=2, exception_rate=0.25, seed=3)
        session = Session(source, use_planner=use_planner)
        auto = session.query()
        explicit = session.query(method=engine, use_planner=use_planner)
        assert auto.rows == explicit.rows

    def test_auto_decision_is_cached_per_signature(self):
        session = ancestor_session()
        session.query("anc(john, X)?")
        default_opts = ("numeric", True, False)  # mode, optimize, semijoin
        assert session._auto_choice == {
            (("anc", (True, False)),) + default_opts: "supplementary_magic"
        }
        # a different binding pattern is a fresh decision
        session.query("anc(X, ann)?")
        key = (("anc", (False, True)),) + default_opts
        assert session._auto_choice[key] == "supplementary_magic"

    def test_option_level_rewrite_error_does_not_poison_dispatch(self):
        # semijoin=True is incompatible with the magic family, so auto
        # answers that call via the bottom-up fallback -- but a later
        # default-option query must still get the rewrite
        session = ancestor_session()
        with_semijoin = session.query("anc(john, X)?", semijoin=True)
        assert with_semijoin.method == "seminaive"
        plain = session.query("anc(john, X)?")
        assert plain.method == "supplementary_magic"
        assert plain.rows == with_semijoin.rows


class TestMemo:
    def test_repeat_query_is_memo_hit(self):
        session = ancestor_session()
        first = session.query("anc(john, X)?")
        second = session.query("anc(john, X)?")
        assert not first.from_memo
        assert second.from_memo
        assert second.rows == first.rows
        assert session.memo_hits == 1
        assert session.memo_misses == 1

    def test_memo_hit_preserves_method_and_stats(self):
        session = ancestor_session()
        first = session.query("anc(john, X)?")
        second = session.query("anc(john, X)?")
        assert second.method == first.method
        assert second.stats is first.stats

    def test_different_method_is_a_fresh_entry(self):
        session = ancestor_session()
        session.query("anc(john, X)?", method="magic")
        result = session.query("anc(john, X)?", method="qsq")
        assert not result.from_memo
        assert session.memo_misses == 2

    def test_different_options_are_fresh_entries(self):
        session = ancestor_session()
        session.query("anc(john, X)?", method="seminaive")
        miss = session.query(
            "anc(john, X)?", method="seminaive", use_planner=False
        )
        assert not miss.from_memo

    def test_equal_query_text_hits(self):
        # memoization keys on the parsed Query (structural equality),
        # not on object identity or source text
        session = ancestor_session()
        session.query(parse_query("anc(john, X)?"))
        again = session.query("anc( john , X )?")
        assert again.from_memo

    def test_eviction_keeps_memo_bounded(self):
        session = ancestor_session(memo_size=2)
        session.query("anc(john, X)?")
        session.query("anc(mary, X)?")
        session.query("anc(sue, X)?")  # evicts the oldest entry
        assert len(session._memo) == 2
        assert not session.query("anc(john, X)?").from_memo
        assert session.query("anc(sue, X)?").from_memo

    def test_memo_hit_counters_on_result(self):
        session = ancestor_session()
        session.query("anc(john, X)?")
        hit = session.query("anc(john, X)?")
        assert hit.memo_hits == 1 and hit.memo_misses == 1

    def test_caller_mutating_rows_cannot_corrupt_the_memo(self):
        session = ancestor_session()
        cold = session.query("anc(john, X)?")
        cold.rows.clear()  # hostile caller mutation of the returned set
        hit = session.query("anc(john, X)?")
        assert hit.from_memo
        assert hit.values() == {("mary",), ("sue",), ("ann",)}
        assert isinstance(hit.rows, frozenset)

    @pytest.mark.parametrize("method", ("supplementary_magic", "qsq"))
    def test_memo_entries_do_not_retain_evaluation_artifacts(self, method):
        # the memo stores answers and counters; pinning a full derived
        # database (or the raw QSQ answer sets) per entry would grow
        # memory by one database copy per memoized query
        session = ancestor_session()
        cold = session.query("anc(john, X)?", method=method)
        hit = session.query("anc(john, X)?", method=method)
        assert hit.from_memo
        assert hit.answer.evaluation is None
        if method == "qsq":
            assert cold.answer.qsq.answers  # cold result keeps Q/F
            assert not hit.answer.qsq.answers
            assert (
                hit.answer.qsq.subqueries_generated
                == cold.answer.qsq.subqueries_generated
            )
        else:
            assert cold.answer.evaluation is not None
        assert hit.rows == cold.rows and hit.stats is cold.stats


class TestInvalidation:
    #: every call shape of the unified assert_/retract surface
    MUTATIONS = {
        "assert_fact": lambda s: s.assert_("par(ann, zoe)"),
        "assert_literal": lambda s: s.assert_(
            parse_query("par(ann, zoe)?").literal
        ),
        "assert_iterable": lambda s: s.assert_(["par(ann, zoe)"]),
        "assert_row": lambda s: s.assert_("par", "ann", "zoe"),
        "retract_fact": lambda s: s.retract("par(sue, ann)"),
        "retract_iterable": lambda s: s.retract(["par(sue, ann)"]),
        "retract_row": lambda s: s.retract("par", "sue", "ann"),
    }

    #: the pre-IVM names, kept as deprecated aliases
    DEPRECATED = {
        "add": lambda s: s.add("par(ann, zoe)"),
        "add_facts": lambda s: s.add_facts(["par(ann, zoe)"]),
        "add_values": lambda s: s.add_values("par", [("ann", "zoe")]),
        "add_many": lambda s: s.add_many(
            "par", [parse_query("par(ann, zoe)?").literal.args]
        ),
        "retract_facts": lambda s: s.retract_facts(["par(sue, ann)"]),
        "retract_values": lambda s: s.retract_values(
            "par", [("sue", "ann")]
        ),
        "retract_many": lambda s: s.retract_many(
            "par", [parse_query("par(sue, ann)?").literal.args]
        ),
    }

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_every_mutation_path_bumps_and_drops_memo(self, mutation):
        session = ancestor_session()
        session.query("anc(john, X)?")
        assert len(session._memo) == 1
        before = session.version
        changed = self.MUTATIONS[mutation](session)
        assert changed in (True, 1)
        assert session.version > before
        assert len(session._memo) == 0
        assert session.memo_invalidations == 1
        result = session.query("anc(john, X)?")
        assert not result.from_memo

    @pytest.mark.parametrize("alias", sorted(DEPRECATED))
    def test_deprecated_alias_warns_and_still_mutates(self, alias):
        session = ancestor_session()
        before = session.version
        with pytest.warns(DeprecationWarning, match=f"Session.{alias}"):
            changed = self.DEPRECATED[alias](session)
        assert changed in (True, 1)
        assert session.version > before

    def test_bad_mutation_shapes_are_rejected(self):
        session = ancestor_session()
        with pytest.raises(ValueError):
            session.assert_()
        with pytest.raises(ValueError):
            session.retract(parse_query("par(a, b)?").literal, "extra")

    def test_noop_mutation_keeps_memo(self):
        session = ancestor_session()
        first = session.query("anc(john, X)?")
        assert not session.assert_("par(john, mary)")  # already present
        assert not session.retract("par(zeus, ares)")  # never present
        again = session.query("anc(john, X)?")
        assert again.from_memo and again.rows == first.rows

    def test_noop_mutation_keeps_version_and_footprint_entries(self):
        # regression for the memo/version interaction: a retract of an
        # absent fact or a re-assert of a present one must not bump
        # Database.version nor invalidate footprint-matching entries
        session = ancestor_session()
        session.query("anc(john, X)?")
        version = session.version
        invalidations = session.memo_invalidations
        assert not session.assert_("par", "john", "mary")  # present
        assert not session.retract("par", "zeus", "ares")  # absent
        assert not session.retract("anc(zeus, ares)")      # absent
        assert session.version == version
        assert len(session._memo) == 1
        assert session.memo_invalidations == invalidations
        assert session.query("anc(john, X)?").from_memo

    def test_out_of_band_database_mutation_is_detected(self):
        # mutations that bypass the Session entirely (direct Relation
        # access) are caught by the version check on the next query
        session = ancestor_session()
        session.query("anc(john, X)?")
        session.database.add_values("par", [("ann", "zoe")])
        result = session.query("anc(john, X)?")
        assert not result.from_memo
        assert ("zoe",) in result.values()

    @pytest.mark.parametrize("engine,use_planner", ENGINE_CONFIGS)
    def test_retract_then_requery_bottom_up(self, engine, use_planner):
        session = ancestor_session()
        full = session.query(
            "anc(john, X)?", method=engine, use_planner=use_planner
        )
        assert full.values() == {("mary",), ("sue",), ("ann",)}
        assert session.retract("par(sue, ann)")
        trimmed = session.query(
            "anc(john, X)?", method=engine, use_planner=use_planner
        )
        assert trimmed.values() == {("mary",), ("sue",)}
        assert session.assert_("par(sue, ann)")
        restored = session.query(
            "anc(john, X)?", method=engine, use_planner=use_planner
        )
        assert restored.values() == full.values()

    @pytest.mark.parametrize(
        "method", ("auto", "supplementary_magic", "qsq")
    )
    def test_retract_then_requery_query_directed(self, method):
        session = ancestor_session()
        full = session.query("anc(john, X)?", method=method)
        session.retract("par(sue, ann)")
        trimmed = session.query("anc(john, X)?", method=method)
        assert trimmed.values() == {("mary",), ("sue",)}
        assert not trimmed.from_memo
        assert full.values() - trimmed.values() == {("ann",)}

    @pytest.mark.parametrize("engine,use_planner", ENGINE_CONFIGS)
    def test_retract_then_requery_stratified_bottom_up(
        self, engine, use_planner
    ):
        session = Session(STRATIFIED, use_planner=use_planner)
        before = session.query(method=engine, use_planner=use_planner)
        assert before.values() == {("c",)}
        # lift the recall: everything is ok again
        session.retract("recalled(c)")
        after = session.query(method=engine, use_planner=use_planner)
        assert after.values() == {("a",), ("b",), ("c",)}

    @pytest.mark.parametrize("method", ("auto", "magic"))
    def test_retract_then_requery_stratified_rewrites(self, method):
        session = Session(STRATIFIED)
        before = session.query(method=method)
        assert before.values() == {("c",)}
        session.retract("recalled(c)")
        after = session.query(method=method)
        assert after.values() == {("a",), ("b",), ("c",)}


#: two independent cones: mutating one must not evict the other's memo
TWO_CONES = """
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    friend(X, Y) :- knows(X, Y).
    par(john, mary). par(mary, sue).
    knows(a, b).
"""


class TestFootprintInvalidation:
    @pytest.mark.parametrize(
        "method", ("auto", "supplementary_magic", "qsq", "seminaive")
    )
    def test_disjoint_mutation_keeps_entry(self, method):
        session = Session(TWO_CONES)
        cold = session.query("anc(john, X)?", method=method)
        session.assert_("knows(a, c)")  # outside the anc footprint
        hit = session.query("anc(john, X)?", method=method)
        assert hit.from_memo
        assert hit.rows == cold.rows
        assert hit.db_version == session.version  # re-keyed, still valid
        assert session.memo_partial_invalidations == 1
        assert session.memo_invalidations == 0

    def test_intersecting_mutation_drops_entry(self):
        session = Session(TWO_CONES)
        session.query("anc(john, X)?")
        session.assert_("par(sue, ann)")  # inside the anc footprint
        result = session.query("anc(john, X)?")
        assert not result.from_memo
        assert ("ann",) in result.values()
        assert session.memo_invalidations == 1
        # nothing survived, so the pass was not a partial invalidation
        assert session.memo_partial_invalidations == 0

    def test_mixed_mutation_splits_the_memo(self):
        session = Session(TWO_CONES)
        session.query("anc(john, X)?")
        session.query("friend(a, Y)?")
        session.retract("knows(a, b)")
        assert session.memo_invalidations == 1  # the friend entry
        assert session.memo_partial_invalidations == 1  # anc survived
        assert session.query("anc(john, X)?").from_memo
        fresh = session.query("friend(a, Y)?")
        assert not fresh.from_memo and fresh.values() == set()

    def test_out_of_band_mutation_still_flushes_everything(self):
        session = Session(TWO_CONES)
        session.query("anc(john, X)?")
        session.query("friend(a, Y)?")
        session.database.add_values("knows", [("a", "z")])
        assert not session.query("anc(john, X)?").from_memo
        assert session.memo_partial_invalidations == 0

    def test_stratified_footprint_covers_negated_cone(self):
        # the negated predicate's relations are part of the footprint:
        # mutating them must invalidate even though the rewrite carries
        # the literal conservatively
        session = Session(STRATIFIED)
        session.query()  # auto -> supplementary_magic
        session.retract("recalled(c)")
        result = session.query()
        assert not result.from_memo
        assert result.values() == {("a",), ("b",), ("c",)}

    def test_counters_expose_partial_invalidations(self):
        session = Session(TWO_CONES)
        session.query("anc(john, X)?")
        session.assert_("knows(a, c)")
        assert (
            session.counters()["memo_partial_invalidations"] == 1
        )


class TestQueryResult:
    def test_container_protocol(self):
        session = ancestor_session()
        result = session.query("anc(john, X)?")
        assert len(result) == 3
        assert set(result) == result.rows
        for row in result.rows:
            assert row in result

    def test_plan_cache_counters_surface(self):
        session = ancestor_session(plan_cache=PlanCache())
        result = session.query("anc(john, X)?", method="seminaive")
        assert result.plan_cache_misses == 1
        again = Session(
            program=session.program,
            database=session.database,
            plan_cache=session.plan_cache,
        ).query("anc(john, X)?", method="seminaive")
        assert again.plan_cache_hits == 1

    def test_counters_dict(self):
        session = ancestor_session(plan_cache=PlanCache())
        session.query("anc(john, X)?")
        session.query("anc(john, X)?")
        counters = session.counters()
        assert counters["memo_hits"] == 1
        assert counters["memo_misses"] == 1
        assert counters["memo_entries"] == 1
        assert counters["db_version"] == session.version

    def test_underlying_answer_is_exposed(self):
        session = ancestor_session()
        result = session.query("anc(john, X)?")
        assert isinstance(result.answer, QueryAnswer)
        assert result.answer.answers == result.rows

    def test_explain_returns_derivation_trees(self):
        session = ancestor_session()
        result = session.query("anc(john, X)?")
        trees = result.explain(limit=2)
        assert len(trees) == 2
        rendered = trees[0].render()
        assert "anc(john" in rendered

    def test_explain_on_memo_hit(self):
        session = ancestor_session()
        session.query("anc(john, X)?")
        hit = session.query("anc(john, X)?")
        assert hit.from_memo
        assert len(hit.explain()) == 3

    def test_explain_stratified(self):
        session = Session(STRATIFIED)
        result = session.query()
        trees = result.explain()
        assert len(trees) == 1
        assert "ok(c)" in trees[0].render()

    def test_detached_result_explain_raises(self):
        result = QueryResult(
            rows=set(), method="seminaive", requested_method="auto",
            query=parse_query("anc(john, X)?"),
        )
        with pytest.raises(ReproError):
            result.explain()


class TestLegacyShims:
    def test_answer_query_matches_session(self):
        parsed = parse_program(ANCESTOR)
        db = Database()
        db.add_facts(parsed.facts)
        query = parsed.queries[0]
        legacy = answer_query(parsed.program, db, query)
        session = Session(program=parsed.program, database=db)
        assert legacy.answers == session.query(query).rows

    def test_answer_query_accepts_auto(self):
        parsed = parse_program(ANCESTOR)
        db = Database()
        db.add_facts(parsed.facts)
        answer = answer_query(
            parsed.program, db, parsed.queries[0], method="auto"
        )
        assert answer.strategy == "supplementary_magic"
        assert answer.values() == {("mary",), ("sue",), ("ann",)}

    def test_answer_query_auto_stratified(self):
        parsed = parse_program(STRATIFIED)
        db = Database()
        db.add_facts(parsed.facts)
        answer = answer_query(
            parsed.program, db, parsed.queries[0], method="auto"
        )
        assert answer.strategy == "supplementary_magic"
        assert answer.values() == {("c",)}


class TestRewriteCaches:
    def test_rewritten_program_is_cached_across_mutations(self):
        session = ancestor_session()
        session.query("anc(john, X)?", method="supplementary_magic")
        assert len(session._rewritten) == 1
        cached = next(iter(session._rewritten.values()))
        session.assert_("par(ann, zoe)")  # drops the memo, not the rewrite
        session.query("anc(john, X)?", method="supplementary_magic")
        assert next(iter(session._rewritten.values())) is cached

    def test_adorned_program_cached_for_qsq(self):
        session = ancestor_session()
        session.query("anc(john, X)?", method="qsq")
        assert len(session._adorned) == 1
        session.assert_("par(ann, zoe)")
        result = session.query("anc(john, X)?", method="qsq")
        assert len(session._adorned) == 1
        assert ("zoe",) in result.values()


class TestLifecycle:
    """close() / context manager (the server's session-recycling hook)."""

    def test_context_manager_closes(self):
        with ancestor_session() as session:
            view = session.materialize("anc")
            # seminaive bypasses the view fast path, so it memoizes
            session.query("anc(john, X)?", method="seminaive")
            assert session._memo
            assert session._materializer is not None
        assert session._materializer is None
        assert not session._memo
        assert view.dropped
        # the mutation log is detached from the database
        assert session.database._mutation_logs == ()

    def test_close_is_idempotent_and_session_stays_usable(self):
        session = ancestor_session()
        session.materialize("anc")
        session.query("anc(john, X)?")
        session.close()
        session.close()
        result = session.query("anc(john, X)?")
        assert result.values() == {("mary",), ("sue",), ("ann",)}
        assert not result.maintained

    def test_close_drops_dispatch_caches(self):
        session = ancestor_session()
        session.query("anc(john, X)?", method="supplementary_magic")
        assert session._rewritten
        session.close()
        assert not session._rewritten
        assert not session._adorned
        assert not session._auto_choice

    def test_materialized_relations_publishes_fresh_copies(self):
        session = ancestor_session()
        session.materialize("anc")
        published = session.materialized_relations()
        assert set(published) == {"anc"}
        frozen = published["anc"]
        session.assert_("par(ann, zoe)")
        # the copy is frozen; the maintained state moved on
        assert len(frozen) == 6
        assert len(session.materialized_relations()["anc"]) == 10

    def test_materialized_relations_empty_when_stale_or_absent(self):
        session = ancestor_session()
        assert session.materialized_relations() == {}
        session.materialize("anc")
        os.environ["REPRO_FAULT_INJECT"] = "any:1"
        try:
            session.assert_("par(ann, zoe)")
        finally:
            del os.environ["REPRO_FAULT_INJECT"]
        # the maintenance pass aborted: stale state is never published
        assert session.materialized_relations() == {}
