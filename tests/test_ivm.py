"""Incremental view maintenance (repro.datalog.ivm + the Session API).

Four layers of guarantees:

* **Delta correctness.**  ``MaterializedProgram`` agrees with cold
  re-evaluation after asserts and retracts on recursive strata (DRed:
  overdelete + rederive), non-recursive strata (exact counting), and
  across stratified negation -- including mutations of facts stored
  under *derived* names.  ``check_consistency()`` is the oracle: it
  compares every derived relation against a cold run and audits the
  counting bookkeeping.
* **Atomicity.**  An aborted maintenance pass (injected fault, budget
  trip) leaves the materialized state stale-but-consistent: the source
  database passes ``check_integrity()``, cold evaluation still answers
  correctly, and a rebuild (or the next successful pass) heals the
  view.
* **The Session surface.**  ``materialize()`` / ``MaterializedView`` /
  ``batch()`` / the ``query()`` fast path, with ``QueryResult`` as the
  single answer type (``maintained`` / ``maintenance_elapsed``).
* **Interleaving property.**  On random safe stratified programs and
  random assert/retract sequences -- with faults injected into some
  maintenance passes -- the maintained state, cold compiled semi-naive,
  and the legacy interpretive oracle agree after every step.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    EvaluationBudget,
    FaultPlan,
    InjectedFault,
    MaterializedProgram,
    Program,
    ReproError,
    Session,
    evaluate,
    evaluate_seminaive,
    parse_program,
    parse_rule,
)
from repro.core.limits import BudgetExceeded
from repro.workloads import chain_database

ANCESTOR = """
    anc(X, Y) :- par(X, Y).
    anc(X, Z) :- par(X, Y), anc(Y, Z).
"""

STRATIFIED = """
    comp(P, Q) :- sub(P, Q).
    comp(P, Q) :- sub(P, R), comp(R, Q).
    tainted(P) :- comp(P, Q), recalled(Q).
    buildable(P) :- part(P), not tainted(P).
"""


def ancestor_mp(depth=6):
    program = parse_program(ANCESTOR).program
    database = chain_database(depth)
    return program, database, MaterializedProgram(program, database)


def stratified_mp():
    parsed = parse_program(
        STRATIFIED
        + """
        part(drone). part(frame). part(motor). part(cell).
        sub(drone, frame). sub(drone, motor). sub(motor, cell).
        """
    )
    database = Database()
    database.add_facts(parsed.facts)
    return parsed.program, database, MaterializedProgram(
        parsed.program, database
    )


class TestDeltaPropagation:
    def test_initial_state_matches_cold(self):
        program, database, mp = ancestor_mp()
        cold = evaluate_seminaive(program, database.copy())
        assert mp.tuples("anc") == set(cold.database.tuples("anc"))
        assert mp.check_consistency()

    def test_assert_propagates_recursive(self):
        program, database, mp = ancestor_mp()
        database.add_values("par", [("m0", "n0")])  # new chain root
        result = mp.maintain()
        assert result.action == "maintained"
        assert result.facts_added > 0 and result.facts_removed == 0
        assert mp.check_consistency()

    @pytest.mark.parametrize("edge", [("n0", "n1"), ("n2", "n3"), ("n4", "n5")])
    def test_retract_dred_recursive(self, edge):
        # root, middle, and leaf edges: every overdelete shape
        program, database, mp = ancestor_mp()
        database.retract_values("par", [edge])
        result = mp.maintain()
        assert result.action == "maintained"
        assert result.facts_removed > 0
        assert mp.check_consistency()

    def test_rederivation_survives_alternative_support(self):
        # two paths a->b; deleting one must keep anc(a, b) and its cone
        program = parse_program(ANCESTOR).program
        database = Database()
        database.add_values(
            "par", [("a", "b"), ("a", "m"), ("m", "b"), ("b", "c")]
        )
        mp = MaterializedProgram(program, database)
        database.retract_values("par", [("a", "b")])
        mp.maintain()
        assert ("a", "b") in {
            tuple(t.value for t in row) for row in mp.tuples("anc")
        }
        assert mp.check_consistency()

    def test_counting_stratum_and_negation(self):
        program, database, mp = stratified_mp()
        database.add_values("recalled", [("cell",)])
        result = mp.maintain()
        assert result.action == "maintained"
        buildable = {t[0].value for t in mp.tuples("buildable")}
        assert buildable == {"cell", "frame"}
        assert mp.check_consistency()
        database.retract_values("recalled", [("cell",)])
        mp.maintain()
        assert {t[0].value for t in mp.tuples("buildable")} == {
            "cell", "frame", "motor", "drone",
        }
        assert mp.check_consistency()

    def test_mutation_under_derived_name(self):
        # facts asserted/retracted under a derived predicate route
        # through its stratum as external deltas
        program, database, mp = stratified_mp()
        database.add_values("tainted", [("frame",)])
        mp.maintain()
        assert {t[0].value for t in mp.tuples("buildable")} == {
            "cell", "motor", "drone",
        }
        assert mp.check_consistency()
        database.retract_values("tainted", [("frame",)])
        mp.maintain()
        assert mp.check_consistency()

    def test_batched_mutations_one_pass(self):
        program, database, mp = ancestor_mp()
        passes = mp.passes
        database.add_values("par", [("m0", "n0"), ("m1", "m0")])
        database.retract_values("par", [("n0", "n1")])
        database.add_values("par", [("n0", "n1")])  # net no-op pair
        result = mp.maintain()
        assert mp.passes == passes + 1
        assert result.action == "maintained"
        assert mp.check_consistency()

    def test_noop_maintain(self):
        _, _, mp = ancestor_mp()
        result = mp.maintain()
        assert result.action == "noop"
        assert not mp.pending

    def test_strata_untouched_by_delta_are_skipped(self):
        program, database, mp = stratified_mp()
        database.add_values("recalled", [("never_used",)])
        result = mp.maintain()
        assert result.strata_skipped > 0
        assert mp.check_consistency()


class TestAtomicity:
    def test_injected_fault_marks_stale_and_rebuild_heals(self):
        program, database, mp = ancestor_mp()
        database.add_values("par", [("m0", "n0")])
        meter = EvaluationBudget(fault_plan=FaultPlan("any", 1)).start()
        with pytest.raises(InjectedFault):
            mp.maintain(meter=meter)
        assert mp.stale and not mp.pending  # partial pass discarded
        assert database.check_integrity()
        # cold evaluation of the source database is unaffected
        cold = evaluate_seminaive(program, database.copy())
        assert len(cold.database.tuples("anc")) > 0
        result = mp.maintain()  # stale -> rebuild
        assert result.action == "rebuilt"
        assert not mp.stale
        assert mp.check_consistency()

    def test_budget_trip_marks_stale(self):
        program, database, mp = ancestor_mp(depth=12)
        database.add_values("par", [("m0", "n0")])
        meter = EvaluationBudget(max_facts=1).start()
        with pytest.raises(BudgetExceeded):
            mp.maintain(meter=meter)
        assert mp.stale
        assert database.check_integrity()
        assert mp.maintain().action == "rebuilt"
        assert mp.check_consistency()

    def test_every_fault_boundary_leaves_state_consistent(self):
        for after in range(1, 6):
            program, database, mp = ancestor_mp()
            database.retract_values("par", [("n1", "n2")])
            meter = EvaluationBudget(
                fault_plan=FaultPlan("any", after)
            ).start()
            try:
                mp.maintain(meter=meter)
            except InjectedFault:
                assert mp.stale
                mp.maintain()  # heals
            assert database.check_integrity()
            assert mp.check_consistency()
            mp.close()


class TestSessionViews:
    def test_materialize_and_query_fast_path(self):
        session = Session(
            ANCESTOR + "par(a, b). par(b, c). par(c, d)."
        )
        view = session.materialize("anc(a, X)?")
        result = session.query("anc(a, X)?")
        assert result.maintained and result.method == "materialized"
        assert result.values() == {("b",), ("c",), ("d",)}
        # view.rows is the same QueryResult shape as any other answer
        rows = view.rows
        assert rows.maintained and rows.values() == result.values()
        assert rows.maintenance_elapsed == 0.0  # was already fresh

    def test_mutation_maintains_and_version_tracks(self):
        session = Session(ANCESTOR + "par(a, b).")
        view = session.materialize("anc(a, X)?")
        v0 = view.version
        session.assert_("par", "b", "c")
        assert view.version == session.version > v0
        assert not view.stale
        assert ("c",) in view.rows.values()
        session.retract("par", "b", "c")
        assert ("c",) not in view.rows.values()

    def test_batch_coalesces_maintenance(self):
        session = Session(ANCESTOR + "par(a, b).")
        session.materialize("anc(a, X)?")
        passes = session._materializer.passes
        with session.batch():
            for i in range(10):
                session.assert_("par", f"x{i}", f"x{i + 1}")
            # inside the batch the view is pending, queries answer cold
            mid = session.query("anc(x0, X)?")
            assert not mid.maintained
        assert session._materializer.passes == passes + 1
        after = session.query("anc(x0, X)?")
        assert after.maintained and len(after.rows) == 10

    def test_fault_during_maintenance_degrades_to_stale(self):
        session = Session(ANCESTOR + "par(a, b).")
        view = session.materialize("anc(a, X)?")
        os.environ["REPRO_FAULT_INJECT"] = "any:1"
        try:
            session.assert_("par", "b", "c")  # abort swallowed
        finally:
            del os.environ["REPRO_FAULT_INJECT"]
        assert view.stale
        assert session.database.check_integrity()
        cold = session.query("anc(a, X)?")  # falls back cold
        assert not cold.maintained
        assert cold.values() == {("b",), ("c",)}
        result = view.refresh()
        assert result.action == "rebuilt" and not view.stale
        assert session.query("anc(a, X)?").maintained

    def test_query_method_materialized_requires_view(self):
        session = Session(ANCESTOR + "par(a, b).")
        with pytest.raises(ReproError):
            session.query("anc(a, X)?", method="materialized")

    def test_view_results_are_not_memoized(self):
        session = Session(ANCESTOR + "par(a, b).")
        session.materialize("anc(a, X)?")
        session.query("anc(a, X)?")
        session.query("anc(a, X)?")
        assert len(session._memo) == 0
        assert session.memo_hits == 0

    def test_uncovered_query_uses_normal_path(self):
        session = Session(
            ANCESTOR + "other(X) :- par(X, Y). par(a, b)."
        )
        session.materialize("anc(a, X)?")
        result = session.query("other(X)?")
        assert not result.maintained

    def test_drop_closes_materializer(self):
        session = Session(ANCESTOR + "par(a, b).")
        view = session.materialize("anc(a, X)?")
        view.drop()
        assert session._materializer is None
        assert not session.query("anc(a, X)?").maintained
        with pytest.raises(ReproError):
            view.rows  # noqa: B018 -- the access itself must raise
        view.drop()  # idempotent

    def test_materialize_predicates_and_tuples(self):
        session = Session(ANCESTOR + "par(a, b). par(b, c).")
        view = session.materialize("anc")
        assert {tuple(t.value for t in row) for row in view.tuples()} == {
            ("a", "b"), ("b", "c"), ("a", "c"),
        }
        assert view.rows.values() == {
            ("a", "b"), ("b", "c"), ("a", "c"),
        }

    def test_materialize_unknown_predicate_rejected(self):
        session = Session(ANCESTOR + "par(a, b).")
        with pytest.raises(ReproError):
            session.materialize("no_such_pred")


# ----------------------------------------------------------------------
# interleaving property: maintained == cold == legacy oracle
# ----------------------------------------------------------------------

DOMAIN = ("c0", "c1", "c2", "c3")


@st.composite
def ivm_case(draw):
    """A random safe stratified program plus a mutation script.

    The program shape mirrors the magic-negation property suite: a
    recursive closure stratum, a unary helper, a negating stratum on
    top.  The script interleaves asserts and retracts of base rows
    (plus rows under the *derived* ``t``), with occasional injected
    faults during the maintenance pass that follows.
    """
    rules = [
        parse_rule("t(X, Y) :- e(X, Y)."),
        parse_rule(
            draw(
                st.sampled_from(
                    [
                        "t(X, Y) :- e(X, Z), t(Z, Y).",
                        "t(X, Y) :- t(X, Z), t(Z, Y).",
                    ]
                )
            )
        ),
        parse_rule(
            draw(st.sampled_from(["u(X) :- m(X).", "u(X) :- e(X, Y), m(Y)."]))
        ),
        parse_rule(
            "s(X, Y) :- "
            + draw(st.sampled_from(["t(X, Y)", "e(X, Y)"]))
            + ", not "
            + draw(st.sampled_from(["u(X)", "u(Y)", "t(Y, X)"]))
            + "."
        ),
    ]
    program = Program(tuple(rules))
    pairs = st.tuples(st.sampled_from(DOMAIN), st.sampled_from(DOMAIN))
    initial_e = draw(st.lists(pairs, max_size=6))
    initial_m = draw(st.lists(st.sampled_from(DOMAIN), max_size=3))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["assert", "retract"]),
                st.sampled_from(["e", "m", "t"]),
                pairs,
                st.booleans(),  # inject a fault into this step's pass?
            ),
            min_size=1,
            max_size=8,
        )
    )
    return program, initial_e, initial_m, ops


def _derived_state(program, database):
    """Cold compiled semi-naive state of every derived predicate."""
    result = evaluate_seminaive(program, database.copy())
    return {
        pred: set(result.database.tuples(pred))
        for pred in program.derived_predicates()
    }


def _oracle_state(program, database):
    """The legacy interpretive (naive, row-at-a-time) oracle."""
    result = evaluate(
        program, database.copy(), method="naive", use_planner=False
    )
    return {
        pred: set(result.database.tuples(pred))
        for pred in program.derived_predicates()
    }


@settings(max_examples=40, deadline=None)
@given(ivm_case())
def test_maintained_view_agrees_with_oracles(case):
    program, initial_e, initial_m, ops = case
    database = Database()
    database.add_values("e", initial_e)
    database.add_values("m", [(value,) for value in initial_m])
    mp = MaterializedProgram(program, database)
    fault_counter = 0
    for op, pred, row, inject in ops:
        rows = [row] if pred != "m" else [(row[0],)]
        if op == "assert":
            database.add_values(pred, rows)
        else:
            database.retract_values(pred, rows)
        if inject:
            fault_counter += 1
            meter = EvaluationBudget(
                fault_plan=FaultPlan("any", 1 + fault_counter % 3)
            ).start()
            try:
                mp.maintain(meter=meter)
            except (InjectedFault, BudgetExceeded):
                assert mp.stale
                assert database.check_integrity()
                mp.maintain()  # heal: stale pass rebuilds cold
        else:
            mp.maintain()
        cold = _derived_state(program, database)
        for pred_key, expected in cold.items():
            assert mp.tuples(pred_key) == expected, (
                f"maintained {pred_key} diverged after {op} {row}"
            )
        assert _oracle_state(program, database) == cold
    assert mp.check_consistency()
    assert database.check_integrity()
    mp.close()
