"""Workload generator tests (repro.workloads)."""

from repro.workloads import (
    chain_database,
    chain_edges,
    cycle_edges,
    grid_edges,
    integer_list,
    nested_samegen_database,
    random_dag_edges,
    samegen_database,
    samegen_edges,
    tree_edges,
)
from repro.datalog.terms import list_elements


class TestGraphs:
    def test_chain(self):
        edges = chain_edges(3)
        assert edges == [("n0", "n1"), ("n1", "n2"), ("n2", "n3")]

    def test_tree_size(self):
        edges = tree_edges(3, fanout=2)
        assert len(edges) == 2 + 4 + 8

    def test_random_dag_acyclic(self):
        edges = random_dag_edges(20, 0.3, seed=1)
        for src, dst in edges:
            assert int(src[1:]) < int(dst[1:])

    def test_random_dag_deterministic(self):
        assert random_dag_edges(15, 0.2, seed=9) == random_dag_edges(
            15, 0.2, seed=9
        )

    def test_cycle(self):
        edges = cycle_edges(4)
        assert ("n3", "n0") in edges
        assert len(edges) == 4

    def test_grid(self):
        edges = grid_edges(2, 2)
        assert len(edges) == 4

    def test_database_loading(self):
        db = chain_database(5)
        assert len(db.tuples("par")) == 5


class TestSamegen:
    def test_layer_structure(self):
        edge_sets = samegen_edges(2, 3, flat_edges=2, seed=0)
        assert all(src.startswith("L") for src, _ in edge_sets["up"])
        # flat edges exist within layers 1..layers
        layers_with_flat = {src.split("_")[0] for src, _ in edge_sets["flat"]}
        assert layers_with_flat <= {"L1", "L2"}

    def test_database_relations(self):
        db = samegen_database(2, 3)
        assert {"up", "flat", "down"} <= db.predicate_keys()

    def test_nested_adds_b_relations(self):
        db = nested_samegen_database(2, 3)
        assert {"b1", "b2"} <= db.predicate_keys()


class TestLists:
    def test_integer_list(self):
        lst = integer_list(3)
        values = [t.value for t in list_elements(lst)]
        assert values == [0, 1, 2]

    def test_empty(self):
        assert list_elements(integer_list(0)) == ()
