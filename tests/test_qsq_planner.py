"""The compiled QSQ evaluator: equivalence, plan cache, delta indexes.

Three layers of guarantees:

* the compiled, delta-driven ``qsq_evaluate`` computes exactly the
  legacy evaluator's ``Q``/``F`` sets (same dicts, same
  ``subqueries_generated``) across workloads, sip families, and random
  databases (hypothesis);
* per Theorem 9.1, both execution paths match bottom-up magic
  evaluation (``check_optimality``);
* the infrastructure rides along: the shared :class:`PlanCache` stops
  recompilation (visible through evaluation stats), semi-naive delta
  relations are pre-indexed for constant-carrying delta literals, and
  :meth:`Relation.add_many` keeps indexes consistent on its bulk path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CompiledProgram,
    Constant,
    Database,
    Literal,
    PlanCache,
    Relation,
    Variable,
    adorn_program,
    build_chain_sip,
    build_empty_sip,
    build_full_sip,
    check_optimality,
    evaluate_seminaive,
    parse_program,
    qsq_evaluate,
    rewrite,
    subquery_program_for,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    integer_list,
    list_reverse_program,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    random_dag_database,
    reverse_query,
    samegen_database,
    samegen_query,
)


def c(value):
    return Constant(value)


def run_both(program, query, db, sip_builder=build_full_sip, **kwargs):
    adorned = adorn_program(program, query, sip_builder)
    legacy = qsq_evaluate(
        adorned.program, db, adorned.query_literal,
        use_planner=False, **kwargs
    )
    compiled = qsq_evaluate(
        adorned.program, db, adorned.query_literal,
        use_planner=True, **kwargs
    )
    return adorned, legacy, compiled


def assert_same_qf(adorned, legacy, compiled):
    assert compiled.queries == legacy.queries
    assert compiled.answers == legacy.answers
    assert compiled.subqueries_generated == legacy.subqueries_generated
    assert compiled.query_answers(adorned.query_literal) == (
        legacy.query_answers(adorned.query_literal)
    )


# ----------------------------------------------------------------------
# legacy vs compiled equivalence
# ----------------------------------------------------------------------

WORKLOADS = [
    ("anc-chain", ancestor_program, lambda: ancestor_query("n0"),
     lambda: chain_database(12)),
    ("anc-cycle", ancestor_program, lambda: ancestor_query("n0"),
     lambda: cycle_database(7)),
    ("nl-anc-dag", nonlinear_ancestor_program, lambda: ancestor_query("n0"),
     lambda: random_dag_database(14, 0.25, seed=11)),
    ("samegen", nonlinear_samegen_program, lambda: samegen_query("L0_0"),
     lambda: samegen_database(3, 4, flat_edges=5)),
]


class TestCompiledEquivalence:
    @pytest.mark.parametrize(
        "name,make_program,make_query,make_db", WORKLOADS,
        ids=[w[0] for w in WORKLOADS],
    )
    def test_workloads(self, name, make_program, make_query, make_db):
        adorned, legacy, compiled = run_both(
            make_program(), make_query(), make_db()
        )
        assert_same_qf(adorned, legacy, compiled)

    @pytest.mark.parametrize(
        "sip_builder", [build_full_sip, build_chain_sip, build_empty_sip],
        ids=["full", "chain", "empty"],
    )
    def test_sip_families(self, sip_builder):
        adorned, legacy, compiled = run_both(
            nonlinear_samegen_program(),
            samegen_query("L0_0"),
            samegen_database(3, 3, flat_edges=4),
            sip_builder=sip_builder,
        )
        assert_same_qf(adorned, legacy, compiled)

    def test_function_symbols_list_reverse(self):
        adorned, legacy, compiled = run_both(
            list_reverse_program(), reverse_query(integer_list(5)),
            Database(),
        )
        assert_same_qf(adorned, legacy, compiled)
        answers = compiled.query_answers(adorned.query_literal)
        assert len(answers) == 1

    def test_constant_in_rule_body(self):
        # a derived body literal carrying a constant at a free position
        # exercises the _EQC row op (the answer index only covers the
        # adornment's bound positions)
        program = parse_program(
            """
            p(X, Y) :- e(X, Y).
            p(X, Y) :- p(X, two), e(two, Y).
            """
        ).program
        db = Database()
        db.add_values("e", [("one", "two"), ("two", "three")])
        from repro import parse_query

        adorned, legacy, compiled = run_both(
            program, parse_query("p(one, Y)?"), db
        )
        assert_same_qf(adorned, legacy, compiled)
        assert compiled.query_answers(adorned.query_literal) == {
            (c("two"),), (c("three"),),
        }

    def test_budgets_preserved(self):
        from repro import NonTerminationError, parse_query

        program = parse_program(
            """
            s(X, Y) :- base(X, Y).
            s(X, [a | Y]) :- s(X, Y).
            """
        ).program
        db = Database()
        db.add_values("base", [("q", "nil")])
        adorned = adorn_program(program, parse_query("s(q, Y)?"))
        for use_planner in (False, True):
            with pytest.raises(NonTerminationError):
                qsq_evaluate(
                    adorned.program, db, adorned.query_literal,
                    max_iterations=25, use_planner=use_planner,
                )
            with pytest.raises(NonTerminationError):
                qsq_evaluate(
                    adorned.program, db, adorned.query_literal,
                    max_facts=10, use_planner=use_planner,
                )

    def test_unbound_bound_position_falls_back(self):
        # hand-built adorned rule whose bound position the sip never
        # binds: both paths must agree (and derive nothing, since no
        # ground subquery for q^b can ever be issued)
        from repro.datalog.ast import Program, Rule

        x, y = Variable("X"), Variable("Y")
        program = Program([
            Rule(Literal("p", (x,), "f"),
                 [Literal("q", (y,), "b"), Literal("e", (x,))]),
            Rule(Literal("q", (y,), "b"), [Literal("f", (y,))]),
        ])
        db = Database()
        db.add_values("e", [("a",)])
        db.add_values("f", [("b",)])
        query = Literal("p", (Variable("Z"),), "f")
        legacy = qsq_evaluate(program, db, query, use_planner=False)
        compiled = qsq_evaluate(program, db, query, use_planner=True)
        assert compiled.answers == legacy.answers
        assert compiled.queries == legacy.queries


# ----------------------------------------------------------------------
# Theorem 9.1 against bottom-up magic
# ----------------------------------------------------------------------

class TestTheorem91:
    @pytest.mark.parametrize("use_planner", [False, True],
                             ids=["legacy", "compiled"])
    def test_ancestor(self, use_planner):
        program = ancestor_program()
        query = ancestor_query("n0")
        db = chain_database(10)
        rewritten = rewrite(program, query, method="magic")
        report = check_optimality(rewritten, db, use_planner=use_planner)
        assert report.sip_optimal, report.mismatches

    @pytest.mark.parametrize("use_planner", [False, True],
                             ids=["legacy", "compiled"])
    def test_samegen(self, use_planner):
        program = nonlinear_samegen_program()
        query = samegen_query("L0_0")
        db = samegen_database(3, 3, flat_edges=4)
        rewritten = rewrite(program, query, method="magic")
        report = check_optimality(rewritten, db, use_planner=use_planner)
        assert report.sip_optimal, report.mismatches


# ----------------------------------------------------------------------
# property tests: compiled == legacy == bottom-up magic
# ----------------------------------------------------------------------

NODES = [f"v{i}" for i in range(7)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=20,
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def edge_db(edges, relation="par"):
    db = Database()
    db.add_values(relation, set(edges))
    return db


class TestQSQProperty:
    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_linear_ancestor(self, edges, root):
        adorned, legacy, compiled = run_both(
            ancestor_program(), ancestor_query(root), edge_db(edges)
        )
        assert_same_qf(adorned, legacy, compiled)

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_nonlinear_ancestor(self, edges, root):
        adorned, legacy, compiled = run_both(
            nonlinear_ancestor_program(), ancestor_query(root),
            edge_db(edges),
        )
        assert_same_qf(adorned, legacy, compiled)

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_matches_bottom_up_magic(self, edges, root):
        program = ancestor_program()
        query = ancestor_query(root)
        db = edge_db(edges)
        rewritten = rewrite(program, query, method="magic")
        for use_planner in (False, True):
            report = check_optimality(
                rewritten, db, use_planner=use_planner
            )
            assert report.sip_optimal, report.mismatches


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------

class TestPlanCache:
    def test_bottom_up_reuses_plans(self):
        cache = PlanCache()
        program = ancestor_program()
        db = chain_database(6)
        first = evaluate_seminaive(program, db, plan_cache=cache)
        second = evaluate_seminaive(program, db, plan_cache=cache)
        assert first.stats.plan_cache_misses == 1
        assert first.stats.plan_cache_hits == 0
        assert second.stats.plan_cache_hits == 1
        assert second.stats.plan_cache_misses == 0
        assert second.derived_tuples("anc") == first.derived_tuples("anc")

    def test_qsq_reuses_plans(self):
        cache = PlanCache()
        adorned = adorn_program(ancestor_program(), ancestor_query("n0"))
        db = chain_database(6)
        first = qsq_evaluate(
            adorned.program, db, adorned.query_literal, plan_cache=cache
        )
        second = qsq_evaluate(
            adorned.program, db, adorned.query_literal, plan_cache=cache
        )
        assert first.plan_cache_misses == 1
        assert second.plan_cache_hits == 1
        assert second.answers == first.answers

    def test_structural_identity_shares_entries(self):
        # two parses of the same source hash equal -> one compilation
        cache = PlanCache()
        source = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y)."
        p1 = parse_program(source).program
        p2 = parse_program(source).program
        assert p1 is not p2
        db = chain_database(4)
        evaluate_seminaive(p1, db, plan_cache=cache)
        second = evaluate_seminaive(p2, db, plan_cache=cache)
        assert second.stats.plan_cache_hits == 1

    def test_kinds_do_not_collide(self):
        cache = PlanCache()
        adorned = adorn_program(ancestor_program(), ancestor_query("n0"))
        db = chain_database(4)
        qsq_evaluate(
            adorned.program, db, adorned.query_literal, plan_cache=cache
        )
        result = evaluate_seminaive(
            adorned.program, db, plan_cache=cache
        )
        # same program, different compilation kind: a miss, not a hit
        assert result.stats.plan_cache_misses == 1
        assert len(cache) == 2

    def test_eviction_bound(self):
        cache = PlanCache(maxsize=2)
        programs = [
            parse_program(f"p{i}(X) :- e(X).").program for i in range(4)
        ]
        for program in programs:
            subquery_program_for(program, cache)
        assert len(cache) == 2
        # least recently used entries were evicted: recompiling the
        # first program misses again
        _, hit = subquery_program_for(programs[0], cache)
        assert not hit

    def test_shared_cache_is_default(self):
        from repro import shared_plan_cache

        program = parse_program("zz_unique(X) :- e(X).").program
        db = Database()
        db.add_values("e", [("a",)])
        cache = shared_plan_cache()
        first = evaluate_seminaive(program, db)
        second = evaluate_seminaive(program, db)
        assert first.stats.plan_cache_hits + first.stats.plan_cache_misses == 1
        assert second.stats.plan_cache_hits == 1


# ----------------------------------------------------------------------
# semi-naive delta indexes
# ----------------------------------------------------------------------

class TestDeltaIndexes:
    def test_constant_carrying_delta_literal_is_indexed(self):
        program = parse_program(
            """
            r(X) :- s(X).
            r(X) :- r(a), t(X).
            """
        ).program
        compiled = CompiledProgram(program)
        assert compiled.delta_index_positions() == {"r": ((0,),)}

    def test_variable_only_delta_literals_need_no_index(self):
        compiled = CompiledProgram(ancestor_program())
        assert compiled.delta_index_positions() == {}

    def test_evaluation_unchanged(self):
        program = parse_program(
            """
            r(X) :- s(X).
            r(X) :- r(a), t(X).
            """
        ).program
        db = Database()
        db.add_values("s", [("a",), ("b",)])
        db.add_values("t", [("c",), ("d",)])
        legacy = evaluate_seminaive(program, db, use_planner=False)
        planned = evaluate_seminaive(program, db, use_planner=True)
        assert planned.derived_tuples("r") == legacy.derived_tuples("r")
        assert planned.derived_tuples("r") == {
            (c("a"),), (c("b",),), (c("c"),), (c("d"),),
        }


# ----------------------------------------------------------------------
# Relation.add_many bulk path
# ----------------------------------------------------------------------

class TestAddManyBulk:
    def rows(self, n, offset=0):
        return [(c(i + offset), c(i + offset + 1)) for i in range(n)]

    def test_counts_and_dedup(self):
        rel = Relation("e")
        assert rel.add_many(self.rows(10)) == 10
        # 5 duplicates, 5 new
        assert rel.add_many(self.rows(10, offset=5)) == 5
        assert len(rel) == 15

    def test_intra_batch_duplicates(self):
        rel = Relation("e")
        assert rel.add_many(self.rows(3) + self.rows(3)) == 3

    def test_validation_before_mutation(self):
        rel = Relation("e")
        rel.add_many(self.rows(3))
        bad = self.rows(2) + [(c(99),)]  # arity mismatch at the end
        with pytest.raises(ValueError):
            rel.add_many(bad)
        # the bulk path validates up front: nothing from the batch landed
        assert len(rel) == 3
        with pytest.raises(ValueError):
            rel.add_many([(Variable("X"), c(1))])
        assert len(rel) == 3

    def test_index_consistency_small_batch(self):
        rel = Relation("e")
        rel.add_many(self.rows(40))
        rel.register_index((0,))
        rel.add_many(self.rows(5, offset=100))
        assert rel.lookup((0,), (c(100),)) == [(c(100), c(101))]
        assert rel.lookup((0,), (c(3),)) == [(c(3), c(4))]

    def test_index_consistency_dominating_batch(self):
        rel = Relation("e")
        rel.add_many(self.rows(3))
        rel.register_index((1,))
        rel.add_many(self.rows(50, offset=200))
        assert rel.lookup((1,), (c(201),)) == [(c(200), c(201))]
        assert rel.lookup((1,), (c(1),)) == [(c(0), c(1))]
        # no duplicated bucket entries for pre-existing rows
        assert sum(len(rel.lookup((1,), (c(i + 1),))) for i in range(3)) == 3
        # overlapping re-insert leaves buckets duplicate-free
        rel.add_many(self.rows(50, offset=200))
        assert rel.lookup((1,), (c(201),)) == [(c(200), c(201))]

    def test_empty_batch(self):
        rel = Relation("e")
        assert rel.add_many([]) == 0


# ----------------------------------------------------------------------
# QSQResult.query_answers
# ----------------------------------------------------------------------

class TestQueryAnswers:
    def test_indexed_filter_matches_generic(self):
        adorned, legacy, compiled = run_both(
            ancestor_program(), ancestor_query("n0"), chain_database(8)
        )
        fast = compiled.query_answers(adorned.query_literal)
        generic = compiled._query_answers_generic(adorned.query_literal)
        assert fast == generic
        assert fast == legacy.query_answers(adorned.query_literal)

    def test_repeated_variable_falls_back(self):
        from repro.datalog.topdown import QSQResult

        x = Variable("X")
        result = QSQResult(
            answers={"p^ff": {(c(1), c(1)), (c(1), c(2))}}
        )
        literal = Literal("p", (x, x), "ff")
        assert result.query_answers(literal) == {(c(1), c(1))}

    def test_no_answers(self):
        from repro.datalog.topdown import QSQResult

        result = QSQResult()
        literal = Literal("p", (Variable("X"),), "f")
        assert result.query_answers(literal) == set()
