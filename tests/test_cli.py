"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main

ANCESTOR = """
% ancestor
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(john, mary).
par(mary, sue).
anc(john, Y)?
"""

REVERSE = """
append(V, [], [V]).
append(V, [W | X], [W | Y]) :- append(V, X, Y).
reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "anc.dl"
    path.write_text(ANCESTOR)
    return str(path)


class TestRewrite:
    def test_magic(self, program_file, capsys):
        assert main(["rewrite", program_file, "--method", "magic"]) == 0
        out = capsys.readouterr().out
        assert "magic_anc_bf(john)." in out
        assert "anc^bf(X, Y) :- magic_anc_bf(X), par(X, Y)." in out

    def test_counting_structural(self, program_file, capsys):
        code = main(
            [
                "rewrite",
                program_file,
                "--method",
                "counting",
                "--mode",
                "structural",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ix(IX, 2, 2)" in out

    def test_semijoin_flag(self, program_file, capsys):
        code = main(
            ["rewrite", program_file, "--method", "counting", "--semijoin"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "% method: counting_semijoin" in out

    def test_chain_sip(self, program_file, capsys):
        assert main(["rewrite", program_file, "--sip", "chain"]) == 0

    def test_semijoin_on_magic_is_an_error(self, program_file, capsys):
        code = main(
            ["rewrite", program_file, "--method", "magic", "--semijoin"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_answers(self, program_file, capsys):
        assert main(["query", program_file]) == 0
        out = capsys.readouterr().out
        assert "mary" in out and "sue" in out

    def test_explicit_query_overrides_file(self, program_file, capsys):
        assert main(
            ["query", program_file, "--query", "anc(mary, Y)?"]
        ) == 0
        out = capsys.readouterr().out
        assert "sue" in out and "mary\n" not in out

    def test_boolean_query(self, program_file, capsys):
        assert main(
            ["query", program_file, "--query", "anc(john, sue)?"]
        ) == 0
        assert capsys.readouterr().out.strip() == "yes"
        assert main(
            ["query", program_file, "--query", "anc(sue, john)?"]
        ) == 0
        assert capsys.readouterr().out.strip() == "no"

    def test_stats_on_stderr(self, program_file, capsys):
        assert main(["query", program_file, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "facts=" in err

    def test_extra_facts_file(self, tmp_path, capsys):
        program = tmp_path / "p.dl"
        program.write_text(
            "anc(X, Y) :- par(X, Y).\n"
            "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
        )
        facts = tmp_path / "f.dl"
        facts.write_text("par(a, b).\npar(b, c).\n")
        code = main(
            [
                "query",
                str(program),
                "--facts",
                str(facts),
                "--query",
                "anc(a, Y)?",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b" in out and "c" in out

    def test_facts_file_with_rules_rejected(self, tmp_path, capsys):
        program = tmp_path / "p.dl"
        program.write_text("anc(X, Y) :- par(X, Y).\nanc(a, Y)?\n")
        facts = tmp_path / "f.dl"
        facts.write_text("bad(X) :- par(X, X).\n")
        code = main(["query", str(program), "--facts", str(facts)])
        assert code == 1


class TestAdornAndSafety:
    def test_adorn(self, program_file, capsys):
        assert main(["adorn", program_file]) == 0
        out = capsys.readouterr().out
        assert "anc^bf" in out

    def test_safety_datalog(self, program_file, capsys):
        assert main(["safety", program_file]) == 0
        out = capsys.readouterr().out
        assert "SAFE" in out
        assert "Theorem 10.2" in out

    def test_safety_reverse(self, tmp_path, capsys):
        path = tmp_path / "rev.dl"
        path.write_text(REVERSE + 'reverse([a, b], Y)?\n')
        assert main(["safety", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("SAFE") == 2
        assert "Theorem 10.1" in out


class TestExplain:
    def test_derivation_tree_printed(self, program_file, capsys):
        assert main(["explain", program_file, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "[by anc(X, Y)" in out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent.dl"]) == 1

    def test_no_query(self, tmp_path, capsys):
        path = tmp_path / "p.dl"
        path.write_text("anc(X, Y) :- par(X, Y).\n")
        assert main(["query", str(path)]) == 1
        assert "no query" in capsys.readouterr().err


class TestStatsJson:
    def test_one_json_object_on_stdout(self, program_file, capsys):
        import json

        code = main(
            ["query", program_file, "--method", "auto", "--stats-json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # exactly one object, nothing else
        assert payload["row_count"] == 2
        assert sorted(payload["rows"]) == [["mary"], ["sue"]]
        assert payload["requested_method"] == "auto"
        assert payload["method"] != "auto"
        assert payload["from_memo"] is False
        for key in (
            "facts_derived", "iterations", "plan_cache_hits",
            "memo_hits", "memo_misses", "db_version", "elapsed",
        ):
            assert key in payload, key

    def test_repeat_reports_memo_hit(self, program_file, capsys):
        import json

        code = main(
            ["query", program_file, "--stats-json", "--repeat", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["from_memo"] is True
        assert payload["memo_hits"] == 2

    def test_boolean_query_rows(self, program_file, capsys):
        import json

        code = main(
            ["query", program_file, "--query", "anc(john, sue)?",
             "--stats-json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["free_variables"] == []
        assert payload["rows"] == [[]]  # yes: one empty binding


class TestServeParser:
    def test_serve_registered_with_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "prog.dl"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.readers == 4
        assert args.materialize is None

    def test_serve_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "prog.dl", "--port", "7471", "--readers", "8",
             "--max-timeout", "2.5", "--max-facts", "1000",
             "--materialize", "anc", "--materialize", "path"]
        )
        assert args.port == 7471
        assert args.readers == 8
        assert args.max_timeout == 2.5
        assert args.max_facts == 1000
        assert args.materialize == ["anc", "path"]
