"""Edge cases across the stack: constants in rules, propositional
predicates, structured facts, repeated variables, empty databases."""


from repro import (
    Constant,
    Database,
    Literal,
    Struct,
    Variable,
    answer_query,
    bottom_up_answer,
    evaluate,
    parse_program,
    parse_query,
    rewrite,
)


class TestConstantsInRules:
    def test_constant_in_rule_head(self):
        program = parse_program(
            """
            vip(alice, X) :- invite(X).
            reach(X, Y) :- vip(X, Y).
            reach(X, Y) :- vip(X, Z), knows(Z, Y).
            """
        ).program
        db = Database()
        db.add_values("invite", [("bob",), ("eve",)])
        db.add_values("knows", [("bob", "dan")])
        query = parse_query("reach(alice, Y)?")
        baseline = bottom_up_answer(program, db, query)
        for method in ("magic", "supplementary_magic"):
            answer = answer_query(program, db, query, method=method)
            assert answer.answers == baseline.answers
        assert {str(r[0]) for r in baseline.answers} == {"bob", "eve", "dan"}

    def test_constant_in_rule_body(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, hub), e(hub, Y).
            """
        ).program
        db = Database()
        db.add_values("e", [("a", "hub"), ("hub", "b"), ("a", "c")])
        query = parse_query("t(a, Y)?")
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method="magic")
        assert answer.answers == baseline.answers
        assert {str(r[0]) for r in answer.answers} == {"hub", "c", "b"}


class TestPropositionalPredicates:
    def test_zero_ary_predicates(self):
        program = parse_program(
            """
            alarm :- smoke, heat.
            evacuate :- alarm.
            """
        ).program
        db = Database()
        db.add_fact(Literal("smoke"))
        db.add_fact(Literal("heat"))
        result = evaluate(program, db)
        assert result.database.tuples("alarm") == {()}
        assert result.database.tuples("evacuate") == {()}

    def test_zero_ary_query(self):
        program = parse_program("alarm :- smoke.").program
        db = Database()
        db.add_fact(Literal("smoke"))
        query = parse_query("alarm?")
        answer = bottom_up_answer(program, db, query)
        assert answer.answers == {()}


class TestStructuredFacts:
    def test_facts_with_function_terms(self):
        program = parse_program(
            """
            owner(P, C) :- has(P, car(C)).
            """
        ).program
        db = Database()
        db.add_fact(
            Literal(
                "has",
                (Constant("ann"), Struct("car", (Constant("tesla"),))),
            )
        )
        result = evaluate(program, db)
        assert result.database.tuples("owner") == {
            (Constant("ann"), Constant("tesla"))
        }

    def test_magic_with_struct_query_constant(self):
        program = parse_program(
            """
            boxed(B, X) :- wraps(B, X).
            boxed(B, X) :- wraps(B, Y), boxed(Y, X).
            """
        ).program
        db = Database()
        box = lambda v: Struct("box", (v,))
        inner = Constant("gift")
        level1 = box(inner)
        level2 = box(level1)
        db.add_fact(Literal("wraps", (level2, level1)))
        db.add_fact(Literal("wraps", (level1, inner)))
        from repro import Query

        query = Query(Literal("boxed", (level2, Variable("X"))))
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method="magic")
        assert answer.answers == baseline.answers
        assert len(answer.answers) == 2


class TestRepeatedVariables:
    def test_repeated_variable_in_body_literal(self):
        program = parse_program(
            """
            refl(X) :- e(X, X).
            twice(X, Y) :- refl(X), e(X, Y).
            """
        ).program
        db = Database()
        db.add_values("e", [("a", "a"), ("a", "b"), ("b", "c")])
        query = parse_query("twice(a, Y)?")
        answer = answer_query(program, db, query, method="magic")
        assert {str(r[0]) for r in answer.answers} == {"a", "b"}

    def test_repeated_variable_in_rule_head(self):
        program = parse_program(
            """
            selfpair(X, X) :- node(X).
            """
        ).program
        db = Database()
        db.add_values("node", [("a",), ("b",)])
        result = evaluate(program, db)
        assert (Constant("a"), Constant("a")) in result.database.tuples(
            "selfpair"
        )


class TestEmptyAndDegenerate:
    def test_empty_database(self):
        from repro.workloads import ancestor_program, ancestor_query

        answer = answer_query(
            ancestor_program(), Database(), ancestor_query("a")
        )
        assert answer.answers == set()

    def test_query_constant_absent_from_data(self):
        from repro.workloads import ancestor_program, chain_database

        answer = answer_query(
            ancestor_program(),
            chain_database(4),
            parse_query("anc(ghost, Y)?"),
        )
        assert answer.answers == set()

    def test_single_rule_single_fact(self):
        program = parse_program("out(X) :- inp(X).").program
        db = Database()
        db.add_values("inp", [("v",)])
        answer = answer_query(program, db, parse_query("out(X)?"))
        assert answer.values() == {("v",)}

    def test_rewrite_reusable_across_queries_of_same_form(self):
        """The paper keeps seeds out of P^mg so the rewrite is reusable;
        check two different constants against one rewritten program."""
        from repro.core.magic import magic_literal_for
        from repro.workloads import ancestor_program, chain_database

        program = ancestor_program()
        db = chain_database(6)
        rewritten = rewrite(
            program, parse_query("anc(n0, Y)?"), method="magic"
        )
        # reuse for a different seed: swap the seed fact only
        for root, expected in (("n0", 6), ("n3", 3)):
            seeded = db.copy()
            seeded.add_fact(
                Literal("magic_anc_bf", (Constant(root),))
            )
            result = evaluate(rewritten.program, seeded)
            answers = {
                row
                for row in result.database.tuples("anc^bf")
                if row[0] == Constant(root)
            }
            assert len(answers) == expected


class TestDeepRecursion:
    def test_long_chain(self):
        from repro.workloads import ancestor_program, chain_database

        answer = answer_query(
            ancestor_program(),
            chain_database(200),
            parse_query("anc(n0, Y)?"),
        )
        assert len(answer.answers) == 200

    def test_deep_list_reverse(self):
        from repro.workloads import (
            integer_list,
            list_reverse_program,
            reverse_query,
        )

        answer = answer_query(
            list_reverse_program(),
            Database(),
            reverse_query(integer_list(25)),
            method="supplementary_magic",
            max_iterations=3000,
        )
        term = next(iter(answer.answers))[0]
        assert str(term).startswith("[24, 23, 22")
