"""Shared test helpers: canonical rule strings for appendix comparisons.

The appendix-comparison tests check that our rewriters regenerate the
paper's rule sets *structurally*: rules are compared after renaming
variables to ``A, B, C, ...`` in first-occurrence order (head first),
so tests are robust to the generator's variable names.
"""

from __future__ import annotations

import string
from typing import Iterable, List

import pytest

from repro import Program, Rule, Variable
from repro.core.provenance import RewrittenProgram


def canonical_rule(rule: Rule) -> str:
    """The rule with variables renamed A, B, C, ... by first occurrence."""
    names = list(string.ascii_uppercase) + [
        f"V{i}" for i in range(100)
    ]
    mapping = {}
    for var in rule.variables():
        mapping[var] = Variable(names[len(mapping)])
    return str(rule.substitute(mapping))


def canonical_rules(program) -> List[str]:
    """Sorted canonical strings of a Program or RewrittenProgram."""
    if isinstance(program, RewrittenProgram):
        rules = [rr.rule for rr in program.rules]
    elif isinstance(program, Program):
        rules = list(program.rules)
    else:
        rules = [ar.rule for ar in program.rules]  # AdornedProgram
    return sorted(canonical_rule(rule) for rule in rules)


def assert_rules_equal(actual, expected: Iterable[str]) -> None:
    """Assert a rewrite's rules equal the expected canonical strings."""
    got = canonical_rules(actual)
    want = sorted(expected)
    assert got == want, (
        "rule sets differ\n--- got ---\n"
        + "\n".join(got)
        + "\n--- want ---\n"
        + "\n".join(want)
    )


@pytest.fixture
def canon():
    return canonical_rule
