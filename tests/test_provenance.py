"""Provenance and RewrittenProgram behaviour (repro.core.provenance)."""


from repro import evaluate, rewrite
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    nonlinear_samegen_program,
    samegen_query,
)


class TestRuleProvenance:
    def test_roles_assigned(self):
        rewritten = rewrite(
            nonlinear_samegen_program(), samegen_query("a"), method="magic"
        )
        roles = {rr.provenance.role for rr in rewritten.rules}
        assert roles == {"magic", "modified"}

    def test_supplementary_roles(self):
        rewritten = rewrite(
            nonlinear_samegen_program(),
            samegen_query("a"),
            method="supplementary_magic",
        )
        roles = {rr.provenance.role for rr in rewritten.rules}
        assert "supplementary" in roles

    def test_body_origins_parallel_bodies(self):
        for method in (
            "magic",
            "supplementary_magic",
            "counting",
            "supplementary_counting",
        ):
            rewritten = rewrite(
                nonlinear_samegen_program(), samegen_query("a"), method=method
            )
            for rr in rewritten.rules:
                assert len(rr.provenance.body_origins) == len(rr.rule.body), (
                    method,
                    str(rr.rule),
                )

    def test_origin_kinds(self):
        rewritten = rewrite(
            ancestor_program(), ancestor_query("a"), method="magic"
        )
        kinds = {
            origin.kind
            for rr in rewritten.rules
            for origin in rr.provenance.body_origins
        }
        assert kinds == {"guard", "literal"}


class TestRewrittenProgram:
    def test_seeded_database_does_not_mutate(self):
        rewritten = rewrite(ancestor_program(), ancestor_query("n0"))
        db = chain_database(3)
        seeded = rewritten.seeded_database(db)
        assert seeded.total_facts() == db.total_facts() + 1
        assert "magic_anc_bf" not in db.predicate_keys()

    def test_extract_answers_selection(self):
        from repro import parse_query

        program = ancestor_program()
        query = parse_query("anc(n0, n3)?")  # fully bound
        rewritten = rewrite(program, query, method="magic")
        result = evaluate(
            rewritten.program, rewritten.seeded_database(chain_database(5))
        )
        assert rewritten.extract_answers(result) == {()}

    def test_fact_breakdown_classification(self):
        rewritten = rewrite(
            ancestor_program(), ancestor_query("n0"), method="magic"
        )
        result = evaluate(
            rewritten.program, rewritten.seeded_database(chain_database(10))
        )
        breakdown = rewritten.fact_breakdown(result)
        # chain of 10: 55 anc facts from n0..n9 roots, 11 magic values
        assert breakdown["adorned"] == 55
        assert breakdown["magic"] == 11
        assert breakdown["total"] == 66

    def test_str_contains_seed_marker(self):
        rewritten = rewrite(ancestor_program(), ancestor_query("n0"))
        assert "% seed" in str(rewritten)

    def test_program_property_round_trips(self):
        rewritten = rewrite(ancestor_program(), ancestor_query("n0"))
        assert len(rewritten.program) == len(rewritten.rules)
