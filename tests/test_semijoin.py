"""The semijoin optimization -- Section 8 (experiment E12, plus the
optimized appendix rule sets of A.5/A.6 and Example 8)."""

import pytest

from repro import (
    RewriteError,
    evaluate,
    lemma_8_1_prune,
    lemma_8_2_anonymize,
    rewrite,
    semijoin_optimize,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_samegen_program,
    reverse_query,
    samegen_database,
    samegen_query,
    tree_database,
)

from conftest import assert_rules_equal, canonical_rules


class TestOptimizedAppendixSets:
    def test_ancestor_counting(self):
        """A.5.1 optimized: the recursive modified rule becomes a pure
        index walk."""
        rewritten = semijoin_optimize(
            rewrite(ancestor_program(), ancestor_query("john"), method="counting")
        )
        assert_rules_equal(
            rewritten,
            [
                "anc_ix_bf(A, B, C, D) :- anc_ix_bf(A+1, 2*B+2, 2*C+2, D).",
                "anc_ix_bf(A, B, C, D) :- cnt_anc_bf(A, B, C, E), par(E, D).",
                "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- "
                "cnt_anc_bf(A, B, C, E), par(E, D).",
            ],
        )

    def test_ancestor_supplementary_counting(self):
        """A.6.1 optimized, including the dropped supcnt argument."""
        rewritten = semijoin_optimize(
            rewrite(
                ancestor_program(),
                ancestor_query("john"),
                method="supplementary_counting",
            )
        )
        assert_rules_equal(
            rewritten,
            [
                "anc_ix_bf(A, B, C, D) :- anc_ix_bf(A+1, 2*B+2, 2*C+2, D).",
                "anc_ix_bf(A, B, C, D) :- cnt_anc_bf(A, B, C, E), par(E, D).",
                "cnt_anc_bf(A+1, 2*B+2, 2*C+2, D) :- supcnt2_2(A, B, C, D).",
                "supcnt2_2(A, B, C, D) :- cnt_anc_bf(A, B, C, E), par(E, D).",
            ],
        )

    def test_nonlinear_samegen_example_8(self):
        rewritten = semijoin_optimize(
            rewrite(
                nonlinear_samegen_program(),
                samegen_query("john"),
                method="counting",
            )
        )
        assert_rules_equal(
            rewritten,
            [
                "cnt_sg_bf(A+1, 2*B+2, 5*C+2, D) :- "
                "cnt_sg_bf(A, B, C, E), up(E, D).",
                "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- "
                "sg_ix_bf(A+1, 2*B+2, 5*C+2, E), flat(E, D).",
                "sg_ix_bf(A, B, C, D) :- cnt_sg_bf(A, B, C, E), flat(E, D).",
                "sg_ix_bf(A, B, C, D) :- sg_ix_bf(A+1, 2*B+2, 5*C+4, E), "
                "down(E, D).",
            ],
        )

    def test_nested_samegen_counting(self):
        """A.5.3 optimized."""
        rewritten = semijoin_optimize(
            rewrite(
                nested_samegen_program(),
                nested_samegen_query("john"),
                method="counting",
            )
        )
        assert_rules_equal(
            rewritten,
            [
                "cnt_p_bf(A+1, 4*B+2, 3*C+2, D) :- "
                "sg_ix_bf(A+1, 4*B+2, 3*C+1, D).",
                "cnt_sg_bf(A+1, 4*B+2, 3*C+1, D) :- cnt_p_bf(A, B, C, D).",
                "cnt_sg_bf(A+1, 4*B+4, 3*C+2, D) :- "
                "cnt_sg_bf(A, B, C, E), up(E, D).",
                "p_ix_bf(A, B, C, D) :- cnt_p_bf(A, B, C, E), b1(E, D).",
                "p_ix_bf(A, B, C, D) :- p_ix_bf(A+1, 4*B+2, 3*C+2, E), "
                "b2(E, D).",
                "sg_ix_bf(A, B, C, D) :- cnt_sg_bf(A, B, C, E), flat(E, D).",
                "sg_ix_bf(A, B, C, D) :- sg_ix_bf(A+1, 4*B+4, 3*C+2, E), "
                "down(E, D).",
            ],
        )

    def test_nested_samegen_supplementary_counting(self):
        """A.6.3 optimized, with the dead supcnt position dropped."""
        rewritten = semijoin_optimize(
            rewrite(
                nested_samegen_program(),
                nested_samegen_query("john"),
                method="supplementary_counting",
            )
        )
        rules = canonical_rules(rewritten)
        assert (
            "supcnt2_2(A, B, C, D) :- sg_ix_bf(A+1, 4*B+2, 3*C+1, D)."
            in rules
        )
        assert (
            "p_ix_bf(A, B, C, D) :- p_ix_bf(A+1, 4*B+2, 3*C+2, E), "
            "b2(E, D)." in rules
        )

    def test_list_reverse_unchanged(self):
        """Reverse's bound arguments support real joins (V rides through
        append's third argument); the optimization must not fire."""
        rewritten = rewrite(
            list_reverse_program(),
            reverse_query(integer_list(2)),
            method="counting",
        )
        optimized = semijoin_optimize(rewritten)
        assert canonical_rules(optimized) == canonical_rules(rewritten)


class TestCorrectness:
    @pytest.mark.parametrize("method", ["counting", "supplementary_counting"])
    @pytest.mark.parametrize(
        "db_maker,root",
        [(lambda: chain_database(9), "n0"), (lambda: tree_database(4), "r")],
    )
    def test_answers_preserved_on_ancestor(self, method, db_maker, root):
        program = ancestor_program()
        db = db_maker()
        query = ancestor_query(root)
        plain = rewrite(program, query, method=method)
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(plain.program, plain.seeded_database(db))
        opt_res = evaluate(optimized.program, optimized.seeded_database(db))
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )

    def test_answers_preserved_on_nonlinear_samegen(self):
        program = nonlinear_samegen_program()
        query = samegen_query("L0_0")
        db = samegen_database(3, 4, flat_edges=6)
        plain = rewrite(program, query, method="counting")
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(
            plain.program, plain.seeded_database(db), max_iterations=400
        )
        opt_res = evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=400,
        )
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )

    def test_narrower_facts_and_fewer_scans(self):
        """The optimization shrinks fact width and join work (Section 11:
        'reduces the number of joins ... and the width')."""
        program = ancestor_program()
        query = ancestor_query("n0")
        db = chain_database(30)
        plain = rewrite(program, query, method="counting")
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(plain.program, plain.seeded_database(db))
        opt_res = evaluate(optimized.program, optimized.seeded_database(db))
        assert (
            opt_res.stats.tuples_scanned < plain_res.stats.tuples_scanned
        )
        plain_width = len(next(iter(plain_res.database.tuples("anc_ix_bf"))))
        opt_width = len(next(iter(opt_res.database.tuples("anc_ix_bf"))))
        assert opt_width == plain_width - 1


class TestLemmaLevelPasses:
    def test_lemma_8_1_deletes_tails_keeps_width(self):
        rewritten = rewrite(
            nonlinear_samegen_program(),
            samegen_query("john"),
            method="counting",
        )
        pruned = lemma_8_1_prune(rewritten)
        rules = canonical_rules(pruned)
        # the second counting rule loses its cnt/up prefix (the paper's
        # first illustration in Section 8) ...
        assert (
            "cnt_sg_bf(A+1, 2*B+2, 5*C+4, D) :- "
            "sg_ix_bf(A+1, 2*B+2, 5*C+2, E, F), flat(F, D)." in rules
        )
        # ... but relations keep their bound columns
        assert any("sg_ix_bf(A, B, C, D, E)" in r for r in rules)

    def test_lemma_8_2_anonymizes_dont_care_arguments(self):
        rewritten = rewrite(
            nonlinear_samegen_program(),
            samegen_query("john"),
            method="counting",
        )
        pruned = lemma_8_1_prune(rewritten)
        anonymized = lemma_8_2_anonymize(pruned)
        # after the Lemma 8.1 pruning, the bound argument of sg_ix in the
        # second counting rule is a don't-care and gets anonymized
        variables = {
            var.name
            for rr in anonymized.rules
            for var in rr.rule.variables()
        }
        assert any(name.startswith("_sj") for name in variables)

    def test_lemma_passes_preserve_answers(self):
        program = nonlinear_samegen_program()
        query = samegen_query("L0_0")
        db = samegen_database(3, 4, flat_edges=6)
        plain = rewrite(program, query, method="counting")
        for transform in (lemma_8_1_prune, lemma_8_2_anonymize):
            optimized = transform(plain)
            plain_res = evaluate(
                plain.program, plain.seeded_database(db), max_iterations=400
            )
            opt_res = evaluate(
                optimized.program,
                optimized.seeded_database(db),
                max_iterations=400,
            )
            assert plain.extract_answers(
                plain_res
            ) == optimized.extract_answers(opt_res)


class TestGuards:
    def test_rejects_magic_methods(self):
        rewritten = rewrite(
            ancestor_program(), ancestor_query("a"), method="magic"
        )
        with pytest.raises(RewriteError):
            semijoin_optimize(rewritten)

    def test_pipeline_flag(self):
        optimized = rewrite(
            ancestor_program(),
            ancestor_query("a"),
            method="counting",
            semijoin=True,
        )
        assert optimized.method == "counting_semijoin"
        with pytest.raises(RewriteError):
            rewrite(
                ancestor_program(),
                ancestor_query("a"),
                method="magic",
                semijoin=True,
            )
