"""Derivation-tree reconstruction (repro.datalog.derivation).

Section 1.1: every derived fact has a finite derivation tree with the
fact at the root and base facts at the leaves.
"""

import pytest

from repro import Constant, EvaluationError, Literal, parse_program
from repro.datalog.derivation import explain, fact_stages
from repro.datalog.engine import evaluate
from repro.workloads import ancestor_program, chain_database


def c(value):
    return Constant(value)


@pytest.fixture
def chain_setup():
    program = ancestor_program()
    db = chain_database(5)
    result = evaluate(program, db)
    return program, db, result


class TestStages:
    def test_base_facts_not_staged(self, chain_setup):
        program, db, result = chain_setup
        stages = fact_stages(program, db, result)
        assert "par" not in stages or not stages.get("par")

    def test_stages_are_simultaneous(self, chain_setup):
        """anc pairs at distance d appear at stage d."""
        program, db, result = chain_setup
        stages = fact_stages(program, db, result)
        for (src, dst), stage in (
            ((0, 1), 1),
            ((0, 2), 2),
            ((0, 5), 5),
            ((3, 5), 2),
        ):
            row = (c(f"n{src}"), c(f"n{dst}"))
            assert stages["anc"][row] == stage

    def test_seeded_facts_stage_zero(self):
        from repro import rewrite
        from repro.workloads import ancestor_query

        program = ancestor_program()
        query = ancestor_query("n0")
        rewritten = rewrite(program, query, method="magic")
        db = chain_database(4)
        seeded = rewritten.seeded_database(db)
        result = evaluate(rewritten.program, seeded)
        stages = fact_stages(rewritten.program, seeded, result)
        seed_row = (c("n0"),)
        assert stages["magic_anc_bf"][seed_row] == 0


class TestExplain:
    def test_direct_fact(self, chain_setup):
        program, db, result = chain_setup
        tree = explain(
            program, db, result, Literal("anc", (c("n0"), c("n1")))
        )
        assert tree.rule is not None
        assert tree.height() == 2
        assert [str(leaf) for leaf in tree.leaves()] == ["par(n0, n1)"]

    def test_deep_fact_has_chain_of_rules(self, chain_setup):
        program, db, result = chain_setup
        tree = explain(
            program, db, result, Literal("anc", (c("n0"), c("n5")))
        )
        # the linear rule gives a left-deep tree of height 6 (5 anc
        # nodes + the base fact)
        assert tree.height() == 6
        leaves = [str(leaf) for leaf in tree.leaves()]
        assert leaves == [f"par(n{i}, n{i + 1})" for i in range(5)]

    def test_size_counts_nodes(self, chain_setup):
        program, db, result = chain_setup
        tree = explain(
            program, db, result, Literal("anc", (c("n0"), c("n2")))
        )
        assert tree.size() == tree.render().count("\n") + 1

    def test_underivable_fact_rejected(self, chain_setup):
        program, db, result = chain_setup
        with pytest.raises(EvaluationError):
            explain(program, db, result, Literal("anc", (c("n5"), c("n0"))))

    def test_non_ground_rejected(self, chain_setup):
        from repro import Variable

        program, db, result = chain_setup
        with pytest.raises(EvaluationError):
            explain(
                program, db, result, Literal("anc", (c("n0"), Variable("Y")))
            )

    def test_base_fact_is_leaf(self, chain_setup):
        program, db, result = chain_setup
        tree = explain(
            program, db, result, Literal("par", (c("n0"), c("n1")))
        )
        assert tree.is_leaf()

    def test_nonlinear_rules(self):
        program = parse_program(
            """
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), anc(Z, Y).
            """
        ).program
        db = chain_database(4)
        result = evaluate(program, db)
        tree = explain(
            program, db, result, Literal("anc", (c("n0"), c("n4")))
        )
        assert tree.rule is not None
        leaves = {str(leaf) for leaf in tree.leaves()}
        assert leaves <= {f"par(n{i}, n{i + 1})" for i in range(4)}

    def test_explains_rewritten_program_facts(self):
        """Derivations work on magic-rewritten programs too (seeds are
        leaves)."""
        from repro import rewrite
        from repro.workloads import ancestor_query

        program = ancestor_program()
        query = ancestor_query("n0")
        rewritten = rewrite(program, query, method="magic")
        db = chain_database(4)
        seeded = rewritten.seeded_database(db)
        result = evaluate(rewritten.program, seeded)
        magic_fact = Literal("magic_anc_bf", (c("n2"),))
        tree = explain(rewritten.program, seeded, result, magic_fact)
        leaves = [str(leaf) for leaf in tree.leaves()]
        # the magic set's derivation bottoms out at the seed
        assert "magic_anc_bf(n0)" in leaves

    def test_render_contains_rules(self, chain_setup):
        program, db, result = chain_setup
        tree = explain(
            program, db, result, Literal("anc", (c("n0"), c("n2")))
        )
        text = tree.render()
        assert "[by anc(X, Y) :- par(X, Z), anc(Z, Y).]" in text
