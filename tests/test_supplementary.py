"""Generalized supplementary magic -- Section 5, Appendix A.4 (E3)."""


from repro import parse_query, rewrite
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import assert_rules_equal, canonical_rules


def gsms(program, query, **kwargs):
    return rewrite(program, query, method="supplementary_magic", **kwargs)


class TestAppendixA4:
    """The four GSMS rewrites of Appendix A.4 (optimized forms)."""

    def test_ancestor(self):
        rewritten = gsms(ancestor_program(), ancestor_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
                "anc^bf(A, B) :- supmagic2_2(A, C), anc^bf(C, B).",
                "magic_anc_bf(A) :- supmagic2_2(B, A).",
                "supmagic2_2(A, B) :- magic_anc_bf(A), par(A, B).",
            ],
        )

    def test_nonlinear_ancestor(self):
        rewritten = gsms(
            nonlinear_ancestor_program(), ancestor_query("john")
        )
        # A.4.2: the tautology magic(X) :- magic(X) is deleted
        assert_rules_equal(
            rewritten,
            [
                "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
                "anc^bf(A, B) :- supmagic2_2(A, C), anc^bf(C, B).",
                "magic_anc_bf(A) :- supmagic2_2(B, A).",
                "supmagic2_2(A, B) :- magic_anc_bf(A), anc^bf(A, B).",
            ],
        )

    def test_nested_samegen(self):
        rewritten = gsms(
            nested_samegen_program(), nested_samegen_query("john")
        )
        assert_rules_equal(
            rewritten,
            [
                "magic_p_bf(A) :- supmagic2_2(B, A).",
                "magic_sg_bf(A) :- magic_p_bf(A).",
                "magic_sg_bf(A) :- supmagic4_2(B, A).",
                "p^bf(A, B) :- magic_p_bf(A), b1(A, B).",
                "p^bf(A, B) :- supmagic2_2(A, C), p^bf(C, D), b2(D, B).",
                "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
                "sg^bf(A, B) :- supmagic4_2(A, C), sg^bf(C, D), down(D, B).",
                "supmagic2_2(A, B) :- magic_p_bf(A), sg^bf(A, B).",
                "supmagic4_2(A, B) :- magic_sg_bf(A), up(A, B).",
            ],
        )

    def test_list_reverse(self):
        rewritten = gsms(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        assert_rules_equal(
            rewritten,
            [
                "append^bbf(A, [B | C], [B | D]) :- "
                "magic_append_bbf(A, [B | C]), append^bbf(A, C, D).",
                "append^bbf(A, [], [A]) :- magic_append_bbf(A, []).",
                "magic_append_bbf(A, B) :- magic_append_bbf(A, [C | B]).",
                "magic_append_bbf(A, B) :- supmagic2_2(A, C, B).",
                "magic_reverse_bf(A) :- magic_reverse_bf([B | A]).",
                "reverse^bf([A | B], C) :- supmagic2_2(A, B, D), "
                "append^bbf(A, D, C).",
                "reverse^bf([], []) :- magic_reverse_bf([]).",
                "supmagic2_2(A, B, C) :- magic_reverse_bf([A | B]), "
                "reverse^bf(B, C).",
            ],
        )


class TestExample5:
    def test_nonlinear_samegen(self):
        """Example 5: the supplementary chain stores each prefix join."""
        rewritten = gsms(nonlinear_samegen_program(), samegen_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "magic_sg_bf(A) :- supmagic2_2(B, A).",
                "magic_sg_bf(A) :- supmagic2_4(B, A).",
                "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
                "sg^bf(A, B) :- supmagic2_4(A, C), sg^bf(C, D), down(D, B).",
                "supmagic2_2(A, B) :- magic_sg_bf(A), up(A, B).",
                "supmagic2_3(A, B) :- supmagic2_2(A, C), sg^bf(C, B).",
                "supmagic2_4(A, B) :- supmagic2_3(A, C), flat(C, B).",
            ],
        )


class TestVariableTrimming:
    def test_phi_drops_dead_variables(self):
        """phi_j keeps only variables needed by the head or later body
        literals (the 'discard' optimization of Section 5)."""
        from repro import parse_program

        program = parse_program(
            """
            r(X, Y) :- e(X, Y).
            p(X, Y) :- a(X, U), b(U, V), r(V, W), c(W, Y).
            """
        ).program
        rewritten = gsms(program, parse_query("p(s, Y)?"))
        sup_rules = [
            rr
            for rr in rewritten.rules
            if rr.rule.head.pred.startswith("supmagic")
        ]
        # the sup predicate just before r must not carry X or U: only V
        # (for r) and nothing else is needed later (Y comes from c)
        last_sup = max(sup_rules, key=lambda rr: rr.rule.head.pred)
        arg_names = {str(a) for a in last_sup.rule.head.args}
        # U is dead after b is joined; X stays (the head needs it) and V
        # stays (r consumes it)
        assert "U" not in arg_names
        assert "V" in arg_names
        assert "X" in arg_names


class TestAllFreeFallback:
    def test_all_free_head_uses_gms_rules(self):
        """Rules invoked all-free have no magic seed; GSMS falls back to
        GMS-style magic rules for their body occurrences."""
        from repro import parse_program

        program = parse_program(
            """
            r(X, Y) :- e(X, Y).
            r(X, Y) :- e(X, Z), r(Z, Y).
            top(X, Y) :- r(X, Y).
            """
        ).program
        rewritten = gsms(program, parse_query("?- top(X, Y)."))
        assert rewritten.seed_facts == ()
        rules = canonical_rules(rewritten)
        assert "top^ff(A, B) :- r^ff(A, B)." in rules
