"""Unit tests for relations and databases (repro.datalog.database)."""

import pytest

from repro import (
    Constant,
    Database,
    IntegrityError,
    Literal,
    Relation,
    Variable,
)


def c(value):
    return Constant(value)


class TestRelation:
    def test_add_and_contains(self):
        rel = Relation("par")
        assert rel.add((c("a"), c("b")))
        assert not rel.add((c("a"), c("b")))  # duplicate
        assert (c("a"), c("b")) in rel
        assert len(rel) == 1

    def test_arity_fixed_by_first_tuple(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        with pytest.raises(ValueError):
            rel.add((c("a"),))

    def test_rejects_non_ground(self):
        rel = Relation("par")
        with pytest.raises(ValueError):
            rel.add((Variable("X"), c("b")))

    def test_lookup_with_index(self):
        rel = Relation("par")
        rel.add_many([(c("a"), c("b")), (c("a"), c("x")), (c("b"), c("y"))])
        rows = rel.lookup((0,), (c("a"),))
        assert sorted(str(r[1]) for r in rows) == ["b", "x"]

    def test_lookup_maintained_after_insert(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        assert len(rel.lookup((0,), (c("a"),))) == 1
        rel.add((c("a"), c("z")))  # index must be updated
        assert len(rel.lookup((0,), (c("a"),))) == 2

    def test_lookup_all_positions(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        assert rel.lookup((0, 1), (c("a"), c("b"))) == [(c("a"), c("b"))]
        assert rel.lookup((0, 1), (c("a"), c("z"))) == []

    def test_lookup_no_positions_returns_all(self):
        rel = Relation("par")
        rel.add_many([(c("a"),), (c("b"),)])
        assert len(rel.lookup((), ())) == 2

    def test_copy_is_independent(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        dup = rel.copy()
        dup.add((c("x"), c("y")))
        assert len(rel) == 1 and len(dup) == 2
        assert rel.check_invariants() and dup.check_invariants()

    def test_copy_preserves_registered_indexes(self):
        """Regression: copy() used to drop registered indexes, so every
        seeded_database()/Database.copy() consumer paid a lazy O(n)
        rebuild mid-join."""
        rel = Relation("par")
        rel.register_index((1,))
        rel.add_many([(c("a"), c("b")), (c("z"), c("b"))])
        dup = rel.copy()
        assert (1,) in dup._indexes
        # and the carried index stays maintained, not just present
        dup.add((c("q"), c("b")))
        assert len(dup.lookup((1,), (c("b"),))) == 3
        assert len(rel.lookup((1,), (c("b"),))) == 2
        assert rel.check_invariants() and dup.check_invariants()

    def test_copy_preserves_indexes_across_retraction(self):
        rel = Relation("par")
        rel.register_index((0,))
        rel.add_many([(c("a"), c("b")), (c("a"), c("x")), (c("b"), c("y"))])
        rel.discard((c("a"), c("x")))
        dup = rel.copy()
        assert dup.lookup((0,), (c("a"),)) == [(c("a"), c("b"))]
        dup.add((c("a"), c("x")))
        assert len(dup.lookup((0,), (c("a"),))) == 2
        assert len(rel.lookup((0,), (c("a"),))) == 1
        assert rel.check_invariants() and dup.check_invariants()


class TestLookupNormalization:
    """Regression: unsorted positions used to build a silently
    inconsistent shadow index (the docstring merely warned)."""

    def fixture_relation(self):
        rel = Relation("par")
        rel.add_many(
            [(c("a"), c("b")), (c("a"), c("x")), (c("b"), c("a"))]
        )
        return rel

    def test_unsorted_positions_equal_sorted(self):
        rel = self.fixture_relation()
        sorted_rows = rel.lookup((0, 1), (c("a"), c("b")))
        unsorted_rows = rel.lookup((1, 0), (c("b"), c("a")))
        assert sorted_rows == unsorted_rows == [(c("a"), c("b"))]

    def test_unsorted_after_sorted_shares_index(self):
        rel = self.fixture_relation()
        rel.lookup((0, 1), (c("a"), c("b")))  # builds the sorted index
        assert len(rel._indexes) == 1
        rel.lookup((1, 0), (c("x"), c("a")))
        # normalization reuses the sorted index, no shadow index appears
        assert len(rel._indexes) == 1

    def test_duplicate_positions_consistent(self):
        rel = self.fixture_relation()
        rows = rel.lookup((0, 0), (c("a"), c("a")))
        assert sorted(str(r[1]) for r in rows) == ["b", "x"]

    def test_duplicate_positions_conflicting(self):
        rel = self.fixture_relation()
        assert rel.lookup((0, 0), (c("a"), c("b"))) == []

    def test_key_length_mismatch_raises(self):
        rel = self.fixture_relation()
        with pytest.raises(ValueError):
            rel.lookup((0, 1), (c("a"),))

    def test_out_of_range_position_raises(self):
        rel = self.fixture_relation()
        with pytest.raises(ValueError):
            rel.lookup((5,), (c("a"),))
        with pytest.raises(ValueError):
            rel.lookup((-1,), (c("a"),))

    def test_register_index_is_maintained(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        rel.register_index((1,))
        assert (1,) in rel._indexes
        rel.add((c("z"), c("b")))
        assert len(rel.lookup((1,), (c("b"),))) == 2

    def test_register_index_normalizes_like_lookup(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        rel.register_index((1, 0, 1))  # unsorted, duplicated
        assert list(rel._indexes) == [(0, 1)]
        # lookup consults the registered index, no shadow index appears
        assert rel.lookup((1, 0), (c("b"), c("a"))) == [(c("a"), c("b"))]
        assert list(rel._indexes) == [(0, 1)]


class TestDatabase:
    def test_add_fact(self):
        db = Database()
        assert db.add_fact(Literal("par", (c("a"), c("b"))))
        assert db.has_fact(Literal("par", (c("a"), c("b"))))
        assert not db.has_fact(Literal("par", (c("x"), c("y"))))

    def test_add_fact_rejects_non_ground(self):
        db = Database()
        with pytest.raises(ValueError):
            db.add_fact(Literal("par", (Variable("X"), c("b"))))

    def test_add_values(self):
        db = Database()
        db.add_values("par", [("a", "b"), ("b", "c")])
        assert db.tuples("par") == {(c("a"), c("b")), (c("b"), c("c"))}

    def test_adorned_keys_are_distinct(self):
        db = Database()
        db.add_fact(Literal("sg", (c("a"), c("b")), "bf"))
        assert db.tuples("sg^bf") == {(c("a"), c("b"))}
        assert db.tuples("sg") == set()

    def test_counts(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        db.add_values("up", [("a", "b"), ("b", "c")])
        assert db.total_facts() == 3
        assert db.fact_counts() == {"par": 1, "up": 2}

    def test_copy_independent(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        dup = db.copy()
        dup.add_values("par", [("x", "y")])
        assert db.total_facts() == 1 and dup.total_facts() == 2

    def test_merged_with(self):
        db1 = Database()
        db1.add_values("par", [("a", "b")])
        db2 = Database()
        db2.add_values("par", [("b", "c")])
        merged = db1.merged_with(db2)
        assert merged.total_facts() == 2
        assert db1.total_facts() == 1


class TestRetraction:
    def test_discard_present_tuple(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        assert rel.discard((c("a"), c("b")))
        assert (c("a"), c("b")) not in rel
        assert len(rel) == 0
        assert rel.check_invariants()

    def test_discard_absent_tuple(self):
        rel = Relation("par")
        rel.add((c("a"), c("b")))
        assert not rel.discard((c("x"), c("y")))
        assert len(rel) == 1

    def test_discard_maintains_registered_indexes(self):
        rel = Relation("par")
        rel.register_index((0,))
        rel.add_many([(c("a"), c("b")), (c("a"), c("x")), (c("b"), c("y"))])
        assert rel.discard((c("a"), c("b")))
        rows = rel.lookup((0,), (c("a"),))
        assert [str(r[1]) for r in rows] == ["x"]
        # the emptied bucket is dropped, not left as a stale empty list
        assert rel.discard((c("b"), c("y")))
        assert rel.lookup((0,), (c("b"),)) == []
        assert rel.check_invariants()

    def test_discard_maintains_lazily_built_indexes(self):
        rel = Relation("par")
        rel.add_many([(c("a"), c("b")), (c("b"), c("c"))])
        assert len(rel.lookup((1,), (c("b"),))) == 1  # builds the index
        rel.discard((c("a"), c("b")))
        assert rel.lookup((1,), (c("b"),)) == []

    def test_discard_many(self):
        rel = Relation("par")
        rel.add_many([(c("a"), c("b")), (c("b"), c("c")), (c("c"), c("d"))])
        removed = rel.discard_many(
            [(c("a"), c("b")), (c("x"), c("y")), (c("c"), c("d"))]
        )
        assert removed == 2
        assert len(rel) == 1
        assert rel.check_invariants()

    def test_database_retract_fact(self):
        db = Database()
        db.add_fact(Literal("par", (c("a"), c("b"))))
        assert db.retract_fact(Literal("par", (c("a"), c("b"))))
        assert not db.has_fact(Literal("par", (c("a"), c("b"))))
        assert not db.retract_fact(Literal("par", (c("a"), c("b"))))
        assert db.check_integrity()

    def test_database_retract_fact_rejects_non_ground(self):
        db = Database()
        with pytest.raises(ValueError):
            db.retract_fact(Literal("par", (Variable("X"), c("b"))))

    def test_database_retract_unknown_predicate(self):
        db = Database()
        assert not db.retract_fact(Literal("par", (c("a"), c("b"))))
        assert db.retract_values("par", [("a", "b")]) == 0

    def test_database_retract_values(self):
        db = Database()
        db.add_values("par", [("a", "b"), ("b", "c")])
        assert db.retract_values("par", [("a", "b"), ("x", "y")]) == 1
        assert db.tuples("par") == {(c("b"), c("c"))}
        assert db.check_integrity()


class TestIntegrityOracle:
    """check_invariants/check_integrity must catch deliberate corruption.

    The fault-injection atomicity property (tests/test_limits.py) leans
    on this oracle; these tests prove it is not vacuously true.
    """

    def fixture_relation(self):
        rel = Relation("par")
        rel.register_index((0,))
        rel.add_many([(c("a"), c("b")), (c("a"), c("x")), (c("b"), c("y"))])
        rel.discard((c("a"), c("x")))
        assert rel.check_invariants()
        return rel

    def assert_trips(self, rel, invariant):
        with pytest.raises(IntegrityError) as info:
            rel.check_invariants()
        assert info.value.invariant == invariant

    def test_column_length_mismatch(self):
        rel = self.fixture_relation()
        rel._columns[1].append(0)
        self.assert_trips(rel, "columns")

    def test_term_row_memo_count_mismatch(self):
        rel = self.fixture_relation()
        rel._term_rows.pop()
        self.assert_trips(rel, "term-rows")

    def test_stale_term_row_memo(self):
        rel = self.fixture_relation()
        slot = next(iter(rel._rowmap.values()))
        rel._term_rows[slot] = (c("zz"), c("zz"))
        self.assert_trips(rel, "term-rows")

    def test_tombstone_counter_drift(self):
        rel = self.fixture_relation()
        rel._dead += 1
        self.assert_trips(rel, "tombstones")

    def test_rowmap_points_at_dead_slot(self):
        rel = self.fixture_relation()
        slot = next(iter(rel._rowmap.values()))
        rel._live[slot] = 0
        rel._dead += 1
        self.assert_trips(rel, "rowmap")

    def test_rowmap_disagrees_with_columns(self):
        rel = self.fixture_relation()
        slot = next(iter(rel._rowmap.values()))
        rel._columns[0][slot] = rel._columns[0][slot] + 10_000
        self.assert_trips(rel, "rowmap")

    def test_index_bucket_slot_out_of_range(self):
        rel = self.fixture_relation()
        index = rel._indexes[(0,)]
        next(iter(index.values())).append(99)
        self.assert_trips(rel, "index")

    def test_index_misses_live_slot(self):
        rel = self.fixture_relation()
        index = rel._indexes[(0,)]
        for bucket in index.values():
            del bucket[:]
        self.assert_trips(rel, "index")

    def test_version_below_live_count(self):
        rel = self.fixture_relation()
        rel.version = 0
        self.assert_trips(rel, "version")

    def test_database_version_drift(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        db._version += 1
        with pytest.raises(IntegrityError) as info:
            db.check_integrity()
        assert info.value.invariant == "version"

    def test_database_owner_backreference(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        db.relation("par").owner = Database()
        with pytest.raises(IntegrityError) as info:
            db.check_integrity()
        assert info.value.invariant == "owner"


class TestVersionCounter:
    """Every mutation path that changes facts bumps the monotone version."""

    def test_new_database_is_version_zero(self):
        assert Database().version == 0

    def test_add_fact_bumps(self):
        db = Database()
        db.add_fact(Literal("par", (c("a"), c("b"))))
        assert db.version == 1

    def test_duplicate_add_does_not_bump(self):
        db = Database()
        db.add_fact(Literal("par", (c("a"), c("b"))))
        db.add_fact(Literal("par", (c("a"), c("b"))))
        assert db.version == 1

    def test_add_values_bumps_per_new_row(self):
        db = Database()
        db.add_values("par", [("a", "b"), ("b", "c"), ("a", "b")])
        assert db.version == 2

    def test_add_facts_bumps(self):
        db = Database()
        db.add_facts(
            [
                Literal("par", (c("a"), c("b"))),
                Literal("par", (c("b"), c("c"))),
            ]
        )
        assert db.version == 2

    def test_add_tuples_bumps(self):
        db = Database()
        db.add_tuples("par", [(c("a"), c("b"))])
        assert db.version == 1

    def test_direct_relation_add_bumps(self):
        # mutations that bypass the Database convenience methods are
        # still visible: the version sums the relations' counters
        db = Database()
        db.relation("par").add((c("a"), c("b")))
        assert db.version == 1
        db.relation("par").add_many([(c("b"), c("c")), (c("c"), c("d"))])
        assert db.version == 3

    def test_retract_bumps(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        db.retract_values("par", [("a", "b")])
        assert db.version == 2

    def test_noop_retract_does_not_bump(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        db.retract_values("par", [("x", "y")])
        assert db.version == 1

    def test_version_is_monotone_across_mixed_mutations(self):
        db = Database()
        seen = [db.version]
        db.add_values("par", [("a", "b"), ("b", "c")])
        seen.append(db.version)
        db.retract_values("par", [("a", "b")])
        seen.append(db.version)
        db.add_values("par", [("a", "b")])
        seen.append(db.version)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_copy_preserves_version_then_diverges(self):
        db = Database()
        db.add_values("par", [("a", "b")])
        dup = db.copy()
        assert dup.version == db.version
        dup.add_values("par", [("x", "y")])
        assert dup.version == db.version + 1
        assert db.version == 1
        assert db.check_integrity() and dup.check_integrity()


class TestEstimatedBytes:
    """Regression: index bucket storage must be counted.

    ``estimated_bytes`` used to charge only the column cells, so an
    indexed relation reported the same footprint as an unindexed one
    and ``max_memory_bytes`` budgets undercounted index-heavy
    workloads by several x.
    """

    @staticmethod
    def _filled(n=200, index=False):
        rel = Relation("r")
        for i in range(n):
            rel.add((c(i), c(i % 7)))
        if index:
            rel.register_index((0,))
            rel.register_index((1,))
        return rel

    def test_indexes_increase_the_estimate(self):
        plain = self._filled()
        indexed = self._filled(index=True)
        assert indexed.estimated_bytes() > plain.estimated_bytes()

    def test_per_bucket_overhead_is_charged(self):
        # 200 rows under index (0,) is 200 singleton buckets; each one
        # owns an array object and a dict entry, so the increment must
        # be well above the 8-bytes-per-slot payload alone
        plain = self._filled()
        indexed = self._filled(index=True)
        delta = indexed.estimated_bytes() - plain.estimated_bytes()
        slots_only = 2 * 8 * 200  # two indexes, 8 bytes per stored slot
        assert delta > 2 * slots_only

    def test_database_rolls_up_relation_estimates(self):
        db = Database()
        db.add_values("par", [(i, i + 1) for i in range(50)])
        base = db.estimated_bytes()
        db.relation("par").register_index((0,))
        assert db.estimated_bytes() > base
