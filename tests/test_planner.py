"""Unit + property tests for the join-plan compiler (repro.datalog.planner).

Covers plan structure (ordering, precomputed index positions, slot
frames), exact stats equivalence between the legacy interpretive join and
compiled plans, the delta handling for rules with two occurrences of the
same recursive predicate, and the function-symbol / LinExpr fallbacks.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CompiledProgram,
    Constant,
    Database,
    EvaluationError,
    Literal,
    Program,
    Rule,
    Variable,
    answer_query,
    compile_rule,
    evaluate_naive,
    evaluate_seminaive,
    order_body,
    parse_program,
    parse_rule,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    integer_list,
    list_reverse_program,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    random_dag_database,
    reverse_query,
    samegen_database,
)


def c(value):
    return Constant(value)


def ancestor():
    return ancestor_program()


# ----------------------------------------------------------------------
# plan structure
# ----------------------------------------------------------------------

class TestPlanStructure:
    def test_delta_occurrence_runs_first(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        plan = compile_rule(rule, delta_index=1)
        assert plan.order == (1, 0)
        assert plan.steps[0].is_delta
        assert not plan.steps[1].is_delta

    def test_index_positions_follow_bindings(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        delta_plan = compile_rule(rule, delta_index=1)
        # delta anc(Z, Y) scans fully, then par(X, Z) probes on Z (pos 1)
        assert delta_plan.steps[0].index_positions == ()
        assert delta_plan.steps[1].index_positions == (1,)
        full_plan = compile_rule(rule)
        # left-to-right: par(X, Z) scans, anc(Z, Y) probes on Z (pos 0)
        assert full_plan.order == (0, 1)
        assert full_plan.steps[1].index_positions == (0,)

    def test_constants_attract_the_first_step(self):
        rule = parse_rule("p(X) :- q(X, Y), r(a, Y).")
        plan = compile_rule(rule)
        # r(a, Y) has a bound (constant) position, so it runs first
        assert plan.order == (1, 0)
        assert plan.steps[0].index_positions == (0,)

    def test_slot_frame_covers_rule_variables(self):
        rule = parse_rule("sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).")
        plan = compile_rule(rule, delta_index=1)
        assert plan.n_slots == len(rule.variables())

    def test_compiled_program_enumerates_delta_choices(self):
        program = nonlinear_ancestor_program()
        compiled = CompiledProgram(program)
        # rule 1 (anc :- anc, anc) has two delta occurrences
        assert compiled.delta_occurrences(1) == (0, 1)
        assert compiled.plan(1, 0).steps[0].is_delta
        # 2 full plans + 2 delta plans
        assert len(compiled) == 4

    def test_delta_index_out_of_range(self):
        rule = parse_rule("anc(X, Y) :- par(X, Y).")
        with pytest.raises(ValueError):
            compile_rule(rule, delta_index=3)

    def test_order_body_exposed(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        assert order_body(rule) == (0, 1)
        assert order_body(rule, delta_index=1) == (1, 0)

    def test_register_indexes_up_front(self):
        program = ancestor()
        db = chain_database(3)
        working = db.copy()
        compiled = CompiledProgram(program)
        compiled.register_indexes(working)
        # the delta plan for the recursive rule probes par on position 1
        # (Z bound by the delta); that index must exist before any round
        assert (1,) in working.get("par")._indexes


# ----------------------------------------------------------------------
# equivalence with the legacy interpretive join
# ----------------------------------------------------------------------

def both_paths(program, db, strategy):
    evaluate = evaluate_naive if strategy == "naive" else evaluate_seminaive
    legacy = evaluate(program, db, use_planner=False)
    planned = evaluate(program, db, use_planner=True)
    return legacy, planned


WORKLOADS = [
    ("chain", lambda: chain_database(8)),
    ("cycle", lambda: cycle_database(6)),
    ("dag", lambda: random_dag_database(12, 0.3, seed=7)),
]


class TestLegacyEquivalence:
    @pytest.mark.parametrize("strategy", ["naive", "seminaive"])
    @pytest.mark.parametrize("name,make_db", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_identical_facts_and_solution_counters(
        self, strategy, name, make_db
    ):
        legacy, planned = both_paths(ancestor(), make_db(), strategy)
        assert planned.derived_tuples("anc") == legacy.derived_tuples("anc")
        # solution counters are join-order independent, so they must agree
        assert planned.stats.rule_firings == legacy.stats.rule_firings
        assert planned.stats.facts_derived == legacy.stats.facts_derived
        assert (
            planned.stats.duplicate_derivations
            == legacy.stats.duplicate_derivations
        )
        assert planned.stats.iterations == legacy.stats.iterations

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(X, Y) :- edge(X, Y).
            even(X, Y) :- odd(X, Z), edge(Z, Y).
            odd(X, Y) :- even(X, Z), edge(Z, Y).
            """
        ).program
        from repro.workloads import chain_edges, load_edges

        db = load_edges(chain_edges(6), relation="edge")
        legacy, planned = both_paths(program, db, "seminaive")
        for key in ("even", "odd"):
            assert planned.derived_tuples(key) == legacy.derived_tuples(key)

    def test_samegen(self):
        program = nonlinear_samegen_program()
        db = samegen_database(layers=3, width=4)
        legacy, planned = both_paths(program, db, "seminaive")
        assert planned.derived_tuples("sg") == legacy.derived_tuples("sg")
        assert planned.stats.facts_derived == legacy.stats.facts_derived

    def test_planner_does_less_scan_work(self):
        program = ancestor()
        db = chain_database(40)
        legacy, planned = both_paths(program, db, "seminaive")
        assert planned.stats.tuples_scanned < legacy.stats.tuples_scanned


class TestDeltaStats:
    """Semi-naive delta handling for a rule with TWO occurrences of the
    same recursive predicate (nonlinear ancestor)."""

    def test_duplicates_and_probes_match_legacy(self):
        program = nonlinear_ancestor_program()
        db = chain_database(6)
        legacy, planned = both_paths(program, db, "seminaive")
        assert planned.derived_tuples("anc") == legacy.derived_tuples("anc")
        # both delta variants re-derive overlapping facts: duplicates are
        # join-order independent and must agree exactly
        assert legacy.stats.duplicate_derivations > 0
        assert (
            planned.stats.duplicate_derivations
            == legacy.stats.duplicate_derivations
        )
        # each variant probes at least once per round per step
        assert planned.stats.join_probes > 0
        assert legacy.stats.join_probes > 0

    def test_both_delta_variants_contribute(self):
        # a chain needs the second delta occurrence to close long pairs
        program = nonlinear_ancestor_program()
        db = chain_database(5)
        planned = evaluate_seminaive(program, db, use_planner=True)
        assert len(planned.derived_tuples("anc")) == 15  # C(6, 2)

    def test_naive_and_seminaive_planner_agree(self):
        program = nonlinear_ancestor_program()
        db = chain_database(6)
        naive = evaluate_naive(program, db, use_planner=True)
        semi = evaluate_seminaive(program, db, use_planner=True)
        assert naive.derived_tuples("anc") == semi.derived_tuples("anc")


# ----------------------------------------------------------------------
# function symbols, LinExpr, and edge cases
# ----------------------------------------------------------------------

class TestStructuredTerms:
    def test_list_reverse_via_magic_matches_legacy(self):
        program = list_reverse_program()
        query = reverse_query(integer_list(5))
        db = Database()
        legacy = answer_query(
            program, db, query, method="magic", use_planner=False
        )
        planned = answer_query(
            program, db, query, method="magic", use_planner=True
        )
        assert planned.answers == legacy.answers
        assert len(planned.answers) == 1

    def test_counting_linexpr_matches_legacy(self):
        program = ancestor()
        query = ancestor_query("n0")
        db = chain_database(8)
        legacy = answer_query(
            program, db, query, method="counting", use_planner=False
        )
        planned = answer_query(
            program, db, query, method="counting", use_planner=True
        )
        assert planned.answers == legacy.answers
        assert (
            planned.stats.facts_derived == legacy.stats.facts_derived
        )

    def test_repeated_variable_in_literal(self):
        program = parse_program("loop(X) :- par(X, X).").program
        db = Database()
        db.add_values("par", [("a", "a"), ("a", "b"), ("c", "c")])
        legacy = evaluate_seminaive(program, db, use_planner=False)
        planned = evaluate_seminaive(program, db, use_planner=True)
        assert (
            planned.derived_tuples("loop")
            == legacy.derived_tuples("loop")
            == {(c("a"),), (c("c"),)}
        )

    def test_constant_in_head(self):
        program = parse_program("flag(yes, X) :- par(X, Y).").program
        db = Database()
        db.add_values("par", [("a", "b")])
        planned = evaluate_seminaive(program, db, use_planner=True)
        assert planned.derived_tuples("flag") == {(c("yes"), c("a"))}

    def test_range_restriction_error_preserved(self):
        program = Program([Rule(Literal("p", (Variable("X"),)))])
        for use_planner in (False, True):
            with pytest.raises(EvaluationError):
                evaluate_naive(program, Database(), use_planner=use_planner)

    def test_struct_head_argument(self):
        # head wraps a bound variable in a function term
        program = parse_program("wrapped(f(X)) :- par(X, Y).").program
        db = Database()
        db.add_values("par", [("a", "b")])
        legacy = evaluate_seminaive(program, db, use_planner=False)
        planned = evaluate_seminaive(program, db, use_planner=True)
        assert planned.derived_tuples("wrapped") == legacy.derived_tuples(
            "wrapped"
        )


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------

NODES = [f"v{i}" for i in range(8)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=24,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def edge_db(edges, relation="par"):
    db = Database()
    db.add_values(relation, set(edges))
    return db


class TestPlannerProperty:
    @given(edges=edges_strategy)
    @SETTINGS
    def test_planner_equals_legacy_linear(self, edges):
        program = ancestor()
        db = edge_db(edges)
        legacy, planned = both_paths(program, db, "seminaive")
        assert planned.derived_tuples("anc") == legacy.derived_tuples("anc")
        assert planned.stats.facts_derived == legacy.stats.facts_derived

    @given(edges=edges_strategy)
    @SETTINGS
    def test_planner_equals_legacy_nonlinear(self, edges):
        program = nonlinear_ancestor_program()
        db = edge_db(edges)
        legacy, planned = both_paths(program, db, "seminaive")
        assert planned.derived_tuples("anc") == legacy.derived_tuples("anc")
        assert (
            planned.stats.duplicate_derivations
            == legacy.stats.duplicate_derivations
        )

    @given(edges=edges_strategy, root=st.sampled_from(NODES))
    @SETTINGS
    def test_planner_preserves_magic_answers(self, edges, root):
        program = ancestor()
        query = ancestor_query(root)
        db = edge_db(edges)
        legacy = answer_query(
            program, db, query, method="magic", use_planner=False
        )
        planned = answer_query(
            program, db, query, method="magic", use_planner=True
        )
        assert planned.answers == legacy.answers


class TestProgramHashCache:
    """The structural hash is cached on the immutable Program, so
    PlanCache lookups stop re-hashing every rule per call (ROADMAP
    "Plan-cache identity")."""

    def test_hash_computed_once(self, monkeypatch):
        calls = {"n": 0}
        original = Rule.__hash__

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(Rule, "__hash__", counting)
        program = ancestor_program()
        first = hash(program)
        after_first = calls["n"]
        assert after_first >= len(program.rules)  # the one real pass
        for _ in range(10):
            assert hash(program) == first
        assert calls["n"] == after_first  # hit path never re-hashes

    def test_plan_cache_hit_path_skips_rule_hashing(self, monkeypatch):
        from repro import PlanCache, compiled_program_for

        cache = PlanCache()
        program = ancestor_program()
        compiled, hit = compiled_program_for(program, cache)
        assert not hit

        def forbidden(self):
            raise AssertionError(
                "PlanCache hit re-hashed a Rule; Program._hash cache "
                "is broken"
            )

        monkeypatch.setattr(Rule, "__hash__", forbidden)
        for _ in range(3):
            again, hit = compiled_program_for(program, cache)
            assert hit and again is compiled

    def test_equal_programs_share_cache_entry(self):
        from repro import PlanCache, compiled_program_for

        cache = PlanCache()
        first = ancestor_program()
        second = ancestor_program()
        assert first is not second and first == second
        compiled_a, hit_a = compiled_program_for(first, cache)
        compiled_b, hit_b = compiled_program_for(second, cache)
        assert not hit_a and hit_b
        assert compiled_a is compiled_b
