"""Generated-name scheme tests (repro.core.naming)."""

from repro.core.naming import (
    counting_name,
    ensure_fresh,
    indexed_name,
    is_generated_name,
    is_indexed_name,
    label_name,
    magic_name,
    supplementary_counting_name,
    supplementary_name,
)


class TestNames:
    def test_magic(self):
        assert magic_name("sg", "bf") == "magic_sg_bf"
        assert magic_name("sg", "fb") == "magic_sg_fb"  # distinct patterns

    def test_counting_and_indexed(self):
        assert counting_name("sg", "bf") == "cnt_sg_bf"
        assert indexed_name("sg", "bf") == "sg_ix_bf"

    def test_supplementary(self):
        assert supplementary_name(2, 3) == "supmagic2_3"
        assert supplementary_counting_name(2, 3) == "supcnt2_3"

    def test_label(self):
        assert label_name("r", 1, 2, 0) == "label_r_1_2_0"


class TestPredicates:
    def test_is_generated(self):
        for name in (
            "magic_sg_bf",
            "cnt_sg_bf",
            "sg_ix_bf",
            "supmagic2_2",
            "supcnt1_4",
            "label_r_1_2_0",
        ):
            assert is_generated_name(name), name
        for name in ("sg", "par", "up", "reverse"):
            assert not is_generated_name(name), name

    def test_is_indexed(self):
        assert is_indexed_name("sg_ix_bf")
        assert not is_indexed_name("cnt_sg_bf")
        assert not is_indexed_name("magic_sg_bf")
        assert not is_indexed_name("sg")


class TestFreshness:
    def test_ensure_fresh(self):
        assert ensure_fresh("p", {"q"}) == "p"
        assert ensure_fresh("p", {"p"}) == "p_"
        assert ensure_fresh("p", {"p", "p_"}) == "p__"
