"""Unit tests for sip graphs and builders (repro.core.sips) -- Section 2."""

import pytest

from repro import SipValidationError, Variable, parse_rule
from repro.core.sips import (
    HEAD,
    Sip,
    SipArc,
    build_chain_sip,
    build_empty_sip,
    build_full_sip,
    greedy_order,
)

X, Y = Variable("X"), Variable("Y")
Z1, Z2, Z3, Z4 = (Variable(f"Z{i}") for i in range(1, 5))

# the paper's running example (Example 1): nonlinear same generation
SG_RULE = parse_rule(
    "sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y)."
)


def is_derived(literal):
    return literal.pred == "sg"


class TestFullSip:
    """The compressed full sip (I)/(IV) of Example 1."""

    def test_arcs_match_example_1(self):
        sip = build_full_sip(SG_RULE, "bf", is_derived)
        # arcs into every body literal (all receive bindings)
        assert {arc.target for arc in sip.arcs} == {0, 1, 2, 3, 4}
        # {sg_h} ->X up
        arc_up = sip.arcs_into(0)[0]
        assert arc_up.tail == frozenset({HEAD})
        assert arc_up.label == frozenset({X})
        # {sg_h, up} ->Z1 sg.1
        arc_sg1 = sip.arcs_into(1)[0]
        assert arc_sg1.tail == frozenset({HEAD, 0})
        assert arc_sg1.label == frozenset({Z1})
        # {sg_h, up, sg.1} ->Z2 flat
        arc_flat = sip.arcs_into(2)[0]
        assert arc_flat.label == frozenset({Z2})
        # {sg_h, up, sg.1, flat} ->Z3 sg.2
        arc_sg2 = sip.arcs_into(3)[0]
        assert arc_sg2.tail == frozenset({HEAD, 0, 1, 2})
        assert arc_sg2.label == frozenset({Z3})

    def test_total_order_is_left_to_right(self):
        sip = build_full_sip(SG_RULE, "bf", is_derived)
        assert sip.total_order() == (0, 1, 2, 3, 4)

    def test_no_bound_head_arguments(self):
        sip = build_full_sip(SG_RULE, "ff", is_derived)
        # X unbound: up gets no arc; sg.1 gets no arc; nothing flows
        # until a literal is solved free -- the full builder still finds
        # arcs once earlier literals provide variables
        assert not sip.arcs_into(0)
        assert not sip.has_head_node()

    def test_is_full_for_its_order(self):
        sip = build_full_sip(SG_RULE, "bf", is_derived)
        assert sip.is_full_for_order(is_derived)

    def test_custom_order(self):
        rule = parse_rule("p(X, Y) :- q(X, Z), r(Z, Y).")
        sip = build_full_sip(
            rule, "fb", lambda lit: False, order=(1, 0)
        )
        # Y bound: r is evaluated first (receives Y), then q receives Z
        arc_r = sip.arcs_into(1)[0]
        assert arc_r.label == frozenset({Y})
        arc_q = sip.arcs_into(0)[0]
        assert arc_q.label == frozenset({Variable("Z")})
        assert sip.total_order() == (1, 0)


class TestChainSip:
    """The no-memory partial sip (II)/(V) of Example 1."""

    def test_tails_forget_the_past(self):
        sip = build_chain_sip(SG_RULE, "bf", is_derived)
        # {sg_h; up} -> sg.1 : nearest derived-or-head is the head,
        # with the base literal up in between
        arc_sg1 = sip.arcs_into(1)[0]
        assert arc_sg1.tail == frozenset({HEAD, 0})
        # {sg.1; flat} -> sg.2 : past (head, up) forgotten
        arc_sg2 = sip.arcs_into(3)[0]
        assert arc_sg2.tail == frozenset({1, 2})
        assert arc_sg2.label == frozenset({Z3})

    def test_partial_wrt_full(self):
        full = build_full_sip(SG_RULE, "bf", is_derived)
        chain = build_chain_sip(SG_RULE, "bf", is_derived)
        assert chain.contained_in(full)
        assert chain.properly_contained_in(full)
        assert not full.contained_in(chain)

    def test_not_full(self):
        chain = build_chain_sip(SG_RULE, "bf", is_derived)
        assert not chain.is_full_for_order(is_derived)


class TestEmptySip:
    def test_no_arcs(self):
        sip = build_empty_sip(SG_RULE, "bf", is_derived)
        assert sip.arcs == ()
        assert sip.total_order() == (0, 1, 2, 3, 4)


class TestValidation:
    def test_label_var_must_appear_in_tail(self):
        rule = parse_rule("p(X, Y) :- q(X, Z), r(Z, Y).")
        with pytest.raises(SipValidationError) as excinfo:
            Sip(rule, "bf", (SipArc({HEAD}, 1, {Variable("Z")}),))
        assert "2i" in str(excinfo.value)

    def test_tail_must_connect_to_label(self):
        rule = parse_rule("p(X, Y) :- q(X, W), r(W, Z), s(X, Y).")
        # r shares no variable chain (within the tail) with label {X}
        with pytest.raises(SipValidationError) as excinfo:
            Sip(rule, "bf", (SipArc({HEAD, 1}, 2, {Variable("X")}),))
        assert "2ii" in str(excinfo.value)

    def test_label_must_cover_an_argument(self):
        rule = parse_rule("p(X, Y) :- q(X, Z), r(f(Z, W), Y).")
        # Z alone does not cover f(Z, W)
        with pytest.raises(SipValidationError) as excinfo:
            Sip(rule, "bf", (SipArc({HEAD, 0}, 1, {Variable("Z")}),))
        assert "2iii" in str(excinfo.value)

    def test_cyclic_precedence_rejected(self):
        rule = parse_rule("p(X) :- q(X, Z), r(Z, X).")
        arcs = (
            SipArc({1}, 0, {Variable("Z")}),
            SipArc({0}, 1, {Variable("Z")}),
        )
        with pytest.raises(SipValidationError) as excinfo:
            Sip(rule, "bf"[:1], arcs)
        assert "condition 3" in str(excinfo.value)

    def test_target_not_in_own_tail(self):
        rule = parse_rule("p(X) :- q(X, Z).")
        with pytest.raises(SipValidationError):
            SipArc({0}, 0, {Variable("Z")})

    def test_head_node_requires_bound_argument(self):
        rule = parse_rule("p(X, Y) :- q(X, Y).")
        with pytest.raises(SipValidationError):
            Sip(rule, "ff", (SipArc({HEAD}, 0, {Variable("X")}),))


class TestPrecedence:
    def test_precedes_relation(self):
        sip = build_full_sip(SG_RULE, "bf", is_derived)
        precedes = sip.precedes()
        # the head reaches everything
        assert precedes[HEAD] >= {0, 1, 2, 3, 4}
        # up (position 0) reaches the later positions
        assert 3 in precedes[0]

    def test_chain_precedes_transitive(self):
        sip = build_chain_sip(SG_RULE, "bf", is_derived)
        precedes = sip.precedes()
        # head reaches sg.2 only transitively (via up, sg.1, flat)
        assert 3 in precedes[HEAD]


class TestContainment:
    def test_reflexive(self):
        sip = build_full_sip(SG_RULE, "bf", is_derived)
        assert sip.contained_in(sip)
        assert not sip.properly_contained_in(sip)


class TestGreedyOrder:
    def test_prefers_bound_literals(self):
        rule = parse_rule("p(X, Y) :- r(Z, Y), q(X, Z).")
        order = greedy_order(rule, "bf")
        # q(X, Z) has a bound argument (X); r does not -- q goes first
        assert order == (1, 0)

    def test_is_a_permutation(self):
        order = greedy_order(SG_RULE, "bf")
        assert sorted(order) == [0, 1, 2, 3, 4]


class TestRemap:
    def test_remapped_positions(self):
        rule = parse_rule("p(X, Y) :- r(Z, Y), q(X, Z).")
        sip = build_full_sip(rule, "bf", lambda l: False, order=(1, 0))
        reordered = parse_rule("p(X, Y) :- q(X, Z), r(Z, Y).")
        remapped = sip.remapped({1: 0, 0: 1}, reordered)
        assert remapped.arcs_into(0)[0].label == frozenset({X})
