"""Budgets, cancellation, degradation, and fault-injection atomicity.

The contract under test: a governed evaluation either completes within
its :class:`~repro.core.limits.EvaluationBudget` or aborts with a
structured exception -- and an abort, however it arrives (limit trip,
cancellation, injected fault), leaves the database, its indexes, the
version counters, and the Session memo exactly as they were.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BudgetExceeded,
    CancellationToken,
    Database,
    EvaluationBudget,
    EvaluationCancelled,
    FaultPlan,
    InjectedFault,
    Literal,
    Session,
    Variable,
    adorn_program,
    bottom_up_answer,
    evaluate,
    qsq_evaluate,
)
from repro.cli import main as cli_main
from repro.core.limits import FAULT_ENV_VAR
from repro.datalog.ast import Program, Rule
from repro.datalog.terms import Constant, Struct
from repro.workloads import ancestor_program, ancestor_query, chain_database

# every bottom-up execution path: naive/seminaive x batch-vectorized,
# row-compiled, and the legacy row-at-a-time interpreter
ENGINE_CONFIGS = [
    (method, use_planner, vectorized)
    for method in ("naive", "seminaive")
    for use_planner, vectorized in ((True, True), (True, False), (False, False))
]

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NODES = [f"v{i}" for i in range(8)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=24,
)


def edge_db(edges, relation="par"):
    db = Database()
    db.add_values(relation, set(edges))
    return db


def growing_program():
    """A non-terminating workload with ms-scale rounds.

    grow(s(X)) :- grow(X) derives one fresh fact per round, forever --
    only a deadline or a cancellation can stop it.  The work rule is
    ballast: each round's fresh grow fact re-joins the dense ``e``
    relation, so rounds are slow enough for timers to land between
    them and term nesting stays far from the recursion limit.
    """
    x, y, z, w = (Variable(n) for n in "XYZW")
    return Program(
        (
            Rule(
                Literal("grow", (Struct("s", (x,)),)),
                (Literal("grow", (x,)),),
            ),
            Rule(
                Literal("work", (x, z)),
                (
                    Literal("grow", (w,)),
                    Literal("e", (x, y)),
                    Literal("e", (y, z)),
                ),
            ),
        )
    )


def growing_db():
    db = Database()
    db.add_fact(Literal("grow", (Constant("zero"),)))
    db.add_values(
        "e", [(f"n{i}", f"n{j}") for i in range(20) for j in range(20)]
    )
    return db


# ----------------------------------------------------------------------
# meter units
# ----------------------------------------------------------------------


class TestBudgetMeter:
    def test_unbounded_budget_checks_are_noops(self):
        meter = EvaluationBudget().start()
        meter.check_round(10**9, 10**9, stratum=3, round_=99)
        meter.check_batch(10**9, 10**9)
        meter.tick_install()
        assert not EvaluationBudget().is_bounded()
        assert EvaluationBudget(max_facts=1).is_bounded()

    def test_max_facts_trips_with_structured_progress(self):
        meter = EvaluationBudget(max_facts=10).start()
        meter.check_round(10, stratum=0, round_=1)  # at the cap: fine
        with pytest.raises(BudgetExceeded) as info:
            meter.check_round(11, stratum=2, round_=5)
        exc = info.value
        assert exc.limit == "max_facts"
        assert exc.facts == 11
        assert exc.stratum == 2 and exc.round == 5
        assert exc.elapsed is not None
        assert str(exc) == "budget exceeded: max_facts after 11 facts, stratum 2 round 5"

    def test_max_tuples_scanned_trips(self):
        meter = EvaluationBudget(max_tuples_scanned=100).start()
        meter.check_batch(0, 100)
        with pytest.raises(BudgetExceeded) as info:
            meter.check_batch(0, 101)
        assert info.value.limit == "max_tuples_scanned"

    def test_wall_clock_trips(self):
        meter = EvaluationBudget(timeout=0.0).start()
        with pytest.raises(BudgetExceeded) as info:
            meter.check_round(0)
        assert info.value.limit == "wall_clock"
        assert meter.remaining_time() == 0.0

    def test_max_memory_trips_only_with_database(self):
        db = chain_database(50)
        budget = EvaluationBudget(max_memory_bytes=64)
        meter = budget.start()
        meter.check_round(0, database=None)  # no estimate available
        with pytest.raises(BudgetExceeded) as info:
            meter.check_round(0, database=db)
        assert info.value.limit == "max_memory"
        assert db.estimated_bytes() > 64

    def test_batch_trip_reports_enclosing_round_position(self):
        meter = EvaluationBudget(max_facts=3).start()
        meter.check_round(0, stratum=1, round_=4)
        with pytest.raises(BudgetExceeded) as info:
            meter.check_batch(7)
        assert info.value.stratum == 1 and info.value.round == 4

    def test_spent_snapshot(self):
        meter = EvaluationBudget(max_facts=100).start()
        meter.check_round(7, 42, stratum=1, round_=2)
        spent = meter.spent()
        assert spent["facts"] == 7
        assert spent["tuples_scanned"] == 42
        assert spent["stratum"] == 1 and spent["round"] == 2
        assert spent["elapsed"] >= 0.0

    def test_budget_exceeded_is_a_nontermination_error(self):
        from repro.datalog.errors import NonTerminationError

        assert issubclass(BudgetExceeded, NonTerminationError)
        assert not issubclass(EvaluationCancelled, BudgetExceeded)


# ----------------------------------------------------------------------
# engine-level budget trips, on every execution path
# ----------------------------------------------------------------------


class TestEngineBudgets:
    @pytest.mark.parametrize("method,use_planner,vectorized", ENGINE_CONFIGS)
    def test_max_facts_trips(self, method, use_planner, vectorized):
        meter = EvaluationBudget(max_facts=5).start()
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                ancestor_program(),
                chain_database(30),
                method=method,
                use_planner=use_planner,
                vectorized=vectorized,
                meter=meter,
            )
        exc = info.value
        assert exc.limit == "max_facts" and exc.facts > 5
        assert str(exc).startswith("budget exceeded: max_facts after ")

    @pytest.mark.parametrize("method,use_planner,vectorized", ENGINE_CONFIGS)
    def test_wall_clock_trips_on_nonterminating_program(
        self, method, use_planner, vectorized
    ):
        meter = EvaluationBudget(timeout=0.05).start()
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                growing_program(),
                growing_db(),
                method=method,
                use_planner=use_planner,
                vectorized=vectorized,
                meter=meter,
            )
        assert info.value.limit == "wall_clock"

    def test_max_memory_trips(self):
        meter = EvaluationBudget(max_memory_bytes=1024).start()
        with pytest.raises(BudgetExceeded) as info:
            evaluate(ancestor_program(), chain_database(60), meter=meter)
        assert info.value.limit == "max_memory"

    def test_generous_budget_changes_nothing(self):
        db = chain_database(20)
        ungoverned = evaluate(ancestor_program(), db)
        meter = EvaluationBudget(timeout=60.0, max_facts=10**9).start()
        governed = evaluate(ancestor_program(), db, meter=meter)
        assert governed.database.tuples("anc") == ungoverned.database.tuples(
            "anc"
        )
        assert meter.spent()["facts"] == governed.stats.facts_derived

    @pytest.mark.parametrize("use_planner", [True, False])
    def test_qsq_trips_max_facts(self, use_planner):
        adorned = adorn_program(ancestor_program(), ancestor_query("n0"))
        meter = EvaluationBudget(max_facts=3).start()
        with pytest.raises(BudgetExceeded) as info:
            qsq_evaluate(
                adorned.program,
                chain_database(30),
                adorned.query_literal,
                use_planner=use_planner,
                meter=meter,
            )
        assert info.value.limit == "max_facts"


# ----------------------------------------------------------------------
# cooperative cancellation
# ----------------------------------------------------------------------


class TestCancellation:
    def test_token_flips_once(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.cancel()  # idempotent
        assert token.cancelled
        assert "cancelled" in repr(token)

    @pytest.mark.parametrize("method,use_planner,vectorized", ENGINE_CONFIGS)
    def test_precancelled_token_aborts_every_engine(
        self, method, use_planner, vectorized
    ):
        token = CancellationToken()
        token.cancel()
        meter = EvaluationBudget(token=token).start()
        with pytest.raises(EvaluationCancelled):
            evaluate(
                ancestor_program(),
                chain_database(10),
                method=method,
                use_planner=use_planner,
                vectorized=vectorized,
                meter=meter,
            )

    def test_cancel_from_another_thread(self):
        """A non-terminating evaluation stops when another thread flips
        the token -- the abort carries the progress made so far."""
        token = CancellationToken()
        timer = threading.Timer(0.05, token.cancel)
        timer.start()
        meter = EvaluationBudget(token=token).start()
        try:
            with pytest.raises(EvaluationCancelled) as info:
                evaluate(growing_program(), growing_db(), meter=meter)
        finally:
            timer.cancel()
        assert info.value.facts > 0

    def test_session_cancellation_never_degrades(self):
        token = CancellationToken()
        token.cancel()
        session = Session(
            program=ancestor_program(), database=chain_database(10)
        )
        with pytest.raises(EvaluationCancelled):
            session.query(
                "anc(n0, Y)?",
                cancellation=token,
                on_budget_exceeded="degrade",
            )
        assert session.counters()["memo_entries"] == 0


# ----------------------------------------------------------------------
# fault plan units
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_fires_once_at_the_chosen_boundary(self):
        plan = FaultPlan("round", after=2)
        plan.tick("batch")  # wrong kind: ignored
        plan.tick("round")
        with pytest.raises(InjectedFault) as info:
            plan.tick("round")
        assert info.value.boundary == "round" and info.value.count == 2
        assert plan.fired
        plan.tick("round")  # disarmed after firing
        assert plan.counts == {"round": 3, "batch": 1, "install": 0}

    def test_any_boundary_counts_everything(self):
        plan = FaultPlan("any", after=3)
        plan.tick("round")
        plan.tick("batch")
        with pytest.raises(InjectedFault):
            plan.tick("install")

    def test_rejects_bad_plans(self):
        with pytest.raises(ValueError):
            FaultPlan("fsync")
        with pytest.raises(ValueError):
            FaultPlan("round", after=0)

    def test_randomized_is_deterministic_in_the_seed(self):
        a, b = FaultPlan.randomized(7), FaultPlan.randomized(7)
        assert (a.boundary, a.after) == (b.boundary, b.after)

    def test_from_env_parsing(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULT_ENV_VAR: ""}) is None
        plan = FaultPlan.from_env({FAULT_ENV_VAR: "round:3"})
        assert (plan.boundary, plan.after) == ("round", 3)
        plan = FaultPlan.from_env({FAULT_ENV_VAR: "any:5"})
        assert (plan.boundary, plan.after) == ("any", 5)
        plan = FaultPlan.from_env({FAULT_ENV_VAR: "install"})
        assert (plan.boundary, plan.after) == ("install", 1)
        a = FaultPlan.from_env({FAULT_ENV_VAR: "random:42"})
        b = FaultPlan.from_env({FAULT_ENV_VAR: "random:42"})
        assert (a.boundary, a.after) == (b.boundary, b.after)


# ----------------------------------------------------------------------
# session: budgets, degradation, memo hygiene
# ----------------------------------------------------------------------


def chain_session(length=12):
    return Session(program=ancestor_program(), database=chain_database(length))


class TestSessionBudgets:
    # on a 12-chain with a bound root, supplementary magic derives more
    # facts (magic + supplementary overhead: 102) than plain semi-naive
    # (78), so a cap between the two trips the rewrite but lets the
    # fallback finish -- exactly the graceful-degradation scenario
    CAP_BETWEEN = 90

    def test_budget_and_individual_options_conflict(self):
        session = chain_session()
        with pytest.raises(ValueError):
            session.query(
                "anc(n0, Y)?",
                timeout=1.0,
                budget=EvaluationBudget(max_facts=10),
            )

    def test_unknown_policy_rejected(self):
        session = chain_session()
        with pytest.raises(ValueError):
            session.query("anc(n0, Y)?", on_budget_exceeded="retry")

    def test_auto_degrades_to_seminaive(self):
        session = chain_session()
        result = session.query("anc(n0, Y)?", max_facts=self.CAP_BETWEEN)
        assert result.degraded
        assert result.requested_method == "auto"
        assert result.method == "seminaive"
        assert len(result.rows) == 12
        assert result.budget_spent is not None
        # degraded answers are exact, just computed the expensive way
        ungoverned = chain_session().query("anc(n0, Y)?", method="seminaive")
        assert result.rows == ungoverned.rows

    def test_degraded_results_are_never_memoized(self):
        session = chain_session()
        degraded = session.query("anc(n0, Y)?", max_facts=self.CAP_BETWEEN)
        assert degraded.degraded
        assert session.counters()["memo_entries"] == 0
        again = session.query("anc(n0, Y)?", max_facts=self.CAP_BETWEEN)
        assert again.degraded and not again.from_memo

    def test_explicit_rewrite_method_raises_by_default(self):
        session = chain_session()
        with pytest.raises(BudgetExceeded) as info:
            session.query(
                "anc(n0, Y)?",
                method="supplementary_magic",
                max_facts=self.CAP_BETWEEN,
            )
        assert info.value.method == "supplementary_magic"
        assert session.counters()["memo_entries"] == 0

    def test_explicit_rewrite_method_degrades_on_request(self):
        session = chain_session()
        result = session.query(
            "anc(n0, Y)?",
            method="supplementary_magic",
            max_facts=self.CAP_BETWEEN,
            on_budget_exceeded="degrade",
        )
        assert result.degraded and result.method == "seminaive"

    def test_policy_raise_disables_degradation_for_auto(self):
        session = chain_session()
        with pytest.raises(BudgetExceeded):
            session.query(
                "anc(n0, Y)?",
                max_facts=self.CAP_BETWEEN,
                on_budget_exceeded="raise",
            )

    def test_tripped_baseline_never_degrades(self):
        session = chain_session()
        with pytest.raises(BudgetExceeded):
            session.query(
                "anc(n0, Y)?",
                method="seminaive",
                max_facts=5,
                on_budget_exceeded="degrade",
            )

    def test_memo_hit_is_served_regardless_of_budget(self):
        session = chain_session()
        first = session.query("anc(n0, Y)?")
        assert not first.from_memo
        # a cap that would trip any evaluation is irrelevant on a hit
        hit = session.query("anc(n0, Y)?", max_facts=1)
        assert hit.from_memo and hit.rows == first.rows
        assert hit.budget_spent is not None

    def test_budget_spent_reported_on_success(self):
        session = chain_session()
        result = session.query("anc(n0, Y)?", timeout=60.0)
        assert not result.degraded
        assert result.budget_spent["elapsed"] >= 0.0
        assert result.budget_spent["facts"] > 0
        ungoverned = session.query("anc(n1, Y)?")
        assert ungoverned.budget_spent is None


# ----------------------------------------------------------------------
# fault-injection atomicity
# ----------------------------------------------------------------------

RULE_GROUPS = {
    "node": ("node(X) :- e(X, Y).", "node(Y) :- e(X, Y)."),
    "tc": ("tc(X, Y) :- e(X, Y).", "tc(X, Z) :- e(X, Y), tc(Y, Z)."),
    "sym": ("sym(X, Y) :- e(X, Y), e(Y, X).",),
    "selfloop": ("selfloop(X) :- tc(X, X).",),
    "acyc": ("acyc(X) :- node(X), not selfloop(X).",),
    "nontc": ("nontc(X, Y) :- node(X), node(Y), not tc(X, Y).",),
    "far": ("far(X, Y) :- tc(X, Y), not e(X, Y).",),
}
GROUP_DEPS = {
    "selfloop": ("tc",),
    "acyc": ("node", "selfloop", "tc"),
    "nontc": ("node", "tc"),
    "far": ("tc",),
}


def _closed_program(picks):
    from repro import parse_program

    names = set(picks) | {"tc"}
    for name in picks:
        names.update(GROUP_DEPS.get(name, ()))
    rules = [rule for name in sorted(names) for rule in RULE_GROUPS[name]]
    return parse_program("\n".join(rules)).program


def _snapshot(db):
    return {key: db.tuples(key) for key in db.predicate_keys()}


class TestFaultInjectionAtomicity:
    @given(edges=edges_strategy, seed=st.integers(0, 10_000))
    @SETTINGS
    def test_engine_abort_installs_nothing(self, edges, seed):
        """After an injected abort on ANY execution path, the source
        database passes its integrity oracle, its version is unmoved,
        its facts are untouched, and a clean re-run agrees with the
        legacy naive oracle."""
        program = ancestor_program()
        db = edge_db(edges)
        before = _snapshot(db)
        version = db.version
        oracle = evaluate(program, db, method="naive", use_planner=False)
        for method, use_planner, vectorized in ENGINE_CONFIGS:
            plan = FaultPlan.randomized(seed)
            meter = EvaluationBudget(fault_plan=plan).start()
            try:
                evaluate(
                    program,
                    db,
                    method=method,
                    use_planner=use_planner,
                    vectorized=vectorized,
                    meter=meter,
                )
            except InjectedFault:
                pass
            assert db.check_integrity()
            assert db.version == version
            assert _snapshot(db) == before
            retry = evaluate(
                program,
                db,
                method=method,
                use_planner=use_planner,
                vectorized=vectorized,
            )
            assert retry.database.tuples("anc") == oracle.database.tuples(
                "anc"
            ), (method, use_planner, vectorized)

    @given(edges=edges_strategy, seed=st.integers(0, 10_000))
    @SETTINGS
    def test_qsq_abort_installs_nothing(self, edges, seed):
        program = ancestor_program()
        query = ancestor_query("v0")
        adorned = adorn_program(program, query)
        db = edge_db(edges)
        before = _snapshot(db)
        version = db.version
        oracle = bottom_up_answer(
            program, db, query, engine="naive", use_planner=False
        )
        for use_planner in (True, False):
            plan = FaultPlan.randomized(seed)
            meter = EvaluationBudget(fault_plan=plan).start()
            try:
                qsq_evaluate(
                    adorned.program,
                    db,
                    adorned.query_literal,
                    use_planner=use_planner,
                    meter=meter,
                )
            except InjectedFault:
                pass
            assert db.check_integrity()
            assert db.version == version
            assert _snapshot(db) == before
            clean = qsq_evaluate(
                adorned.program, db, adorned.query_literal, use_planner=use_planner
            )
            assert (
                clean.query_answers(adorned.query_literal) == oracle.answers
            ), use_planner

    @given(
        edges=edges_strategy,
        picks=st.sets(st.sampled_from(sorted(RULE_GROUPS))),
        seed=st.integers(0, 10_000),
    )
    @SETTINGS
    def test_session_abort_leaves_no_trace(self, edges, picks, seed):
        """The whole stack, on random safe stratified programs (with
        negation): an aborted query corrupts nothing, memoizes nothing,
        and a clean re-query agrees with the stratum-wise naive oracle."""
        program = _closed_program(picks)
        db = edge_db(edges, relation="e")
        session = Session(program=program, database=db)
        version = db.version
        plan = FaultPlan.randomized(seed)
        try:
            session.query(
                "tc(X, Y)?", budget=EvaluationBudget(fault_plan=plan)
            )
            aborted = False
        except InjectedFault:
            aborted = True
        assert db.check_integrity()
        assert db.version == version
        if aborted:
            assert session.counters()["memo_entries"] == 0
        clean = session.query("tc(X, Y)?")
        oracle = bottom_up_answer(
            program, db, session._as_query("tc(X, Y)?"), engine="naive",
            use_planner=False,
        )
        assert clean.rows == oracle.answers

    def test_env_knob_reaches_the_session(self, monkeypatch):
        """REPRO_FAULT_INJECT plants a fault without touching call sites."""
        monkeypatch.setenv(FAULT_ENV_VAR, "round:1")
        session = chain_session()
        with pytest.raises(InjectedFault):
            session.query("anc(n0, Y)?")
        assert session.counters()["memo_entries"] == 0
        assert session.database.check_integrity()
        monkeypatch.delenv(FAULT_ENV_VAR)
        result = session.query("anc(n0, Y)?")
        assert len(result.rows) == 12

    def test_install_fault_aborts_before_memoization(self):
        session = chain_session()
        plan = FaultPlan("install", after=1)
        with pytest.raises(InjectedFault):
            session.query(
                "anc(n0, Y)?", budget=EvaluationBudget(fault_plan=plan)
            )
        assert session.counters()["memo_entries"] == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


ANCESTOR_SOURCE = """\
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(a, b).
par(b, c).
par(c, d).
"""


class TestCliBudgets:
    def write_program(self, tmp_path):
        path = tmp_path / "anc.dl"
        path.write_text(ANCESTOR_SOURCE)
        return str(path)

    def test_tripped_budget_exits_4_with_one_line(self, tmp_path, capsys):
        code = cli_main(
            [
                "query",
                self.write_program(tmp_path),
                "--query",
                "anc(a, Y)?",
                "--max-facts",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 4
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("budget exceeded: max_facts after ")
        assert "Traceback" not in captured.err

    def test_generous_budget_exits_0(self, tmp_path, capsys):
        code = cli_main(
            [
                "query",
                self.write_program(tmp_path),
                "--query",
                "anc(a, Y)?",
                "--timeout",
                "60",
                "--max-facts",
                "100000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "b" in captured.out and "d" in captured.out
