"""Additional cross-module integration tests.

Covers combinations the per-module suites leave out: counting on
multi-predicate programs with acyclic data, structural-mode semijoin,
reverse-direction queries through greedy sips, and GSC + semijoin
evaluated dynamically.
"""

import pytest

from repro import (
    Database,
    answer_query,
    bottom_up_answer,
    evaluate,
    parse_program,
    parse_query,
    rewrite,
    semijoin_optimize,
)
from repro.core.sips import build_full_sip, greedy_order, sip_builder_with_order
from repro.workloads import (
    ancestor_program,
    chain_database,
    load_edges,
    nested_samegen_program,
    nonlinear_samegen_program,
    samegen_database,
    samegen_query,
    tree_edges,
)


def acyclic_nested_database(width=6):
    """Nested same-generation data whose derived relations are acyclic.

    ``up``/``down`` connect layer 0 to layer 1 index-preserving; ``flat``
    edges move strictly rightward inside layer 1, so every derived
    ``sg``/``p`` pair strictly increases the index: no cycles, and the
    counting methods terminate.
    """
    db = Database()
    up = [(f"a{i}", f"b{i}") for i in range(width)]
    down = [(f"b{i}", f"a{i}") for i in range(width)]
    flat = [
        (f"b{i}", f"b{j}")
        for i in range(width)
        for j in range(i + 1, min(i + 3, width))
    ]
    b1 = [(f"a{i}", f"a{i + 1}") for i in range(width - 1)]
    b2 = [(f"a{i}", f"a{min(i + 1, width - 1)}") for i in range(width)]
    db.add_values("up", up)
    db.add_values("down", down)
    db.add_values("flat", flat)
    db.add_values("b1", b1)
    db.add_values("b2", b2)
    return db


class TestCountingOnMultiPredicatePrograms:
    @pytest.mark.parametrize(
        "method", ["counting", "supplementary_counting"]
    )
    @pytest.mark.parametrize("mode", ["numeric", "structural"])
    def test_nested_samegen_acyclic_data(self, method, mode):
        program = nested_samegen_program()
        query = parse_query('p("a0", Y)?')
        db = acyclic_nested_database()
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(
            program, db, query, method=method, mode=mode, max_iterations=500
        )
        assert answer.answers == baseline.answers

    @pytest.mark.parametrize("mode", ["numeric", "structural"])
    def test_semijoin_on_nested_acyclic_data(self, mode):
        program = nested_samegen_program()
        query = parse_query('p("a0", Y)?')
        db = acyclic_nested_database()
        plain = rewrite(program, query, method="counting", mode=mode)
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(
            plain.program, plain.seeded_database(db), max_iterations=500
        )
        opt_res = evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=500,
        )
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )


class TestStructuralSemijoin:
    def test_structural_indices_drop_bound_columns_too(self):
        program = ancestor_program()
        query = parse_query("anc(n0, Y)?")
        plain = rewrite(program, query, method="counting", mode="structural")
        optimized = semijoin_optimize(plain)
        db = chain_database(10)
        plain_res = evaluate(plain.program, plain.seeded_database(db))
        opt_res = evaluate(optimized.program, optimized.seeded_database(db))
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )
        plain_width = len(next(iter(plain_res.database.tuples("anc_ix_bf"))))
        opt_width = len(next(iter(opt_res.database.tuples("anc_ix_bf"))))
        assert opt_width == plain_width - 1  # the bound column is gone

    def test_gsc_semijoin_on_nonlinear_samegen(self):
        program = nonlinear_samegen_program()
        query = samegen_query("L0_0")
        db = samegen_database(3, 4, flat_edges=6)
        plain = rewrite(program, query, method="supplementary_counting")
        optimized = semijoin_optimize(plain)
        plain_res = evaluate(
            plain.program, plain.seeded_database(db), max_iterations=500
        )
        opt_res = evaluate(
            optimized.program,
            optimized.seeded_database(db),
            max_iterations=500,
        )
        assert plain.extract_answers(plain_res) == optimized.extract_answers(
            opt_res
        )


class TestReverseDirectionQueries:
    def test_fb_query_with_greedy_sip(self):
        """anc(X, constant)? answered by inverting the join order."""
        program = ancestor_program()
        db = load_edges(tree_edges(5, fanout=2))
        query = parse_query('anc(X, "r.0.0.0.0")?')
        baseline = bottom_up_answer(program, db, query)
        builder = sip_builder_with_order(build_full_sip, greedy_order)
        answer = answer_query(
            program, db, query, method="magic", sip_builder=builder
        )
        assert answer.answers == baseline.answers
        # the inverted traversal touches only the ancestors of the leaf
        assert answer.stats.facts_derived < baseline.stats.facts_derived

    @pytest.mark.parametrize("method", ["magic", "supplementary_magic"])
    def test_fb_query_magic_methods(self, method):
        program = ancestor_program()
        db = load_edges(tree_edges(4, fanout=2))
        query = parse_query('anc(X, "r.0.0.0")?')
        baseline = bottom_up_answer(program, db, query)
        builder = sip_builder_with_order(build_full_sip, greedy_order)
        answer = answer_query(
            program,
            db,
            query,
            method=method,
            sip_builder=builder,
            max_iterations=300,
        )
        assert answer.answers == baseline.answers

    def test_fb_query_counting_diverges_as_certified(self):
        """Under the inverted sip the recursive call re-passes the SAME
        bound constant: the argument graph has a self-loop, so counting
        diverges (Theorem 10.3) -- and the static analysis says so."""
        from repro import NonTerminationError, adorn_program, counting_safety

        program = ancestor_program()
        db = load_edges(tree_edges(4, fanout=2))
        query = parse_query('anc(X, "r.0.0.0")?')
        builder = sip_builder_with_order(build_full_sip, greedy_order)
        adorned = adorn_program(program, query, sip_builder=builder)
        assert counting_safety(adorned).safe is False
        with pytest.raises(NonTerminationError):
            answer_query(
                program,
                db,
                query,
                method="counting",
                sip_builder=builder,
                max_iterations=200,
            )


class TestMutualRecursionThroughRewrites:
    PROGRAM = """
    reach_even(X, Y) :- edge(X, Y), edge(Y, Y2), eq2(Y, Y2).
    reach_even(X, Y) :- reach_odd(X, Z), edge(Z, Y).
    reach_odd(X, Y) :- edge(X, Y).
    reach_odd(X, Y) :- reach_even(X, Z), edge(Z, Y).
    """

    def database(self):
        db = Database()
        edges = [(f"m{i}", f"m{i + 1}") for i in range(8)]
        db.add_values("edge", edges)
        db.add_values("eq2", [(b, b) for _, b in edges])
        return db

    @pytest.mark.parametrize("method", ["magic", "supplementary_magic"])
    def test_mutually_recursive_predicates(self, method):
        program = parse_program(self.PROGRAM).program
        db = self.database()
        query = parse_query('reach_odd("m0", Y)?')
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method=method)
        assert answer.answers == baseline.answers
        # odd reachability from m0 on a chain: m1, m3, m5, m7
        names = {str(row[0]) for row in answer.answers}
        assert names == {"m1", "m3", "m5", "m7"}


class TestThreeAryAdornments:
    PROGRAM = """
    path(X, Y, L) :- edge(X, Y, L).
    path(X, Y, L) :- edge(X, Z, L), path(Z, Y, L).
    """

    def database(self):
        db = Database()
        db.add_values(
            "edge",
            [
                ("a", "b", "rail"),
                ("b", "c", "rail"),
                ("a", "c", "road"),
                ("c", "d", "road"),
            ],
        )
        return db

    @pytest.mark.parametrize(
        "query_text,expected",
        [
            ('path(a, Y, rail)?', {"b", "c"}),
            ('path(a, Y, road)?', {"c", "d"}),
        ],
    )
    @pytest.mark.parametrize("method", ["magic", "supplementary_magic"])
    def test_bfb_pattern(self, query_text, expected, method):
        program = parse_program(self.PROGRAM).program
        db = self.database()
        query = parse_query(query_text)
        answer = answer_query(program, db, query, method=method)
        assert {str(row[0]) for row in answer.answers} == expected

    def test_bfb_adornment_created(self):
        from repro import adorn_program

        program = parse_program(self.PROGRAM).program
        adorned = adorn_program(program, parse_query("path(a, Y, rail)?"))
        assert "path^bfb" in adorned.adorned_predicates()
