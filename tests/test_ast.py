"""Unit tests for the Horn-clause AST (repro.datalog.ast)."""

import pytest

from repro import (
    ConnectivityError,
    Constant,
    Literal,
    Program,
    Query,
    Rule,
    Struct,
    Variable,
    WellFormednessError,
    parse_rule,
)
from repro.datalog.ast import ALL_FREE, adornment_for_args, validate_adornment
from repro.datalog.errors import AdornmentError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestAdornmentHelpers:
    def test_validate_adornment(self):
        validate_adornment("bf", 2)
        with pytest.raises(AdornmentError):
            validate_adornment("bf", 3)
        with pytest.raises(AdornmentError):
            validate_adornment("bx", 2)

    def test_all_free(self):
        assert ALL_FREE(3) == "fff"

    def test_adornment_for_args(self):
        args = (X, Constant(1), Struct("f", (X, Y)))
        assert adornment_for_args(args, {X}) == "bbf"
        assert adornment_for_args(args, {X, Y}) == "bbb"
        # constants are vacuously bound
        assert adornment_for_args(args, set()) == "fbf"


class TestLiteral:
    def test_pred_key(self):
        plain = Literal("sg", (X, Y))
        adorned = Literal("sg", (X, Y), "bf")
        assert plain.pred_key == "sg"
        assert adorned.pred_key == "sg^bf"

    def test_adornment_arity_checked(self):
        with pytest.raises(AdornmentError):
            Literal("sg", (X, Y), "b")

    def test_bound_free_args(self):
        lit = Literal("sg", (X, Y), "bf")
        assert lit.bound_args() == (X,)
        assert lit.free_args() == (Y,)
        assert lit.bound_positions() == (0,)
        assert lit.free_positions() == (1,)

    def test_unadorned_bound_args_empty(self):
        lit = Literal("sg", (X, Y))
        assert lit.bound_args() == ()
        assert lit.free_args() == (X, Y)

    def test_bound_variables_through_struct(self):
        lit = Literal("app", (Struct(".", (X, Y)), Z), "bf")
        assert set(lit.bound_variables()) == {X, Y}

    def test_substitute(self):
        lit = Literal("sg", (X, Y), "bf")
        out = lit.substitute({X: Constant("a")})
        assert out.args == (Constant("a"), Y)
        assert out.adornment == "bf"

    def test_with_adornment(self):
        lit = Literal("sg", (X, Y))
        assert lit.with_adornment("bf").pred_key == "sg^bf"
        assert lit.with_adornment("bf").with_adornment(None).pred_key == "sg"

    def test_str(self):
        assert str(Literal("sg", (X, Y), "bf")) == "sg^bf(X, Y)"
        assert str(Literal("seed", ())) == "seed"


class TestRule:
    def test_well_formed_ok(self):
        parse_rule("anc(X, Y) :- par(X, Y).").check_well_formed()

    def test_well_formed_violation(self):
        rule = Rule(Literal("p", (X, Y)), (Literal("q", (X,)),))
        with pytest.raises(WellFormednessError):
            rule.check_well_formed()

    def test_unit_rules_exempt_from_wf(self):
        # the paper's own append(V, [], [V]) unit rule
        Rule(
            Literal(
                "append",
                (X, Constant("[]"), Struct(".", (X, Constant("[]")))),
            )
        ).check_well_formed()

    def test_connected_ok(self):
        parse_rule("p(X, Y) :- q(X, Z), r(Z, Y).").check_connected()

    def test_connected_violation(self):
        rule = parse_rule("p(X, Y) :- q(X, Y), r(Z, W).")
        with pytest.raises(ConnectivityError):
            rule.check_connected()

    def test_connected_components(self):
        rule = parse_rule("p(X, Y) :- q(X, Y), r(Z, W), s(W, U).")
        components = rule.connected_components()
        assert len(components) == 2
        assert frozenset({0}) in components
        assert frozenset({1, 2}) in components

    def test_variables_order(self):
        rule = parse_rule("p(X, Y) :- q(Y, Z), r(Z, X).")
        assert rule.variables() == (X, Y, Z)

    def test_rename_apart(self):
        rule = parse_rule("p(X, Y) :- q(X, Y).")
        renamed = rule.rename_apart("_1")
        assert renamed.head.args == (Variable("X_1"), Variable("Y_1"))

    def test_str(self):
        rule = parse_rule("p(X) :- q(X).")
        assert str(rule) == "p(X) :- q(X)."


class TestProgram:
    def test_base_and_derived(self):
        program = Program([
            parse_rule("anc(X, Y) :- par(X, Y)."),
            parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y)."),
        ])
        assert program.derived_predicates() == {"anc"}
        assert program.base_predicates() == {"par"}

    def test_rules_for(self):
        program = Program([
            parse_rule("p(X) :- q(X)."),
            parse_rule("r(X) :- p(X)."),
        ])
        assert len(program.rules_for("p")) == 1
        assert len(program.rules_for_pred_name("r")) == 1

    def test_is_datalog(self):
        datalog = Program([parse_rule("p(X) :- q(X).")])
        assert datalog.is_datalog()
        functional = Program([parse_rule("p(X) :- q([X | T], T).")])
        assert not functional.is_datalog()

    def test_unit_rules_allowed(self):
        program = Program([Rule(Literal("p", (X,)))])
        assert program.derived_predicates() == {"p"}

    def test_validate_waivable_wf(self):
        bad = Program([Rule(Literal("p", (X, Y)), (Literal("q", (X,)),))])
        with pytest.raises(WellFormednessError):
            bad.validate()
        bad.validate(require_well_formed=False)  # no raise


class TestQuery:
    def test_adornment_from_groundness(self):
        query = Query(Literal("anc", (Constant("john"), Y)))
        assert query.adornment == "bf"
        assert query.bound_constants() == (Constant("john"),)
        assert query.free_variables() == (Y,)

    def test_repeated_variable_rejected(self):
        with pytest.raises(ValueError):
            Query(Literal("p", (X, X)))

    def test_struct_argument_is_bound_when_ground(self):
        lst = Struct(".", (Constant(1), Constant("[]")))
        query = Query(Literal("reverse", (lst, Y)))
        assert query.adornment == "bf"

    def test_adorned_literal(self):
        query = Query(Literal("anc", (Constant("john"), Y)))
        assert query.adorned_literal().pred_key == "anc^bf"
