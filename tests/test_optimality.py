"""Sip-optimality -- Section 9 (experiments E7 and E8)."""

import pytest

from repro import (
    build_chain_sip,
    check_optimality,
    compare_sips,
    evaluate,
    rewrite,
)
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    nested_samegen_database,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_samegen_program,
    random_dag_database,
    samegen_database,
    samegen_query,
    tree_database,
)


class TestTheorem91:
    """Bottom-up on P^mg is sip-optimal: magic facts = the sip strategy's
    queries Q, adorned facts = its answers F."""

    @pytest.mark.parametrize(
        "db_maker,root",
        [
            (lambda: chain_database(10), "n0"),
            (lambda: tree_database(4), "r"),
            (lambda: random_dag_database(25, 0.15, seed=3), "n0"),
        ],
    )
    def test_ancestor(self, db_maker, root):
        rewritten = rewrite(
            ancestor_program(), ancestor_query(root), method="magic"
        )
        report = check_optimality(rewritten, db_maker())
        assert report.sip_optimal, report.mismatches

    def test_nonlinear_samegen(self):
        rewritten = rewrite(
            nonlinear_samegen_program(), samegen_query("L0_0"), method="magic"
        )
        db = samegen_database(3, 4, flat_edges=6)
        report = check_optimality(rewritten, db, max_iterations=500)
        assert report.sip_optimal, report.mismatches

    def test_nested_samegen(self):
        rewritten = rewrite(
            nested_samegen_program(),
            nested_samegen_query("L0_0"),
            method="magic",
        )
        db = nested_samegen_database(3, 4)
        report = check_optimality(rewritten, db, max_iterations=500)
        assert report.sip_optimal, report.mismatches

    def test_report_counts(self):
        rewritten = rewrite(
            ancestor_program(), ancestor_query("n0"), method="magic"
        )
        report = check_optimality(rewritten, chain_database(6))
        # queries: one magic fact per reachable node (n0..n6)
        assert report.total_magic_facts() == 7
        # answers: all (x, y) ancestor pairs with x reachable
        assert report.total_adorned_facts() == 6 + 5 + 4 + 3 + 2 + 1

    def test_supplementary_magic_also_optimal_in_facts(self):
        """GSMS computes the same magic/adorned fact sets (it only adds
        supplementary predicates)."""
        db = chain_database(8)
        gms = rewrite(ancestor_program(), ancestor_query("n0"), method="magic")
        gsms = rewrite(
            ancestor_program(),
            ancestor_query("n0"),
            method="supplementary_magic",
        )
        gms_res = evaluate(gms.program, gms.seeded_database(db))
        gsms_res = evaluate(gsms.program, gsms.seeded_database(db))
        for key in ("anc^bf", "magic_anc_bf"):
            assert gms_res.database.tuples(key) == gsms_res.database.tuples(
                key
            )


class TestLemma93:
    """Fuller sips compute a subset of the partial sip's facts."""

    def test_full_contained_in_partial_nonlinear_samegen(self):
        program = nonlinear_samegen_program()
        query = samegen_query("L0_0")
        full = rewrite(program, query, method="magic")
        partial = rewrite(
            program, query, method="magic", sip_builder=build_chain_sip
        )
        db = samegen_database(3, 5, flat_edges=8, seed=2)
        comparison = compare_sips(full, partial, db, max_iterations=500)
        assert comparison.contained
        assert comparison.fuller_facts <= comparison.partial_facts

    def test_identical_sips_compare_equal(self):
        program = ancestor_program()
        query = ancestor_query("n0")
        full = rewrite(program, query, method="magic")
        again = rewrite(program, query, method="magic")
        comparison = compare_sips(full, again, chain_database(6))
        assert comparison.contained
        assert comparison.fuller_facts == comparison.partial_facts
