"""The parallel evaluation tier: sharding, backends, exact equivalence.

The contract under test (see ``repro.datalog.parallel``): for any safe
stratified program, ``evaluate(..., workers=N)`` derives exactly the
facts the serial engine derives AND reports exactly the serial solution
counters (``facts_derived``, ``rule_firings``, ``duplicate_derivations``,
``iterations``, per-predicate counts) -- parallelism is observable only
in the ``parallel_*`` stats and the wall clock.  Budget trips,
cancellations, injected faults, and worker deaths abort exactly as
serial: same exception surface, source database untouched and integral.
"""

import multiprocessing
import time
from array import array

import pytest

from repro import (
    BudgetExceeded,
    CancellationToken,
    Database,
    EvaluationBudget,
    EvaluationCancelled,
    FaultPlan,
    Session,
    evaluate,
    parse_program,
)
from repro.core.limits import InjectedFault
from repro.datalog.catalog import TermCatalog, term_catalog
from repro.datalog.engine import evaluate_naive, evaluate_seminaive
from repro.datalog.errors import NonTerminationError
from repro.datalog.parallel import (
    _BatchTask,
    _flatten,
    _hash_filter,
    _hash_shards,
    _ProgramShards,
    _replica_preds,
    _shard_mode,
    _unflatten,
    _visibility_groups,
    evaluate_parallel,
    resolve_backend,
)
from repro.datalog.planner import (
    CompiledProgram,
    compile_rule,
    partition_columns,
    plan_interns_terms,
)
from repro.datalog.terms import Constant
from repro.workloads.bom import bom_database, bom_program
from repro.workloads.graphs import chain_edges, load_edges

BACKENDS = ("fork", "thread")

TC = """
    anc(X, Y) :- par(X, Y).
    anc(X, Z) :- par(X, Y), anc(Y, Z).
"""

SAMEGEN = """
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
"""

NONLINEAR_SG = """
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), flat(V, W), sg(W, Z), down(Z, Y).
"""


def _program(source):
    return parse_program(source).program


def _tc_db(n=40, extra=()):
    edges = chain_edges(n) + list(extra)
    return load_edges(edges)


def _sg_db():
    db = Database()
    db.add_values("up", [(f"a{i}", f"a{i+1}") for i in range(6)])
    db.add_values("down", [(f"a{i+1}", f"a{i}") for i in range(6)])
    db.add_values("flat", [("a3", "a3"), ("a2", "a4"), ("a5", "a1")])
    return db


def _snapshot(result):
    """Frozen ID rows of every derived relation."""
    out = {}
    for key in sorted(result.derived_keys):
        rel = result.database.get(key)
        out[key] = frozenset(rel.id_rows()) if rel is not None else frozenset()
    return out


def _counters(stats):
    """The solution counters that must match serial exactly."""
    return (
        stats.facts_derived,
        stats.rule_firings,
        stats.duplicate_derivations,
        stats.iterations,
        dict(stats.facts_by_predicate),
    )


def _db_fingerprint(db):
    return (
        db.version,
        {key: frozenset(db.tuples(key)) for key in db.predicate_keys()},
    )


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("fork") == "fork"
        assert resolve_backend("thread") == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("mpi")

    def test_auto_picks_a_real_backend(self):
        resolved = resolve_backend("auto")
        assert resolved in ("fork", "thread")
        if "fork" not in multiprocessing.get_all_start_methods():
            assert resolved == "thread"

    def test_workers_below_two_rejected(self):
        with pytest.raises(ValueError):
            evaluate_parallel(_program(TC), _tc_db(4), workers=1)


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestShardPlanning:
    def test_tc_delta_plan_hash_partitions_on_join_column(self):
        program = _program(TC)
        compiled = CompiledProgram(program)
        # delta on the recursive anc occurrence: rows are (Y, Z) and
        # par is probed on Y, so the partition column is 0
        plan = compiled.plan(1, 1)
        assert partition_columns(plan) == (0,)
        assert _shard_mode(plan) == ("hash", (0,))

    def test_copy_rule_chunks(self):
        program = _program("node(X) :- e(X, Y).")
        shards = _ProgramShards(program, CompiledProgram(program))
        mode, pcols = shards.full_modes[0]
        assert mode == "chunk" and pcols is None

    def test_ground_probe_goes_solo(self):
        # g(c, d) is probed on constant keys only: no input column can
        # co-locate the probe, so the batch must not be split.  Pin the
        # pivot on e explicitly -- order_body would otherwise move the
        # fully ground literal first and turn this into a chunk plan.
        program = _program("p(X) :- e(X), g(c, d).")
        plan = compile_rule(program.rules[0], 0)
        assert plan.steps[1].b_key_ops  # constant-keyed probe downstream
        assert partition_columns(plan) is None
        assert _shard_mode(plan) == ("solo", None)

    def test_full_plans_get_shard_pivots(self):
        program = _program(TC)
        shards = _ProgramShards(program, CompiledProgram(program))
        assert set(shards.shard_plans) == {0, 1}
        for plan in shards.shard_plans.values():
            assert plan.steps[0].is_delta  # pivot executes as the input

    def test_plans_of_parsed_programs_do_not_intern(self):
        program = _program(TC)
        compiled = CompiledProgram(program)
        shards = _ProgramShards(program, compiled)
        assert not any(
            plan_interns_terms(p)
            for p in shards.all_plans(program, compiled)
        )

    def test_replica_preds_cover_probed_derived_only(self):
        program = _program(TC)
        compiled = CompiledProgram(program)
        shards = _ProgramShards(program, compiled)
        # anc is probed by the recursive rule's full shard plan, so the
        # fork workers must maintain a real replica for it
        assert _replica_preds(program, compiled, shards) == {"anc"}
        prog2 = _program("node(X) :- e(X, Y).")
        comp2 = CompiledProgram(prog2)
        assert _replica_preds(prog2, comp2, _ProgramShards(prog2, comp2)) \
            == frozenset()


# ----------------------------------------------------------------------
# row shipping
# ----------------------------------------------------------------------
class TestRowShipping:
    def test_flatten_roundtrip(self):
        rows = [(1, 2, 3), (4, 5, 6), (-1, 0, 2**40)]
        buf = _flatten(rows)
        assert isinstance(buf, array) and buf.typecode == "q"
        assert _unflatten(buf, 3, 3) == rows

    def test_flatten_roundtrip_zero_arity(self):
        rows = [(), (), ()]
        buf = _flatten(rows)
        assert len(buf) == 0
        assert _unflatten(buf, 0, 3) == rows

    def test_hash_shards_partition_exactly(self):
        rows = [(i, i * 7 % 13) for i in range(200)]
        for pcols in ((0,), (1,), (0, 1)):
            shards = _hash_shards(rows, pcols, 4)
            assert sum(len(s) for s in shards) == len(rows)
            rebuilt = [r for s in shards for r in s]
            assert sorted(rebuilt) == sorted(rows)
            # worker-side filtering agrees with parent-side splitting
            for w in range(4):
                assert _hash_filter(rows, pcols, 4, w) == shards[w]

    def test_hash_shards_colocate_keys(self):
        rows = [(k, v) for k in range(10) for v in range(20)]
        shards = _hash_shards(rows, (0,), 3)
        owners = {}
        for w, shard in enumerate(shards):
            for row in shard:
                assert owners.setdefault(row[0], w) == w


# ----------------------------------------------------------------------
# visibility groups
# ----------------------------------------------------------------------
def _task(task_id, head, reads):
    return _BatchTask(
        task_id, 0, None, head, "full", None, "chunk", None, 0,
        frozenset(reads),
    )


class TestVisibilityGroups:
    def test_independent_tasks_share_one_group(self):
        tasks = [_task(0, "a", ()), _task(1, "b", ()), _task(2, "c", ())]
        assert [len(g) for g in _visibility_groups(tasks)] == [3]

    def test_reader_of_earlier_head_starts_new_group(self):
        # serial order: b's batch sees a's merge, so they cannot run
        # in the same group
        tasks = [_task(0, "a", ()), _task(1, "b", ("a",))]
        groups = _visibility_groups(tasks)
        assert [[t.task_id for t in g] for g in groups] == [[0], [1]]

    def test_nonlinear_self_reads_serialize(self):
        # two delta occurrences of one recursive predicate: the second
        # probes the first's merge (the serial engine merges per batch)
        tasks = [_task(0, "sg", ("sg",)), _task(1, "sg", ("sg",))]
        groups = _visibility_groups(tasks)
        assert [len(g) for g in groups] == [1, 1]

    def test_later_nonconflicting_tasks_rejoin(self):
        tasks = [
            _task(0, "a", ()),
            _task(1, "b", ("a",)),  # flush
            _task(2, "c", ()),      # joins b's group
        ]
        groups = _visibility_groups(tasks)
        assert [[t.task_id for t in g] for g in groups] == [[0], [1, 2]]


# ----------------------------------------------------------------------
# catalog export (the one-shot ID-space snapshot workers build on)
# ----------------------------------------------------------------------
class TestCatalogExport:
    def test_export_is_indexed_by_id(self):
        catalog = term_catalog()
        a = catalog.intern(Constant("parallel-export-probe"))
        state = catalog.export_state()
        assert state[a] == Constant("parallel-export-probe")
        assert len(state) == len(catalog)

    def test_ensure_state_rebuilds_a_fresh_catalog(self):
        source = TermCatalog()
        ids = [source.intern(Constant(f"c{i}")) for i in range(5)]
        state = source.export_state()
        worker = TermCatalog()
        worker.ensure_state(state)
        for i, term in zip(ids, state):
            assert worker.id_of(term) == i
            assert worker.resolve(i) == term

    def test_ensure_state_is_idempotent_on_a_forked_prefix(self):
        source = TermCatalog()
        for i in range(5):
            source.intern(Constant(f"c{i}"))
        state = source.export_state()
        source.ensure_state(state)  # self-application: no-op
        assert len(source) == len(state)

    def test_ensure_state_rejects_divergence(self):
        source = TermCatalog()
        source.intern(Constant("x"))
        worker = TermCatalog()
        worker.intern(Constant("y"))  # ID 0 disagrees
        with pytest.raises(ValueError, match="diverged at ID 0"):
            worker.ensure_state(source.export_state())


# ----------------------------------------------------------------------
# equivalence: answers AND counters identical to serial
# ----------------------------------------------------------------------
class TestSerialEquivalence:
    @pytest.mark.parametrize("method", ("seminaive", "naive"))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transitive_closure(self, method, backend):
        program = _program(TC)
        db = _tc_db(40, extra=[("n5", "n1"), ("n20", "n3")])
        base = evaluate(program, db, method=method)
        for workers in (2, 4):
            result = evaluate(
                program, db, method=method, workers=workers,
                parallel_backend=backend,
            )
            assert _snapshot(result) == _snapshot(base)
            assert _counters(result.stats) == _counters(base.stats)
            assert result.stats.parallel_workers == workers
            assert result.stats.parallel_backend == backend
            assert result.stats.parallel_tasks > 0
            assert result.database.check_integrity()

    @pytest.mark.parametrize("method", ("seminaive", "naive"))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stratified_bom(self, method, backend):
        program = bom_program()
        db = bom_database(depth=7, fanout=2, exception_rate=0.2, seed=11)
        base = evaluate(program, db, method=method)
        result = evaluate(
            program, db, method=method, workers=4,
            parallel_backend=backend,
        )
        assert _snapshot(result) == _snapshot(base)
        assert _counters(result.stats) == _counters(base.stats)

    @pytest.mark.parametrize("source", (SAMEGEN, NONLINEAR_SG))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_generation(self, source, backend):
        program = _program(source)
        db = _sg_db()
        base = evaluate(program, db, method="seminaive")
        result = evaluate(
            program, db, method="seminaive", workers=4,
            parallel_backend=backend,
        )
        assert _snapshot(result) == _snapshot(base)
        assert _counters(result.stats) == _counters(base.stats)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_and_trivial_programs(self, backend):
        program = _program("node(X) :- e(X, Y).")
        empty = Database()
        r = evaluate(
            program, empty, workers=2, parallel_backend=backend
        )
        assert _snapshot(r) == {"node": frozenset()}
        db = Database()
        db.add_values("e", [("a", "b")])
        r = evaluate(program, db, workers=4, parallel_backend=backend)
        base = evaluate(program, db)
        assert _snapshot(r) == _snapshot(base)
        assert _counters(r.stats) == _counters(base.stats)

    def test_direct_entry_points_accept_workers(self):
        program = _program(TC)
        db = _tc_db(10)
        semi = evaluate_seminaive(program, db, workers=2)
        naive = evaluate_naive(program, db, workers=2)
        base = evaluate(program, db)
        assert _snapshot(semi) == _snapshot(base)
        assert _snapshot(naive) == _snapshot(base)

    def test_row_path_falls_back_to_serial(self):
        program = _program(TC)
        db = _tc_db(10)
        result = evaluate(program, db, workers=4, vectorized=False)
        assert result.stats.parallel_workers == 0
        assert result.stats.parallel_fallback == "row path is serial-only"
        assert _snapshot(result) == _snapshot(evaluate(program, db))

    def test_source_database_never_mutated(self):
        program = _program(TC)
        db = _tc_db(20)
        before = _db_fingerprint(db)
        evaluate(program, db, workers=4)
        assert _db_fingerprint(db) == before
        assert db.check_integrity()

    @pytest.mark.skipif(
        resolve_backend("auto") != "fork",
        reason="interning fallback only applies to the fork backend",
    )
    def test_interning_plans_fall_back_to_threads(self):
        # a structured head term interns fresh IDs at run time: fork
        # workers would allocate IDs the parent never sees
        program = _program("wrapped(f(X)) :- e(X, Y).")
        db = Database()
        db.add_values("e", [(f"a{i}", f"b{i}") for i in range(10)])
        base = evaluate(program, db)
        result = evaluate(program, db, workers=4, parallel_backend="fork")
        assert result.stats.parallel_backend == "thread"
        assert "intern" in result.stats.parallel_fallback
        assert _snapshot(result) == _snapshot(base)
        assert _counters(result.stats) == _counters(base.stats)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_rows_balance_on_hash_shards(self, backend):
        program = _program(TC)
        db = _tc_db(60)
        result = evaluate(
            program, db, workers=4, parallel_backend=backend
        )
        per_worker = result.stats.parallel_worker_rows
        # every worker derived something on a 60-node chain
        assert len(per_worker) == 4
        assert all(count > 0 for count in per_worker.values())


# ----------------------------------------------------------------------
# budgets, cancellation, faults: degrade/abort exactly as serial
# ----------------------------------------------------------------------
class TestGovernedParallelEvaluation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_facts_trips_identically(self, backend):
        program = _program(TC)
        db = _tc_db(30)
        with pytest.raises(NonTerminationError) as serial:
            evaluate(program, db, max_facts=20)
        with pytest.raises(NonTerminationError) as parallel:
            evaluate(
                program, db, max_facts=20, workers=4,
                parallel_backend=backend,
            )
        assert parallel.value.facts == serial.value.facts
        assert parallel.value.iterations == serial.value.iterations
        assert db.check_integrity()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_iterations_trips_identically(self, backend):
        program = _program(TC)
        db = _tc_db(30)
        with pytest.raises(NonTerminationError) as serial:
            evaluate(program, db, max_iterations=3)
        with pytest.raises(NonTerminationError) as parallel:
            evaluate(
                program, db, max_iterations=3, workers=4,
                parallel_backend=backend,
            )
        assert parallel.value.facts == serial.value.facts
        assert db.check_integrity()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_meter_max_facts_trips(self, backend):
        program = _program(TC)
        db = _tc_db(30)
        meter = EvaluationBudget(max_facts=15).start()
        before = _db_fingerprint(db)
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                program, db, workers=4, parallel_backend=backend,
                meter=meter,
            )
        assert info.value.limit == "max_facts"
        assert _db_fingerprint(db) == before
        assert db.check_integrity()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_expired_deadline_aborts(self, backend):
        program = _program(TC)
        db = _tc_db(30)
        meter = EvaluationBudget(timeout=0.0).start()
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                program, db, workers=4, parallel_backend=backend,
                meter=meter,
            )
        assert info.value.limit == "wall_clock"
        assert db.check_integrity()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_precancelled_token_aborts(self, backend):
        program = _program(TC)
        db = _tc_db(30)
        token = CancellationToken()
        token.cancel()
        meter = EvaluationBudget(token=token).start()
        with pytest.raises(EvaluationCancelled):
            evaluate(
                program, db, workers=4, parallel_backend=backend,
                meter=meter,
            )
        assert db.check_integrity()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_injected_faults_preserve_atomicity(self, backend, seed):
        """A fault at any round/batch/install boundary under workers=4
        leaves the source database byte-identical and integral, and a
        clean re-run agrees with serial -- the pool tears down without
        leaking partial state anywhere observable."""
        program = bom_program()
        db = bom_database(depth=6, fanout=2, exception_rate=0.2, seed=5)
        before = _db_fingerprint(db)
        oracle = evaluate(program, db, method="seminaive")
        plan = FaultPlan.randomized(seed)
        meter = EvaluationBudget(fault_plan=plan).start()
        try:
            result = evaluate(
                program, db, method="seminaive", workers=4,
                parallel_backend=backend, meter=meter,
            )
        except (InjectedFault, EvaluationCancelled):
            result = None
        assert _db_fingerprint(db) == before
        assert db.check_integrity()
        if result is not None:
            assert _snapshot(result) == _snapshot(oracle)
        # the pool is gone: a clean re-run on the same database agrees
        rerun = evaluate(
            program, db, method="seminaive", workers=4,
            parallel_backend=backend,
        )
        assert _snapshot(rerun) == _snapshot(oracle)
        assert _counters(rerun.stats) == _counters(oracle.stats)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_fires_at_same_boundary_as_serial(self, backend):
        """The parent drives every meter boundary, so a deterministic
        batch-fault plan fires after the same number of ticks under
        workers as under serial evaluation."""
        program = _program(TC)
        db = _tc_db(20)
        def boundary(workers):
            plan = FaultPlan("batch", after=4)
            meter = EvaluationBudget(fault_plan=plan).start()
            kwargs = {"workers": workers,
                      "parallel_backend": backend} if workers > 1 else {}
            with pytest.raises((InjectedFault, EvaluationCancelled)):
                evaluate(program, db, meter=meter, **kwargs)
            return plan.counts
        assert boundary(4)["batch"] == boundary(1)["batch"]


# ----------------------------------------------------------------------
# session / server surfaces
# ----------------------------------------------------------------------
SESSION_SRC = TC + """
    par(a, b). par(b, c). par(c, d). par(d, e).
"""


class TestSessionWorkers:
    def test_rows_identical_and_memo_keyed_by_workers(self):
        with Session(SESSION_SRC) as session:
            serial = session.query("anc(a, X)?", method="seminaive")
            parallel = session.query(
                "anc(a, X)?", method="seminaive", workers=4
            )
            assert parallel.rows == serial.rows
            assert not parallel.from_memo  # distinct memo entry
            assert parallel.stats.parallel_workers == 4
            again = session.query(
                "anc(a, X)?", method="seminaive", workers=4
            )
            assert again.from_memo

    def test_auto_dispatch_accepts_workers(self):
        with Session(SESSION_SRC) as session:
            serial = session.query("anc(a, X)?")
            parallel = session.query("anc(a, X)?", workers=4)
            assert parallel.rows == serial.rows
            assert parallel.method == serial.method

    def test_rewrite_methods_run_parallel_evaluation(self):
        with Session(SESSION_SRC) as session:
            result = session.query(
                "anc(a, X)?", method="supplementary_magic", workers=4
            )
            assert result.stats.parallel_workers == 4
            assert ("e",) in {
                tuple(t.value for t in row) for row in result.rows
            }

    def test_budgeted_parallel_query_degrades_like_serial(self):
        with Session(SESSION_SRC) as session:
            result = session.query(
                "anc(a, X)?", workers=4, max_facts=10_000_000
            )
            assert result.budget_spent is not None
            assert len(result.rows) == 4


class TestServerWorkers:
    def test_server_config_threads_workers_through(self):
        from repro.server.app import ServerConfig, ServerHandle

        config = ServerConfig(workers=2)
        with ServerHandle.start(SESSION_SRC, config=config) as handle:
            out = handle.request(
                {"op": "query", "query": "anc(a, X)?"}
            )
            assert out["ok"]
            assert out["row_count"] == 4
