"""Program analysis utilities (repro.datalog.analysis)."""

from repro import parse_program
from repro.datalog.analysis import (
    dependency_graph,
    depends_on,
    is_recursive_predicate,
    reachable_predicates,
    recursive_blocks,
    strongly_connected_components,
)


def program(source):
    return parse_program(source).program


MUTUAL = """
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(X).
"""


class TestDependencyGraph:
    def test_edges(self):
        graph = dependency_graph(program(MUTUAL))
        assert graph["even"] == {"zero", "succ", "odd"}
        assert graph["odd"] == {"succ", "even"}

    def test_base_predicates_have_no_entry(self):
        graph = dependency_graph(program(MUTUAL))
        assert "succ" not in graph


class TestSCC:
    def test_mutual_recursion_one_component(self):
        graph = dependency_graph(program(MUTUAL))
        components = strongly_connected_components(graph)
        assert frozenset({"even", "odd"}) in components

    def test_topological_order(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": set()}
        components = strongly_connected_components(graph)
        # callees come before callers
        assert components.index(frozenset({"c"})) < components.index(
            frozenset({"a"})
        )

    def test_self_loop(self):
        graph = {"a": {"a"}}
        assert frozenset({"a"}) in strongly_connected_components(graph)


class TestBlocks:
    def test_mutual_block(self):
        blocks = recursive_blocks(program(MUTUAL))
        assert frozenset({"even", "odd"}) in blocks

    def test_non_recursive_not_a_block(self):
        blocks = recursive_blocks(program("p(X) :- q(X)."))
        assert blocks == []

    def test_self_recursive_block(self):
        blocks = recursive_blocks(
            program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).")
        )
        assert frozenset({"t"}) in blocks


class TestQueries:
    def test_is_recursive(self):
        p = program(MUTUAL)
        assert is_recursive_predicate(p, "even")
        assert is_recursive_predicate(p, "odd")
        assert not is_recursive_predicate(program("p(X) :- q(X)."), "p")

    def test_reachable(self):
        p = program("a(X) :- b(X).\nb(X) :- c(X).\nd(X) :- e(X).")
        assert reachable_predicates(p, ["a"]) == {"a", "b", "c"}

    def test_depends_on(self):
        p = program("a(X) :- b(X).\nb(X) :- c(X).")
        assert depends_on(p, "a", "b")
        assert depends_on(p, "a", "c")
        assert not depends_on(p, "a", "a")
