"""Extra sip-builder coverage: right-to-left sips and the synthetic
workload generator."""


from repro import answer_query, bottom_up_answer, parse_query
from repro.core.sips import build_right_to_left_sip
from repro.workloads import (
    ancestor_program,
    load_edges,
    synthetic_chain_database,
    synthetic_chain_program,
    tree_edges,
)


def is_derived_anc(literal):
    return literal.pred == "anc"


class TestRightToLeftSip:
    def test_reversed_order(self):
        from repro.datalog.parser import parse_rule

        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        sip = build_right_to_left_sip(rule, "fb", is_derived_anc)
        assert sip.total_order() == (1, 0)
        # the recursive occurrence receives Y from the head
        arc = sip.arcs_into(1)[0]
        assert arc.has_head()

    def test_answers_fb_query(self):
        program = ancestor_program()
        db = load_edges(tree_edges(4, fanout=2))
        query = parse_query('anc(X, "r.0.0.0")?')
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(
            program,
            db,
            query,
            method="magic",
            sip_builder=build_right_to_left_sip,
        )
        assert answer.answers == baseline.answers
        assert answer.stats.facts_derived < baseline.stats.facts_derived

    def test_bf_query_degrades_gracefully(self):
        """For a bf query, right-to-left passes nothing until the last
        literal: answers still correct, just less selective."""
        program = ancestor_program()
        db = load_edges(tree_edges(4, fanout=2))
        query = parse_query('anc("r", Y)?')
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(
            program,
            db,
            query,
            method="magic",
            sip_builder=build_right_to_left_sip,
        )
        assert answer.answers == baseline.answers


class TestSyntheticWorkload:
    def test_program_shape(self):
        program = synthetic_chain_program(5)
        assert len(program) == 10
        assert program.derived_predicates() == {f"p{i}" for i in range(5)}

    def test_database_shape(self):
        db = synthetic_chain_database(3, length=4)
        assert len(db.tuples("e0")) == 4
        assert len(db.tuples("e2")) == 4

    def test_all_layers_adorned(self):
        from repro import adorn_program
        from repro.datalog.ast import Literal, Query
        from repro.datalog.terms import Constant, Variable

        program = synthetic_chain_program(4)
        query = Query(Literal("p0", (Constant("n0"), Variable("Y"))))
        adorned = adorn_program(program, query)
        assert {f"p{i}^bf" for i in range(4)} <= adorned.adorned_predicates()
