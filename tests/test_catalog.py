"""TermCatalog: the ground-term <-> dense-int-ID boundary.

The columnar storage layer stores only catalog IDs, so the whole
refactor is sound exactly when interning is a bijection on ground terms:
``resolve(intern(t)) == t``, identical terms share an ID, distinct terms
never collide, and non-ground terms are rejected.
"""

import pytest

from repro import Constant, Variable
from repro.datalog.catalog import TermCatalog, term_catalog
from repro.datalog.terms import Struct


def c(value):
    return Constant(value)


class TestRoundTrip:
    def test_string_constants(self):
        cat = TermCatalog()
        terms = [c("alice"), c("bob"), c(""), c("alice")]
        ids = [cat.intern(t) for t in terms]
        assert ids[0] == ids[3]  # identical terms share an ID
        assert len(set(ids[:3])) == 3
        for t, i in zip(terms, ids):
            assert cat.resolve(i) == t

    def test_int_constants(self):
        cat = TermCatalog()
        for value in (0, 1, -1, 2**40):
            assert cat.resolve(cat.intern(c(value))) == c(value)

    def test_int_and_string_do_not_collide(self):
        # Constant(1) != Constant("1"): the catalog must keep them apart
        cat = TermCatalog()
        assert cat.intern(c(1)) != cat.intern(c("1"))

    def test_structs(self):
        cat = TermCatalog()
        plain = Struct("f", (c("a"), c(1)))
        nested = Struct("f", (Struct("g", (c("a"),)), c("b")))
        for term in (plain, nested):
            assert cat.resolve(cat.intern(term)) == term
        assert cat.intern(plain) == cat.intern(Struct("f", (c("a"), c(1))))

    def test_resolve_row_inverts_intern_row(self):
        cat = TermCatalog()
        row = (c("a"), c(7), Struct("f", (c("x"),)))
        assert cat.resolve_row(cat.intern_row(row)) == row


class TestCatalogContract:
    def test_ids_are_dense_and_stable(self):
        cat = TermCatalog()
        first = cat.intern(c("a"))
        second = cat.intern(c("b"))
        assert (first, second) == (0, 1)
        assert len(cat) == 2
        assert cat.intern(c("a")) == first  # re-interning never moves

    def test_id_of_is_a_read_only_probe(self):
        cat = TermCatalog()
        assert cat.id_of(c("never-seen")) == -1
        assert len(cat) == 0  # the miss did not allocate
        known = cat.intern(c("seen"))
        assert cat.id_of(c("seen")) == known

    def test_non_ground_terms_are_rejected(self):
        cat = TermCatalog()
        with pytest.raises(ValueError):
            cat.intern(Variable("X"))
        with pytest.raises(ValueError):
            cat.intern(Struct("f", (Variable("X"),)))
        with pytest.raises(ValueError):
            cat.intern_row((c("a"), Variable("X")))

    def test_process_wide_singleton(self):
        assert term_catalog() is term_catalog()
        cat = term_catalog()
        term = c("singleton-round-trip")
        assert cat.resolve(cat.intern(term)) == term
