"""Unit tests for the surface-syntax parser (repro.datalog.parser)."""

import pytest

from repro import (
    Constant,
    ParseError,
    Struct,
    Variable,
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
)
from repro.datalog.terms import EMPTY_LIST


class TestTerms:
    def test_variable(self):
        assert parse_term("X") == Variable("X")
        assert parse_term("_foo") == Variable("_foo")

    def test_constant(self):
        assert parse_term("john") == Constant("john")
        assert parse_term("42") == Constant(42)
        assert parse_term("-7") == Constant(-7)
        assert parse_term('"hello world"') == Constant("hello world")

    def test_struct(self):
        assert parse_term("f(a, X)") == Struct(
            "f", (Constant("a"), Variable("X"))
        )

    def test_nested_struct(self):
        assert parse_term("f(g(1), h(X, 2))") == Struct(
            "f",
            (
                Struct("g", (Constant(1),)),
                Struct("h", (Variable("X"), Constant(2))),
            ),
        )

    def test_lists(self):
        assert parse_term("[]") == EMPTY_LIST
        one_two = parse_term("[1, 2]")
        assert one_two == Struct(
            ".", (Constant(1), Struct(".", (Constant(2), EMPTY_LIST)))
        )
        assert parse_term("[1 | T]") == Struct(
            ".", (Constant(1), Variable("T"))
        )

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_term("f(a) extra")


class TestLiterals:
    def test_with_args(self):
        lit = parse_literal("anc(john, Y)")
        assert lit.pred == "anc"
        assert lit.args == (Constant("john"), Variable("Y"))

    def test_propositional(self):
        assert parse_literal("halt").args == ()

    def test_predicate_must_be_lowercase(self):
        with pytest.raises(ParseError):
            parse_literal("Anc(john, Y)")


class TestRules:
    def test_simple(self):
        rule = parse_rule("anc(X, Y) :- par(X, Y).")
        assert rule.head.pred == "anc"
        assert len(rule.body) == 1

    def test_multi_literal(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        assert [l.pred for l in rule.body] == ["par", "anc"]

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")


class TestQueries:
    def test_question_mark_style(self):
        query = parse_query("anc(john, Y)?")
        assert query.pred == "anc"
        assert query.adornment == "bf"

    def test_prolog_style(self):
        query = parse_query("?- anc(john, Y).")
        assert query.adornment == "bf"


class TestPrograms:
    SOURCE = """
    % the ancestor program
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    par(john, mary).
    par(mary, sue).
    anc(john, Y)?
    """

    def test_parse_program_splits_rules_facts_queries(self):
        program, facts, queries = parse_program(self.SOURCE)
        assert len(program) == 2
        assert len(facts) == 2
        assert len(queries) == 1
        assert facts[0].pred == "par"

    def test_comments_ignored(self):
        program, _, _ = parse_program("% nothing\np(X) :- q(X).")
        assert len(program) == 1

    def test_non_ground_unit_clause_is_a_rule(self):
        program, facts, _ = parse_program("append(V, [], [V]).")
        assert len(program) == 1
        assert not facts

    def test_ground_unit_clause_is_a_fact(self):
        program, facts, _ = parse_program("par(a, b).")
        assert len(program) == 0
        assert len(facts) == 1

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(X) :- q(X).\np(Y) :- & .")
        assert "line 2" in str(excinfo.value)

    def test_empty_source(self):
        program, facts, queries = parse_program("")
        assert len(program) == 0 and not facts and not queries
