"""Property-based tests over function symbols (hypothesis).

Checks the list-reverse pipeline on random lists (the rewrites must
compute exactly the Python-level reversal) and algebraic properties of
linear index expressions and the parser's round trip.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Constant, LinExpr, Variable, parse_term
from repro.datalog.database import Database
from repro.datalog.terms import list_elements, make_list
from repro.workloads import constant_list, list_reverse_program, reverse_query

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

atoms = st.sampled_from(["a", "b", "c", "d", "e"])


class TestReverseProperty:
    @given(values=st.lists(atoms, max_size=6))
    @SETTINGS
    def test_magic_reverse_equals_python_reverse(self, values):
        from repro import answer_query

        program = list_reverse_program()
        query = reverse_query(constant_list(values))
        answer = answer_query(
            program, Database(), query, method="magic", max_iterations=200
        )
        assert len(answer.answers) == 1
        term = next(iter(answer.answers))[0]
        got = [t.value for t in list_elements(term)]
        assert got == list(reversed(values))

    @given(values=st.lists(atoms, max_size=5))
    @SETTINGS
    def test_counting_agrees_with_magic(self, values):
        from repro import answer_query

        program = list_reverse_program()
        query = reverse_query(constant_list(values))
        answers = {}
        for method in ("magic", "counting"):
            result = answer_query(
                program, Database(), query, method=method, max_iterations=200
            )
            answers[method] = result.answers
        assert answers["magic"] == answers["counting"]


class TestLinExprProperties:
    @given(
        coeff=st.integers(min_value=1, max_value=9),
        offset=st.integers(min_value=0, max_value=9),
        value=st.integers(min_value=0, max_value=200),
    )
    @SETTINGS
    def test_solve_inverts_evaluation(self, coeff, offset, value):
        expr = LinExpr(Variable("K"), coeff, offset)
        evaluated = expr.substitute({Variable("K"): Constant(value)})
        assert isinstance(evaluated, Constant)
        assert expr.solve(evaluated.value) == value

    @given(
        a=st.integers(min_value=1, max_value=5),
        b=st.integers(min_value=0, max_value=5),
        c=st.integers(min_value=1, max_value=5),
        d=st.integers(min_value=0, max_value=5),
        value=st.integers(min_value=0, max_value=50),
    )
    @SETTINGS
    def test_composition_is_function_composition(self, a, b, c, d, value):
        x = Variable("X")
        outer = LinExpr(x, a, b)
        inner = LinExpr(x, c, d)
        composed = outer.apply_to(inner)
        direct = a * (c * value + d) + b
        evaluated = composed.substitute({x: Constant(value)})
        assert evaluated == Constant(direct)


class TestParserRoundTrip:
    @given(values=st.lists(st.integers(min_value=0, max_value=99), max_size=6))
    @SETTINGS
    def test_list_print_parse_round_trip(self, values):
        term = make_list([Constant(v) for v in values])
        assert parse_term(str(term)) == term

    @given(
        functor=st.sampled_from(["f", "g", "pair"]),
        args=st.lists(
            st.sampled_from(["a", "X", "42"]), min_size=1, max_size=3
        ),
    )
    @SETTINGS
    def test_struct_print_parse_round_trip(self, functor, args):
        parsed_args = tuple(parse_term(a) for a in args)
        from repro import Struct

        term = Struct(functor, parsed_args)
        assert parse_term(str(term)) == term
