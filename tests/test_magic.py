"""Generalized magic sets -- Section 4 and Appendix A.3 (experiment E2)."""

import pytest

from repro import (
    Literal,
    RewriteError,
    Variable,
    build_chain_sip,
    magic_rewrite,
    parse_program,
    parse_query,
    rewrite,
)
from repro.core.magic import magic_literal_for
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    integer_list,
    list_reverse_program,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    reverse_query,
    samegen_query,
)

from conftest import assert_rules_equal, canonical_rules


def gms(program, query, **kwargs):
    return rewrite(program, query, method="magic", **kwargs)


class TestAppendixA3:
    """The four GMS rewrites of Appendix A.3."""

    def test_ancestor(self):
        rewritten = gms(ancestor_program(), ancestor_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
                "anc^bf(A, B) :- magic_anc_bf(A), par(A, C), anc^bf(C, B).",
                "magic_anc_bf(A) :- magic_anc_bf(B), par(B, A).",
            ],
        )
        assert [str(s) for s in rewritten.seed_facts] == ["magic_anc_bf(john)"]

    def test_nonlinear_ancestor(self):
        rewritten = gms(nonlinear_ancestor_program(), ancestor_query("john"))
        # the tautological rule magic(X) :- magic(X) is deleted (A.3.2
        # marks it "can be deleted")
        assert_rules_equal(
            rewritten,
            [
                "anc^bf(A, B) :- magic_anc_bf(A), anc^bf(A, C), anc^bf(C, B).",
                "anc^bf(A, B) :- magic_anc_bf(A), par(A, B).",
                "magic_anc_bf(A) :- magic_anc_bf(B), anc^bf(B, A).",
            ],
        )

    def test_nested_samegen(self):
        rewritten = gms(
            nested_samegen_program(), nested_samegen_query("john")
        )
        assert_rules_equal(
            rewritten,
            [
                "magic_p_bf(A) :- magic_p_bf(B), sg^bf(B, A).",
                "magic_sg_bf(A) :- magic_p_bf(A).",
                "magic_sg_bf(A) :- magic_sg_bf(B), up(B, A).",
                "p^bf(A, B) :- magic_p_bf(A), b1(A, B).",
                "p^bf(A, B) :- magic_p_bf(A), sg^bf(A, C), p^bf(C, D), b2(D, B).",
                "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
                "sg^bf(A, B) :- magic_sg_bf(A), up(A, C), sg^bf(C, D), down(D, B).",
            ],
        )

    def test_list_reverse(self):
        rewritten = gms(
            list_reverse_program(), reverse_query(integer_list(2))
        )
        assert_rules_equal(
            rewritten,
            [
                "append^bbf(A, [B | C], [B | D]) :- "
                "magic_append_bbf(A, [B | C]), append^bbf(A, C, D).",
                "append^bbf(A, [], [A]) :- magic_append_bbf(A, []).",
                "magic_append_bbf(A, B) :- magic_append_bbf(A, [C | B]).",
                "magic_append_bbf(A, B) :- magic_reverse_bf([A | C]), "
                "reverse^bf(C, B).",
                "magic_reverse_bf(A) :- magic_reverse_bf([B | A]).",
                "reverse^bf([A | B], C) :- magic_reverse_bf([A | B]), "
                "reverse^bf(B, D), append^bbf(A, D, C).",
                "reverse^bf([], []) :- magic_reverse_bf([]).",
            ],
        )
        assert [str(s) for s in rewritten.seed_facts] == [
            "magic_reverse_bf([0, 1])"
        ]


class TestExample4:
    """Example 4: the nonlinear same-generation rewrite, both sips."""

    def test_full_sip(self):
        rewritten = gms(nonlinear_samegen_program(), samegen_query("john"))
        assert_rules_equal(
            rewritten,
            [
                "magic_sg_bf(A) :- magic_sg_bf(B), up(B, A).",
                "magic_sg_bf(A) :- magic_sg_bf(B), up(B, C), sg^bf(C, D), "
                "flat(D, A).",
                "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
                "sg^bf(A, B) :- magic_sg_bf(A), up(A, C), sg^bf(C, D), "
                "flat(D, E), sg^bf(E, F), down(F, B).",
            ],
        )

    def test_partial_sip(self):
        """The partial (no-memory) sip (V): the second magic rule starts
        from magic_sg(Z1) instead of re-joining from the head."""
        rewritten = gms(
            nonlinear_samegen_program(),
            samegen_query("john"),
            sip_builder=build_chain_sip,
        )
        assert_rules_equal(
            rewritten,
            [
                "magic_sg_bf(A) :- magic_sg_bf(B), sg^bf(B, C), flat(C, A).",
                "magic_sg_bf(A) :- magic_sg_bf(B), up(B, A).",
                "sg^bf(A, B) :- magic_sg_bf(A), flat(A, B).",
                "sg^bf(A, B) :- magic_sg_bf(A), up(A, C), sg^bf(C, D), "
                "flat(D, E), sg^bf(E, F), down(F, B).",
            ],
        )


class TestProposition42:
    """The redundant-magic-literal deletions."""

    def test_unoptimized_keeps_all_magic_literals(self):
        rewritten = gms(
            nonlinear_samegen_program(), samegen_query("john"), optimize=False
        )
        rules = canonical_rules(rewritten)
        # the unoptimized modified rule guards every derived occurrence
        assert (
            "sg^bf(A, B) :- magic_sg_bf(A), up(A, C), magic_sg_bf(C), "
            "sg^bf(C, D), flat(D, E), magic_sg_bf(E), sg^bf(E, F), "
            "down(F, B)." in rules
        )

    def test_optimized_subset_of_unoptimized_bodies(self):
        optimized = gms(nonlinear_samegen_program(), samegen_query("john"))
        unoptimized = gms(
            nonlinear_samegen_program(), samegen_query("john"), optimize=False
        )
        # same number of rules minus tautologies; each optimized body is
        # a subsequence of the corresponding unoptimized body
        assert len(optimized.rules) <= len(unoptimized.rules)


class TestMagicLiteral:
    def test_shape(self):
        lit = Literal("sg", (Variable("X"), Variable("Y")), "bf")
        magic = magic_literal_for(lit)
        assert magic.pred == "magic_sg_bf"
        assert magic.args == (Variable("X"),)

    def test_requires_adornment(self):
        with pytest.raises(RewriteError):
            magic_literal_for(Literal("sg", (Variable("X"),)))

    def test_rejects_all_free(self):
        with pytest.raises(RewriteError):
            magic_literal_for(Literal("sg", (Variable("X"),), "f"))


class TestAllFreeQuery:
    def test_no_seed(self):
        rewritten = gms(ancestor_program(), parse_query("?- anc(X, Y)."))
        assert rewritten.seed_facts == ()

    def test_empty_sip_degenerates_to_original(self):
        from repro import build_empty_sip

        rewritten = gms(
            ancestor_program(),
            parse_query("?- anc(X, Y)."),
            sip_builder=build_empty_sip,
        )
        assert rewritten.seed_facts == ()
        # nothing to restrict: the rewrite degenerates to the original
        assert_rules_equal(
            rewritten,
            [
                "anc^ff(A, B) :- par(A, B).",
                "anc^ff(A, B) :- par(A, C), anc^ff(C, B).",
            ],
        )

    def test_full_sip_still_correct_on_all_free_query(self):
        from repro import answer_query, bottom_up_answer
        from repro.workloads import chain_database

        program = ancestor_program()
        query = parse_query("?- anc(X, Y).")
        db = chain_database(6)
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method="magic")
        assert answer.answers == baseline.answers


class TestMultipleArcs:
    def test_label_rules_generated(self):
        """A custom sip with two arcs into one occurrence produces label
        rules joined by the magic rule (Section 4, multi-arc case)."""
        from repro.core.adornment import adorn_program as adorn
        from repro.core.sips import HEAD, Sip, SipArc, build_full_sip

        program = parse_program(
            """
            r(X, Y) :- e(X, Y).
            q(X, Y, Z) :- a(X, U), b(Y, V), r(W, Z), c(U, W), d(V, W).
            """
        ).program

        def two_arc_builder(rule, adornment, is_derived):
            if rule.head.pred != "q":
                return build_full_sip(rule, adornment, is_derived)
            U, V, W = Variable("U"), Variable("V"), Variable("W")
            X, Y = Variable("X"), Variable("Y")
            return Sip(
                rule,
                adornment,
                (
                    SipArc({HEAD}, 0, {X}),
                    SipArc({HEAD}, 1, {Y}),
                    SipArc({0, 3}, 2, {W}),
                    SipArc({1, 4}, 2, {W}),
                ),
            )

        adorned = adorn(
            program, parse_query("q(a, b, Z)?"), sip_builder=two_arc_builder
        )
        rewritten = magic_rewrite(adorned)
        label_rules = [
            rr for rr in rewritten.rules if rr.provenance.role == "label"
        ]
        assert len(label_rules) == 2
        magic_rules = [
            rr
            for rr in rewritten.rules
            if rr.provenance.role == "magic"
            and rr.rule.head.pred.startswith("magic_r")
        ]
        assert len(magic_rules) == 1
        assert len(magic_rules[0].rule.body) == 2  # joins the two labels
