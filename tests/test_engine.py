"""Unit tests for bottom-up evaluation (repro.datalog.engine)."""

import pytest

from repro import (
    Constant,
    Database,
    EvaluationError,
    Literal,
    NonTerminationError,
    Program,
    Rule,
    Variable,
    answer_tuples,
    evaluate,
    evaluate_naive,
    evaluate_seminaive,
    parse_program,
    parse_query,
)
from repro.workloads import chain_database, cycle_database


def ancestor():
    return parse_program(
        """
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        """
    ).program


def c(value):
    return Constant(value)


class TestNaive:
    def test_transitive_closure_on_chain(self):
        result = evaluate_naive(ancestor(), chain_database(4))
        # 4-edge chain: C(5,2) = 10 ancestor pairs
        assert len(result.derived_tuples("anc")) == 10

    def test_cycle_terminates_for_datalog(self):
        result = evaluate_naive(ancestor(), cycle_database(4))
        assert len(result.derived_tuples("anc")) == 16

    def test_stats_counted(self):
        result = evaluate_naive(ancestor(), chain_database(4))
        assert result.stats.facts_derived == 10
        assert result.stats.rule_firings >= 10
        assert result.stats.iterations >= 2
        assert result.stats.facts_by_predicate == {"anc": 10}

    def test_original_database_untouched(self):
        db = chain_database(3)
        evaluate_naive(ancestor(), db)
        assert "anc" not in db.predicate_keys()


class TestSemiNaive:
    def test_agrees_with_naive_on_chain(self):
        db = chain_database(6)
        naive = evaluate_naive(ancestor(), db)
        semi = evaluate_seminaive(ancestor(), db)
        assert naive.derived_tuples("anc") == semi.derived_tuples("anc")

    def test_agrees_with_naive_on_cycle(self):
        db = cycle_database(5)
        naive = evaluate_naive(ancestor(), db)
        semi = evaluate_seminaive(ancestor(), db)
        assert naive.derived_tuples("anc") == semi.derived_tuples("anc")

    def test_less_duplicate_work_than_naive(self):
        db = chain_database(12)
        naive = evaluate_naive(ancestor(), db)
        semi = evaluate_seminaive(ancestor(), db)
        assert semi.stats.rule_firings < naive.stats.rule_firings

    def test_nonlinear_rules(self):
        program = parse_program(
            """
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), anc(Z, Y).
            """
        ).program
        db = chain_database(6)
        semi = evaluate_seminaive(program, db)
        naive = evaluate_naive(program, db)
        assert semi.derived_tuples("anc") == naive.derived_tuples("anc")

    def test_mutually_recursive_predicates(self):
        program = parse_program(
            """
            even(X, Y) :- edge(X, Y).
            even(X, Y) :- odd(X, Z), edge(Z, Y).
            odd(X, Y) :- even(X, Z), edge(Z, Y).
            """
        ).program
        from repro.workloads import chain_edges, load_edges

        db = load_edges(chain_edges(5), relation="edge")
        semi = evaluate_seminaive(program, db)
        naive = evaluate_naive(program, db)
        assert semi.derived_tuples("even") == naive.derived_tuples("even")
        assert semi.derived_tuples("odd") == naive.derived_tuples("odd")


class TestBudgets:
    def infinite_program(self):
        # s(X) grows a list forever: s([a]) -> s([a,a]) -> ...
        return parse_program(
            """
            s(X) :- seed(X).
            s([a | X]) :- s(X).
            """
        ).program

    def seed_db(self):
        db = Database()
        db.add_fact(Literal("seed", (Constant("[]"),)))
        return db

    def test_max_iterations(self):
        with pytest.raises(NonTerminationError) as excinfo:
            evaluate_seminaive(
                self.infinite_program(), self.seed_db(), max_iterations=10
            )
        assert excinfo.value.iterations is not None

    def test_max_facts(self):
        with pytest.raises(NonTerminationError):
            evaluate_seminaive(
                self.infinite_program(), self.seed_db(), max_facts=20
            )

    def test_naive_budgets_too(self):
        with pytest.raises(NonTerminationError):
            evaluate_naive(
                self.infinite_program(), self.seed_db(), max_iterations=10
            )


class TestRangeRestriction:
    def test_non_ground_head_raises(self):
        program = Program([Rule(Literal("p", (Variable("X"),)))])
        with pytest.raises(EvaluationError):
            evaluate_naive(program, Database())


class TestAnswerExtraction:
    def test_answer_tuples_select_and_project(self):
        db = chain_database(4)
        result = evaluate_seminaive(ancestor(), db)
        query = parse_query("anc(n0, Y)?")
        answers = answer_tuples(result, query.literal)
        assert answers == {(c(f"n{i}"),) for i in range(1, 5)}

    def test_fully_bound_query(self):
        db = chain_database(4)
        result = evaluate_seminaive(ancestor(), db)
        query = parse_query("anc(n0, n3)?")
        assert answer_tuples(result, query.literal) == {()}
        missing = parse_query("anc(n3, n0)?")
        assert answer_tuples(result, missing.literal) == set()


class TestDispatch:
    def test_evaluate_dispatch(self):
        db = chain_database(3)
        assert evaluate(ancestor(), db, method="naive").derived_fact_count() == 6
        assert evaluate(ancestor(), db, method="seminaive").derived_fact_count() == 6
        with pytest.raises(ValueError):
            evaluate(ancestor(), db, method="bogus")
