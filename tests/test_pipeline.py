"""End-to-end pipeline tests: every method on every example program
(integration layer for experiments E6 and E10)."""

import pytest

from repro import Database, answer_query, bottom_up_answer
from repro.workloads import (
    ancestor_program,
    ancestor_query,
    chain_database,
    cycle_database,
    integer_list,
    list_reverse_program,
    nested_samegen_database,
    nested_samegen_program,
    nested_samegen_query,
    nonlinear_ancestor_program,
    nonlinear_samegen_program,
    random_dag_database,
    reverse_query,
    samegen_database,
    samegen_query,
    tree_database,
)

ALL_METHODS = (
    "magic",
    "supplementary_magic",
    "counting",
    "supplementary_counting",
    "qsq",
)
MAGIC_METHODS = ("magic", "supplementary_magic", "qsq")


class TestAncestor:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize(
        "db_maker,root",
        [
            (lambda: chain_database(12), "n0"),
            (lambda: tree_database(4), "r"),
            (lambda: random_dag_database(30, 0.12, seed=7), "n3"),
        ],
    )
    def test_matches_naive(self, method, db_maker, root):
        program = ancestor_program()
        query = ancestor_query(root)
        db = db_maker()
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method=method)
        assert answer.answers == baseline.answers

    @pytest.mark.parametrize("method", MAGIC_METHODS)
    def test_cyclic_data(self, method):
        program = ancestor_program()
        query = ancestor_query("n0")
        db = cycle_database(6)
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method=method)
        assert answer.answers == baseline.answers

    def test_unreachable_root_empty(self):
        program = ancestor_program()
        db = chain_database(5)
        answer = answer_query(program, db, ancestor_query("zzz"))
        assert answer.answers == set()

    def test_fully_bound_query(self):
        from repro import parse_query

        program = ancestor_program()
        db = chain_database(5)
        yes = answer_query(program, db, parse_query("anc(n0, n4)?"))
        no = answer_query(program, db, parse_query("anc(n4, n0)?"))
        assert yes.answers == {()}
        assert no.answers == set()


class TestNonlinearAncestor:
    @pytest.mark.parametrize("method", MAGIC_METHODS)
    def test_matches_naive(self, method):
        program = nonlinear_ancestor_program()
        query = ancestor_query("n0")
        db = random_dag_database(20, 0.15, seed=5)
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method=method)
        assert answer.answers == baseline.answers


class TestSameGeneration:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_nonlinear(self, method):
        program = nonlinear_samegen_program()
        query = samegen_query("L0_1")
        db = samegen_database(3, 5, flat_edges=8, seed=4)
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(
            program, db, query, method=method, max_iterations=800
        )
        assert answer.answers == baseline.answers

    @pytest.mark.parametrize("method", MAGIC_METHODS)
    def test_nested(self, method):
        program = nested_samegen_program()
        query = nested_samegen_query("L0_0")
        db = nested_samegen_database(3, 4)
        baseline = bottom_up_answer(program, db, query)
        answer = answer_query(program, db, query, method=method)
        assert answer.answers == baseline.answers


class TestListReverse:
    @pytest.mark.parametrize(
        "method",
        (
            "magic",
            "supplementary_magic",
            "counting",
            "supplementary_counting",
            "qsq",
        ),
    )
    @pytest.mark.parametrize("length", [0, 1, 5])
    def test_reverses(self, method, length):
        program = list_reverse_program()
        query = reverse_query(integer_list(length))
        answer = answer_query(
            program, Database(), query, method=method, max_iterations=300
        )
        assert len(answer.answers) == 1
        reversed_term = next(iter(answer.answers))[0]
        expected = "[" + ", ".join(
            str(i) for i in reversed(range(length))
        ) + "]"
        assert str(reversed_term) == expected


class TestFactCounts:
    def test_magic_restricts_computation(self):
        """The Section 1 claim: bottom-up computes the whole relation,
        magic only the reachable part."""
        program = ancestor_program()
        db = tree_database(5)  # 63 internal/leaf nodes
        query = ancestor_query("r.0.0")  # a grandchild of the root
        naive = bottom_up_answer(program, db, query, engine="naive")
        magic = answer_query(program, db, query, method="magic")
        assert magic.answers == naive.answers
        assert (
            magic.stats.facts_derived < naive.stats.facts_derived
        ), "magic must derive strictly fewer facts on a selective query"

    def test_magic_fact_overhead_is_modest(self):
        """Section 9's discussion: magic facts are a small fraction of
        the generated facts."""
        program = ancestor_program()
        db = chain_database(40)
        query = ancestor_query("n0")
        answer = answer_query(program, db, query, method="magic")
        breakdown = answer.rewritten.fact_breakdown(answer.evaluation)
        assert breakdown["magic"] <= breakdown["adorned"] + 1

    def test_values_helper(self):
        program = ancestor_program()
        db = chain_database(3)
        answer = answer_query(program, db, ancestor_query("n0"))
        assert answer.values() == {("n1",), ("n2",), ("n3",)}

    def test_stats_attached(self):
        program = ancestor_program()
        db = chain_database(3)
        answer = answer_query(program, db, ancestor_query("n0"))
        assert answer.stats is not None
        assert answer.rewritten is not None
        assert len(answer) == 3


class TestDispatch:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            answer_query(
                ancestor_program(),
                chain_database(2),
                ancestor_query("n0"),
                method="sorcery",
            )

    def test_naive_and_seminaive_baselines(self):
        program = ancestor_program()
        db = chain_database(6)
        query = ancestor_query("n0")
        naive = answer_query(program, db, query, method="naive")
        semi = answer_query(program, db, query, method="seminaive")
        assert naive.answers == semi.answers
