"""Stratification: stratum numbering, rule partition, rejections."""

import pytest

from repro import (
    Program,
    StratificationError,
    parse_program,
    stratify,
)
from repro.core.stratify import check_stratified, is_stratified
from repro.datalog.analysis import polarity_edges, stratify_rules

BOM = """
component(P, S) :- subpart(P, S).
component(P, S) :- subpart(P, M), component(M, S).
tainted(P) :- exception(P).
tainted(P) :- component(P, S), exception(S).
clean(P, S) :- component(P, S), not tainted(S).
blocked(P) :- component(P, S), not clean(P, S).
buildable(P) :- part(P), not blocked(P).
"""


def prog(text: str) -> Program:
    return parse_program(text).program


class TestPolarityEdges:
    def test_positive_program_has_no_negative_edges(self):
        program = prog("anc(X, Y) :- par(X, Y).\n"
                       "anc(X, Y) :- par(X, Z), anc(Z, Y).")
        assert all(not neg for _, _, neg in polarity_edges(program))

    def test_polarity_distinguishes_dual_occurrences(self):
        # p depends on q both positively and negatively
        program = prog("p(X) :- q(X), e(X).\np(X) :- e(X), not q(X).")
        edges = set(polarity_edges(program))
        assert ("p", "q", True) in edges
        assert ("p", "q", False) in edges


class TestStratumNumbers:
    def test_positive_program_is_single_stratum(self):
        program = prog("anc(X, Y) :- par(X, Y).\n"
                       "anc(X, Y) :- par(X, Z), anc(Z, Y).")
        strat = stratify(program)
        assert len(strat) == 1
        assert strat.rule_strata == ((0, 1),)
        assert strat.stratum_of("anc") == 0
        assert strat.stratum_of("par") == 0  # base

    def test_bom_strata(self):
        strat = stratify(prog(BOM))
        assert len(strat) == 4
        assert strat.stratum_of("component") == 0
        assert strat.stratum_of("tainted") == 0
        assert strat.stratum_of("clean") == 1
        assert strat.stratum_of("blocked") == 2
        assert strat.stratum_of("buildable") == 3

    def test_rule_order_preserved_within_stratum(self):
        strat = stratify(prog(BOM))
        assert strat.rule_strata[0] == (0, 1, 2, 3)
        assert strat.rule_strata[1:] == ((4,), (5,), (6,))

    def test_stratum_programs_partition_the_rules(self):
        program = prog(BOM)
        parts = stratify(program).stratum_programs()
        recombined = [r for part in parts for r in part.rules]
        assert sorted(map(str, recombined)) == sorted(
            map(str, program.rules)
        )

    def test_negative_dependency_on_base_predicate(self):
        program = prog("alive(X) :- node(X), not dead(X).")
        strat = stratify(program)
        # dead is base: stratum 0; one negation lifts alive to 1
        assert strat.stratum_of("dead") == 0
        assert strat.stratum_of("alive") == 1

    def test_positive_chain_shares_stratum_number(self):
        program = prog("a(X) :- e(X).\nb(X) :- a(X).")
        strat = stratify(program)
        assert strat.stratum_of("a") == 0
        assert strat.stratum_of("b") == 0
        assert len(strat) == 1

    def test_negative_edges_reported(self):
        strat = stratify(prog(BOM))
        assert ("clean", "tainted") in strat.negative_edges()
        assert ("buildable", "blocked") in strat.negative_edges()

    def test_str_rendering_names_strata(self):
        text = str(stratify(prog(BOM)))
        assert "stratum 0" in text and "component" in text
        assert "stratum 3" in text and "buildable" in text


class TestRejection:
    def test_self_negation_rejected(self):
        with pytest.raises(StratificationError) as exc:
            stratify(prog("p(X) :- e(X), not p(X)."))
        assert "not stratified" in str(exc.value)
        assert "p" in exc.value.cycle

    def test_win_move_rejected_with_cycle(self):
        with pytest.raises(StratificationError) as exc:
            stratify(prog("win(X) :- move(X, Y), not win(Y)."))
        message = str(exc.value)
        assert "win" in message
        assert "'not'" in message
        assert exc.value.cycle == ("win",)

    def test_mutual_recursion_through_negation_rejected(self):
        with pytest.raises(StratificationError) as exc:
            stratify(
                prog("p(X) :- e(X), not q(X).\nq(X) :- e(X), p(X).")
            )
        assert set(exc.value.cycle) == {"p", "q"}

    def test_negation_between_independent_predicates_allowed(self):
        program = prog("p(X) :- e(X), not q(X).\nq(X) :- f(X).")
        assert is_stratified(program)
        check_stratified(program)  # should not raise

    def test_is_stratified_false_on_cycle(self):
        assert not is_stratified(
            prog("win(X) :- move(X, Y), not win(Y).")
        )


class TestLowLevelApi:
    def test_stratify_rules_returns_predicate_map_and_partition(self):
        predicate_stratum, rule_strata = stratify_rules(prog(BOM))
        assert predicate_stratum["buildable"] == 3
        assert [len(group) for group in rule_strata] == [4, 1, 1, 1]
