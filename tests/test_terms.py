"""Unit tests for the term language (repro.datalog.terms)."""

import pytest

from repro import Constant, LinExpr, Struct, Variable, make_list, list_elements
from repro.datalog.terms import (
    EMPTY_LIST,
    fresh_variable_factory,
    ground_term_length,
    is_list_term,
    term_is_ground,
    term_variables,
)


class TestVariable:
    def test_identity_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert hash(Variable("X")) == hash(Variable("X"))

    def test_not_ground(self):
        assert not Variable("X").is_ground()

    def test_variables(self):
        var = Variable("X")
        assert var.variables() == (var,)

    def test_substitute(self):
        var = Variable("X")
        assert var.substitute({var: Constant(1)}) == Constant(1)
        assert var.substitute({}) is var

    def test_anonymous(self):
        assert Variable("_").is_anonymous()
        assert Variable("_sj0").is_anonymous()
        assert not Variable("X").is_anonymous()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Variable("X").name = "Y"


class TestConstant:
    def test_equality_by_value_and_type(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("1") != Constant(1)
        assert Constant("a") == Constant("a")

    def test_ground(self):
        assert Constant("a").is_ground()
        assert Constant("a").variables() == ()

    def test_substitute_is_identity(self):
        c = Constant("a")
        assert c.substitute({Variable("X"): Constant(1)}) is c

    def test_str(self):
        assert str(Constant("john")) == "john"
        assert str(Constant(42)) == "42"


class TestStruct:
    def test_construction(self):
        t = Struct("f", (Constant(1), Variable("X")))
        assert t.functor == "f"
        assert t.arity == 2

    def test_requires_args(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Struct("f", (1,))

    def test_variables_order_and_dedup(self):
        x, y = Variable("X"), Variable("Y")
        t = Struct("f", (y, Struct("g", (x, y))))
        assert t.variables() == (y, x)

    def test_groundness(self):
        assert Struct("f", (Constant(1),)).is_ground()
        assert not Struct("f", (Variable("X"),)).is_ground()

    def test_substitute(self):
        x = Variable("X")
        t = Struct("f", (x, Constant(1)))
        assert t.substitute({x: Constant(2)}) == Struct(
            "f", (Constant(2), Constant(1))
        )

    def test_substitute_ground_shortcut(self):
        t = Struct("f", (Constant(1),))
        assert t.substitute({Variable("X"): Constant(2)}) is t

    def test_nested_equality(self):
        t1 = Struct("f", (Struct("g", (Constant(1),)),))
        t2 = Struct("f", (Struct("g", (Constant(1),)),))
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_str(self):
        t = Struct("f", (Constant("a"), Variable("X")))
        assert str(t) == "f(a, X)"


class TestLists:
    def test_empty_list(self):
        assert EMPTY_LIST.is_ground()
        assert str(EMPTY_LIST) == "[]"

    def test_make_and_unmake(self):
        items = [Constant(i) for i in range(3)]
        lst = make_list(items)
        assert is_list_term(lst)
        assert list_elements(lst) == tuple(items)

    def test_partial_list(self):
        tail = Variable("T")
        lst = make_list([Constant(1)], tail)
        assert not is_list_term(lst)
        with pytest.raises(ValueError):
            list_elements(lst)

    def test_list_str(self):
        lst = make_list([Constant(1), Constant(2)])
        assert str(lst) == "[1, 2]"
        open_list = make_list([Constant(1)], Variable("T"))
        assert str(open_list) == "[1 | T]"


class TestLinExpr:
    def test_construction_constraints(self):
        with pytest.raises(ValueError):
            LinExpr(Variable("X"), 0, 1)
        with pytest.raises(TypeError):
            LinExpr(Constant(1), 1, 1)

    def test_solve(self):
        expr = LinExpr(Variable("K"), 2, 2)  # 2K + 2
        assert expr.solve(6) == 2
        assert expr.solve(5) is None

    def test_solve_rejects_negative_levels(self):
        # counting indices live in the naturals: a negative solution
        # denotes a level "before the seed" and is rejected
        expr = LinExpr(Variable("K"), 3, 1)
        assert expr.solve(1) == 0
        assert expr.solve(-2) is None

    def test_substitute_with_constant(self):
        x = Variable("X")
        expr = LinExpr(x, 2, 1)
        assert expr.substitute({x: Constant(3)}) == Constant(7)

    def test_substitute_with_variable(self):
        x, y = Variable("X"), Variable("Y")
        expr = LinExpr(x, 2, 1)
        assert expr.substitute({x: y}) == LinExpr(y, 2, 1)

    def test_compose_with_linexpr(self):
        x, y = Variable("X"), Variable("Y")
        outer = LinExpr(x, 2, 1)
        assert outer.apply_to(LinExpr(y, 3, 4)) == LinExpr(y, 6, 9)

    def test_str(self):
        assert str(LinExpr(Variable("I"), 1, 1)) == "I+1"
        assert str(LinExpr(Variable("K"), 2, 2)) == "2*K+2"

    def test_non_integer_binding_raises(self):
        x = Variable("X")
        with pytest.raises(TypeError):
            LinExpr(x, 2, 1).substitute({x: Constant("a")})


class TestHelpers:
    def test_term_variables(self):
        x, y = Variable("X"), Variable("Y")
        assert term_variables([x, Struct("f", (y, x))]) == (x, y)

    def test_term_is_ground(self):
        assert term_is_ground([Constant(1), EMPTY_LIST])
        assert not term_is_ground([Constant(1), Variable("X")])

    def test_ground_term_length(self):
        # |c| = 1; |f(t1..tn)| = 1 + sum
        assert ground_term_length(Constant(1)) == 1
        nested = Struct("f", (Constant(1), Struct("g", (Constant(2),))))
        assert ground_term_length(nested) == 4

    def test_ground_term_length_rejects_variables(self):
        with pytest.raises(ValueError):
            ground_term_length(Variable("X"))

    def test_fresh_variable_factory(self):
        gen = fresh_variable_factory("T")
        assert next(gen) == Variable("T0")
        assert next(gen) == Variable("T1")
