"""The asyncio query server: ``repro serve`` and ``ServerHandle``.

:class:`ReproServer` wires the pieces together: one writer
:class:`~repro.session.Session` owning the live database, a
:class:`~repro.server.snapshot.SnapshotManager` publishing frozen
versions, a :class:`~repro.server.scheduler.QueryScheduler` running
reads in a thread pool with memoization and coalescing, and a
:class:`~repro.server.scheduler.MutationScheduler` serializing writes.
The TCP front end speaks the line-oriented JSON protocol of
:mod:`repro.server.protocol`; :class:`ServerHandle` runs the same
server on a background thread for tests and embedding, exposing a
blocking ``request()``.

Shutdown is a graceful drain: new requests are refused with a
``shutting_down`` error while in-flight ones run to completion (up to
``config.drain_timeout`` seconds), then the listeners close and the
worker pools join.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..datalog.database import Database
from ..datalog.planner import PlanCache
from ..session import Session
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from .scheduler import MutationScheduler, QueryScheduler, _to_protocol_error
from .snapshot import SnapshotManager

__all__ = ["ServerConfig", "ServerMetrics", "ReproServer", "ServerHandle"]


@dataclass
class ServerConfig:
    """Tunables of one server instance.

    ``max_timeout`` / ``max_facts`` cap what clients may request per
    query (a client asking for more is clamped, not refused; a client
    asking for nothing gets ``default_timeout`` / ``default_max_facts``
    or, failing those, the cap itself) -- the server, not the client,
    bounds how much work one request can buy.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick (the bound port is reported)
    reader_threads: int = 4
    #: pool workers per bottom-up evaluation (1 = serial; >1 runs each
    #: cold query's fixpoint on the sharded worker pool)
    workers: int = 1
    memo_size: int = 256
    max_timeout: Optional[float] = None
    max_facts: Optional[int] = None
    default_timeout: Optional[float] = None
    default_max_facts: Optional[int] = None
    drain_timeout: float = 5.0


@dataclass
class ServerMetrics:
    """Loop-confined counters behind the ``stats`` op."""

    started_at: float = field(default_factory=time.monotonic)
    queries: int = 0
    mutations: int = 0
    errors: int = 0
    latencies: List[float] = field(default_factory=list)
    _latency_cap: int = 4096

    def observe(self, seconds: float) -> None:
        self.latencies.append(seconds)
        if len(self.latencies) > self._latency_cap:
            # keep the newest half; cheap and good enough for p50/p95
            del self.latencies[: len(self.latencies) // 2]

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(
            len(sorted_values) - 1, int(q * (len(sorted_values) - 1))
        )
        return sorted_values[index]

    def summary(self) -> Dict[str, Any]:
        elapsed = max(time.monotonic() - self.started_at, 1e-9)
        ordered = sorted(self.latencies)
        return {
            "uptime": elapsed,
            "queries": self.queries,
            "mutations": self.mutations,
            "errors": self.errors,
            "qps": self.queries / elapsed,
            "latency_p50": self._percentile(ordered, 0.50),
            "latency_p95": self._percentile(ordered, 0.95),
        }


class ReproServer:
    """A concurrent query server over one program and one database."""

    def __init__(
        self,
        source: Optional[str] = None,
        *,
        program=None,
        database: Optional[Database] = None,
        config: Optional[ServerConfig] = None,
        plan_cache: Optional[PlanCache] = None,
        materialize: Optional[List[str]] = None,
    ):
        self.config = config or ServerConfig()
        # the writer session owns the live database; readers never see
        # it -- they see published snapshots
        self.session = Session(
            source, program=program, database=database,
            plan_cache=plan_cache,
        )
        if materialize:
            for target in materialize:
                self.session.materialize(target)
        self.snapshots = SnapshotManager(self.session.database)
        self.snapshots.publish(self.session.materialized_relations())
        self.queries = QueryScheduler(
            self.session.program,
            self.snapshots,
            reader_threads=self.config.reader_threads,
            workers=self.config.workers,
            memo_size=self.config.memo_size,
            max_timeout=self.config.max_timeout,
            max_facts=self.config.max_facts,
            default_timeout=self.config.default_timeout,
            default_max_facts=self.config.default_max_facts,
            plan_cache=self.session.plan_cache,
        )
        self.mutations = MutationScheduler(self.session, self.snapshots)
        self.metrics = ServerMetrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._active = 0
        self._idle: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # request handling (transport-independent)
    # ------------------------------------------------------------------
    async def handle_request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one decoded request object; never raises."""
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            request = validate_request(obj)
        except ProtocolError as exc:
            self.metrics.errors += 1
            return error_response(request_id, exc)
        op = request["op"]
        if self._draining and op != "stats":
            self.metrics.errors += 1
            return error_response(
                request_id,
                ProtocolError("shutting_down", "server is draining"),
            )
        self._active += 1
        started = time.perf_counter()
        try:
            payload = await self._dispatch(request)
        except ProtocolError as exc:
            self.metrics.errors += 1
            return error_response(request_id, exc)
        except Exception as exc:  # belt and braces: keep serving
            self.metrics.errors += 1
            return error_response(request_id, _to_protocol_error(exc))
        finally:
            self._active -= 1
            if self._active == 0 and self._idle is not None:
                self._idle.set()
        if op == "query":
            self.metrics.queries += 1
            self.metrics.observe(time.perf_counter() - started)
        elif op in ("assert", "retract"):
            self.metrics.mutations += 1
        return ok_response(request_id, payload)

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        if op == "query":
            return await self.queries.execute(
                request["query"], request["options"]
            )
        if op in ("assert", "retract"):
            return await self.mutations.apply(op, request["facts"])
        if op == "stats":
            return {"stats": self.stats()}
        if op == "ping":
            return {"pong": True, "version": self.snapshots.current_version}
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.stop())
            return {"stopping": True}
        raise ProtocolError("bad_request", f"unhandled op {op!r}")

    def stats(self) -> Dict[str, Any]:
        out = self.metrics.summary()
        out.update(
            protocol=PROTOCOL_VERSION,
            version=self.snapshots.current_version,
            snapshots_live=self.snapshots.live_count,
            snapshots_published=self.snapshots.published,
            cold_evaluations=self.queries.cold_evaluations,
            memo_hits=self.queries.memo_hits,
            coalesced=self.queries.coalesced,
            view_serves=self.queries.view_serves,
            mutations_applied=self.mutations.mutations,
            mutations_rolled_back=self.mutations.rolled_back,
            draining=self._draining,
        )
        return out

    # ------------------------------------------------------------------
    # TCP front end
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    obj = decode_line(stripped)
                except ProtocolError as exc:
                    response = error_response(None, exc)
                else:
                    response = await self.handle_request(obj)
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish in-flight, close."""
        if self._draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._draining = True
        if self._idle is not None:
            if self._active > 0:
                self._idle.clear()
            try:
                await asyncio.wait_for(
                    self._idle.wait(), self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                pass  # drain deadline: close anyway
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queries.shutdown()
        self.mutations.shutdown()
        self.session.close()
        if self._stopped is not None:
            self._stopped.set()

    async def run_forever(self) -> Tuple[str, int]:
        host, port = await self.start()
        assert self._stopped is not None
        await self._stopped.wait()
        return host, port


class ServerHandle:
    """A server running on a background thread, for tests and embedding.

    ``request()`` is blocking and thread-safe: it submits the request
    coroutine onto the server's event loop and waits for the response.
    Use as a context manager for deterministic teardown.
    """

    def __init__(self, server: ReproServer):
        self.server = server
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._listen = True

    @classmethod
    def start(
        cls,
        source: Optional[str] = None,
        *,
        program=None,
        database: Optional[Database] = None,
        config: Optional[ServerConfig] = None,
        materialize: Optional[List[str]] = None,
        listen: bool = True,
    ) -> "ServerHandle":
        server = ReproServer(
            source,
            program=program,
            database=database,
            config=config,
            materialize=materialize,
        )
        handle = cls(server)
        handle._listen = listen
        handle._thread = threading.Thread(
            target=handle._run, name="repro-serve", daemon=True
        )
        handle._thread.start()
        handle._ready.wait()
        if handle._startup_error is not None:
            raise handle._startup_error
        return handle

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            if self._listen:
                self.address = loop.run_until_complete(self.server.start())
            else:
                loop.run_until_complete(self._start_headless())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            assert self.server._stopped is not None
            loop.run_until_complete(self.server._stopped.wait())
        finally:
            loop.close()

    async def _start_headless(self) -> None:
        # in-process only: requests through request(), no TCP listener
        self.server._idle = asyncio.Event()
        self.server._idle.set()
        self.server._stopped = asyncio.Event()

    def request(self, obj: Dict[str, Any], timeout: float = 60.0) -> Dict:
        if self._loop is None:
            raise RuntimeError("server is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.server.handle_request(obj), self._loop
        )
        return future.result(timeout)

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        return response["stats"]

    def close(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        try:
            future.result(timeout)
        except Exception:
            pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
