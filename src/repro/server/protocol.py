"""The wire protocol of ``repro serve``: line-oriented JSON.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
A request is an object with an ``op`` and an optional client-chosen
``id`` (echoed back verbatim, so clients may pipeline)::

    {"id": 1, "op": "query", "query": "anc(john, X)?",
     "options": {"method": "auto", "timeout": 2.0}}
    {"id": 2, "op": "assert", "facts": ["edge(a, b)."]}
    {"id": 3, "op": "stats"}

A response is either ``{"id": ..., "ok": true, ...payload}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...,
"exit_code": ...}}``.  Error codes mirror the CLI's exit codes
(:data:`ERROR_EXIT_CODES`), so a thin shell client can exit with the
server's verdict unchanged: a tripped per-request budget is ``4`` on
the wire exactly as ``repro query --timeout`` is ``4`` in the shell.

This module is deliberately transport-free -- pure bytes <-> dict
codecs plus request validation -- so the asyncio app, the in-process
``ServerHandle``, and the blocking client all share one source of
truth for message shapes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_EXIT_CODES",
    "QUERY_OPTION_FIELDS",
    "ProtocolError",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "validate_request",
    "normalize_options",
]

PROTOCOL_VERSION = 1

#: error code -> the exit code a CLI front end should surface.  The
#: mapping intentionally matches ``repro.cli.main``: 2 is argparse-style
#: usage/parse trouble, 1 a clean evaluation error, 4 a tripped budget,
#: 5 a server draining, 70 (EX_SOFTWARE) an internal fault.
ERROR_EXIT_CODES: Dict[str, int] = {
    "bad_request": 2,
    "parse_error": 2,
    "evaluation_error": 1,
    "budget_exceeded": 4,
    "shutting_down": 5,
    "internal_error": 70,
}

#: client-settable query options; anything else in ``options`` is a
#: ``bad_request`` (catching typos like ``max_fact`` loudly instead of
#: silently running unbudgeted)
QUERY_OPTION_FIELDS = ("method", "engine", "timeout", "max_facts")

_OPS = ("query", "assert", "retract", "stats", "ping", "shutdown")


class ProtocolError(Exception):
    """A structured request-level failure.

    Carries the wire ``code`` (a key of :data:`ERROR_EXIT_CODES`) and
    an optional ``detail`` object serialized alongside the message.
    """

    def __init__(self, code: str, message: str, detail: Optional[dict] = None):
        if code not in ERROR_EXIT_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail

    @property
    def exit_code(self) -> int:
        return ERROR_EXIT_CODES[self.code]


def encode_message(obj: Dict[str, Any]) -> bytes:
    """One message as one compact, newline-terminated JSON line."""
    return (
        json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message object."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("parse_error", f"malformed JSON line: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad_request", "a request must be a JSON object"
        )
    return obj


def ok_response(request_id: Any, payload: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(payload)
    out["id"] = request_id
    out["ok"] = True
    return out


def error_response(request_id: Any, exc: ProtocolError) -> Dict[str, Any]:
    error: Dict[str, Any] = {
        "code": exc.code,
        "message": exc.message,
        "exit_code": exc.exit_code,
    }
    if exc.detail:
        error["detail"] = exc.detail
    return {"id": request_id, "ok": False, "error": error}


def normalize_options(options: Optional[dict]) -> Dict[str, Any]:
    """Validate and normalize a request's ``options`` object.

    Returns a plain dict restricted to :data:`QUERY_OPTION_FIELDS`,
    with types checked; server-side caps are applied later by the
    scheduler (the protocol layer does not know the server config).
    """
    if options is None:
        return {}
    if not isinstance(options, dict):
        raise ProtocolError("bad_request", "options must be an object")
    unknown = sorted(set(options) - set(QUERY_OPTION_FIELDS))
    if unknown:
        raise ProtocolError(
            "bad_request",
            f"unknown query option(s) {unknown}; supported: "
            f"{list(QUERY_OPTION_FIELDS)}",
        )
    out: Dict[str, Any] = {}
    method = options.get("method")
    if method is not None:
        if not isinstance(method, str):
            raise ProtocolError("bad_request", "method must be a string")
        out["method"] = method
    engine = options.get("engine")
    if engine is not None:
        if engine not in ("naive", "seminaive"):
            raise ProtocolError(
                "bad_request", "engine must be 'naive' or 'seminaive'"
            )
        out["engine"] = engine
    timeout = options.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or isinstance(
            timeout, bool
        ) or timeout <= 0:
            raise ProtocolError(
                "bad_request", "timeout must be a positive number"
            )
        out["timeout"] = float(timeout)
    max_facts = options.get("max_facts")
    if max_facts is not None:
        if not isinstance(max_facts, int) or isinstance(
            max_facts, bool
        ) or max_facts <= 0:
            raise ProtocolError(
                "bad_request", "max_facts must be a positive integer"
            )
        out["max_facts"] = max_facts
    return out


def _require_facts(obj: dict) -> List[str]:
    facts = obj.get("facts")
    if (
        not isinstance(facts, list)
        or not facts
        or not all(isinstance(f, str) for f in facts)
    ):
        raise ProtocolError(
            "bad_request",
            "facts must be a non-empty list of fact strings "
            '(e.g. ["edge(a, b)."])',
        )
    return facts


def validate_request(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Check shape and normalize one decoded request object.

    Returns ``{"id", "op", ...op-specific fields}``; raises
    :class:`ProtocolError` (``bad_request``) on anything malformed.
    """
    op = obj.get("op")
    if op not in _OPS:
        raise ProtocolError(
            "bad_request", f"unknown op {op!r}; expected one of {_OPS}"
        )
    out: Dict[str, Any] = {"id": obj.get("id"), "op": op}
    if op == "query":
        query = obj.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ProtocolError(
                "bad_request", "query must be a non-empty string"
            )
        out["query"] = query
        out["options"] = normalize_options(obj.get("options"))
    elif op in ("assert", "retract"):
        out["facts"] = _require_facts(obj)
    return out


def sorted_rows(rows: Iterable[Tuple[object, ...]]) -> List[List[object]]:
    """Answer rows as deterministically ordered JSON-ready lists."""
    return sorted(
        ([_jsonable(v) for v in row] for row in rows),
        key=lambda row: [str(v) for v in row],
    )


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
