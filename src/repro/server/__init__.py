"""``repro.server``: a concurrent query server over MVCC snapshots.

Readers evaluate against frozen :class:`Snapshot` versions (relation-
level copy-on-write off the columnar storage) while a single writer
produces the next version; identical in-flight cold queries coalesce
into one evaluation; every request runs under a server-capped
:class:`~repro.core.limits.EvaluationBudget`.  See
:class:`ReproServer` (asyncio), :class:`ServerHandle` (background
thread, for tests and embedding), and :class:`ReproClient` (blocking
TCP).  The CLI front end is ``repro serve``.
"""

from .app import ReproServer, ServerConfig, ServerHandle, ServerMetrics
from .client import ReproClient, ServerError
from .protocol import ERROR_EXIT_CODES, PROTOCOL_VERSION, ProtocolError
from .scheduler import MutationScheduler, QueryScheduler
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "ReproServer",
    "ServerConfig",
    "ServerHandle",
    "ServerMetrics",
    "ReproClient",
    "ServerError",
    "ProtocolError",
    "ERROR_EXIT_CODES",
    "PROTOCOL_VERSION",
    "MutationScheduler",
    "QueryScheduler",
    "Snapshot",
    "SnapshotManager",
]
