"""Read and write scheduling for the query server.

Two schedulers share one :class:`~repro.server.snapshot.SnapshotManager`:

:class:`QueryScheduler`
    Runs reads in a worker-thread pool, each against the snapshot that
    was current when the request arrived.  All bookkeeping -- the
    answer memo keyed ``(query, options, version)`` and the in-flight
    table that coalesces identical cold queries into one evaluation --
    lives on the asyncio event loop, so it needs no locks: only the
    evaluation itself leaves the loop.

:class:`MutationScheduler`
    Serializes every mutation through one writer: an ``asyncio.Lock``
    in front of a single-thread executor.  A batch applies atomically
    -- mutations are captured in a ``Database`` mutation log, and any
    failure mid-batch replays the log's inverse before re-raising, so
    the live database returns to its pre-batch state and, because a
    new snapshot is published only after a *successful* batch, no
    reader ever observes a partially applied mutation.  A committed
    batch runs incremental view maintenance (via ``Session.batch``)
    and publishes the next version with frozen copies of whatever
    views came out fresh.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.limits import BudgetExceeded, EvaluationCancelled
from ..datalog.ast import Query
from ..datalog.database import Database, FactTuple
from ..datalog.errors import ParseError, ReproError
from ..datalog.parser import parse_query
from ..datalog.planner import PlanCache
from ..datalog.unify import match_sequences
from ..core.pipeline import unwrap_values
from ..session import SESSION_METHODS, Session
from .protocol import ProtocolError, sorted_rows
from .snapshot import Snapshot, SnapshotManager

__all__ = ["QueryScheduler", "MutationScheduler"]


def _to_protocol_error(exc: BaseException) -> ProtocolError:
    """Map an evaluation-layer exception onto a wire error."""
    if isinstance(exc, ProtocolError):
        return exc
    if isinstance(exc, BudgetExceeded):
        return ProtocolError(
            "budget_exceeded",
            str(exc),
            detail={
                "limit": exc.limit,
                "facts": exc.facts,
                "stratum": exc.stratum,
                "round": exc.round,
                "elapsed": exc.elapsed,
                "method": exc.method,
            },
        )
    if isinstance(exc, EvaluationCancelled):
        return ProtocolError("budget_exceeded", str(exc))
    if isinstance(exc, ParseError):
        return ProtocolError("parse_error", str(exc))
    if isinstance(exc, (ReproError, ValueError)):
        return ProtocolError("evaluation_error", str(exc))
    return ProtocolError(
        "internal_error", f"{type(exc).__name__}: {exc}"
    )


def _select_from_relation(
    relation, query: Query
) -> Set[FactTuple]:
    """Selection/projection of a query literal over one frozen relation
    (same answer shape as the evaluation paths)."""
    literal = query.literal
    free_positions = [
        i for i, arg in enumerate(literal.args) if not arg.is_ground()
    ]
    answers: Set[FactTuple] = set()
    for row in relation:
        if len(row) != len(literal.args):
            continue
        if match_sequences(literal.args, row) is None:
            continue
        answers.add(tuple(row[i] for i in free_positions))
    return answers


class QueryScheduler:
    """Executes reads against pinned snapshots, with memo + coalescing.

    Must be used from a single asyncio event loop (the server's); the
    memo and in-flight tables are loop-confined by construction.
    """

    def __init__(
        self,
        program,
        snapshots: SnapshotManager,
        *,
        reader_threads: int = 4,
        workers: int = 1,
        memo_size: int = 256,
        max_timeout: Optional[float] = None,
        max_facts: Optional[int] = None,
        default_timeout: Optional[float] = None,
        default_max_facts: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
    ):
        self._program = program
        self._snapshots = snapshots
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, reader_threads),
            thread_name_prefix="repro-reader",
        )
        self._workers = max(1, workers)
        self._memo_size = memo_size
        self._memo: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        self._inflight: Dict[tuple, "asyncio.Future"] = {}
        self._max_timeout = max_timeout
        self._max_facts = max_facts
        self._default_timeout = default_timeout
        self._default_max_facts = default_max_facts
        self._plan_cache = plan_cache
        # counters (loop-confined, read by /stats)
        self.cold_evaluations = 0
        self.memo_hits = 0
        self.coalesced = 0
        self.view_serves = 0

    def _capped_budget_options(
        self, options: Dict[str, Any]
    ) -> Tuple[Optional[float], Optional[int]]:
        """Client budget options clamped to the server's caps."""
        timeout = options.get("timeout", self._default_timeout)
        if self._max_timeout is not None:
            timeout = (
                self._max_timeout
                if timeout is None
                else min(timeout, self._max_timeout)
            )
        max_facts = options.get("max_facts", self._default_max_facts)
        if self._max_facts is not None:
            max_facts = (
                self._max_facts
                if max_facts is None
                else min(max_facts, self._max_facts)
            )
        return timeout, max_facts

    async def execute(
        self, query_text: str, options: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Answer one query request; returns the response payload."""
        method = options.get("method", "auto")
        if method not in SESSION_METHODS:
            raise ProtocolError(
                "bad_request",
                f"unknown method {method!r}; expected one of "
                f"{SESSION_METHODS}",
            )
        loop = asyncio.get_running_loop()
        snapshot = self._snapshots.current()
        key = (
            query_text.strip(),
            method,
            options.get("engine", "seminaive"),
            snapshot.version,
        )
        cached = self._memo.get(key)
        if cached is not None:
            snapshot.release()
            self._memo.move_to_end(key)
            self.memo_hits += 1
            return dict(cached, served="memo")
        pending = self._inflight.get(key)
        if pending is not None:
            snapshot.release()
            self.coalesced += 1
            payload = await asyncio.shield(pending)
            return dict(payload, served="coalesced")
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        timeout, max_facts = self._capped_budget_options(options)
        try:
            payload = await loop.run_in_executor(
                self._pool,
                self._evaluate,
                query_text,
                method,
                options,
                timeout,
                max_facts,
                snapshot,
            )
        except BaseException as exc:
            # waiters coalesced onto this evaluation share its failure
            error = _to_protocol_error(exc)
            if not future.cancelled():
                future.set_exception(error)
                # consumed by every coalesced waiter via `await shield`;
                # retrieve here too so lone failures do not warn
                future.exception()
            raise error
        else:
            if payload.get("served") == "view":
                self.view_serves += 1
            else:
                self.cold_evaluations += 1
            self._memo[key] = payload
            while len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)
            if not future.cancelled():
                future.set_result(payload)
            return dict(payload)
        finally:
            self._inflight.pop(key, None)
            snapshot.release()

    def _evaluate(
        self,
        query_text: str,
        method: str,
        options: Dict[str, Any],
        timeout: Optional[float],
        max_facts: Optional[int],
        snapshot: Snapshot,
    ) -> Dict[str, Any]:
        """Worker-thread body: parse, then view-serve or evaluate cold."""
        started = time.perf_counter()
        query = parse_query(query_text)
        base: Dict[str, Any] = {
            "version": snapshot.version,
            "query": query_text.strip(),
        }
        # a maintained view frozen into this snapshot answers by pure
        # selection -- no evaluation, no database copy
        view_rel = snapshot.views.get(query.literal.pred_key)
        if view_rel is not None and method in ("auto", "materialized"):
            rows = _select_from_relation(view_rel, query)
            base.update(
                served="view",
                method="materialized",
                rows=sorted_rows(unwrap_values(rows)),
                row_count=len(rows),
                elapsed=time.perf_counter() - started,
            )
            return base
        if method == "materialized":
            raise ProtocolError(
                "bad_request",
                f"no maintained view covers {query.literal.pred_key!r} "
                "in the current snapshot",
            )
        session = Session(
            program=self._program,
            database=snapshot.db,
            plan_cache=self._plan_cache,
            memo_size=1,  # the server memo caches; per-request sessions
        )
        result = session.query(
            query,
            method=method,
            engine=options.get("engine", "seminaive"),
            workers=self._workers,
            timeout=timeout,
            max_facts=max_facts,
        )
        base.update(
            served="cold",
            method=result.method,
            degraded=result.degraded,
            rows=sorted_rows(result.values()),
            row_count=len(result.rows),
            elapsed=time.perf_counter() - started,
        )
        return base

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class MutationScheduler:
    """Serializes mutations through one writer thread, atomically."""

    def __init__(self, session: Session, snapshots: SnapshotManager):
        self._session = session
        self._snapshots = snapshots
        self._writer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        # created lazily inside a coroutine: asyncio.Lock binds to the
        # running loop on construction before 3.10
        self._lock: Optional[asyncio.Lock] = None
        self.mutations = 0
        self.rolled_back = 0

    async def apply(self, op: str, facts: List[str]) -> Dict[str, Any]:
        if self._lock is None:
            self._lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        async with self._lock:
            try:
                payload = await loop.run_in_executor(
                    self._writer, self._apply, op, facts
                )
            except BaseException as exc:
                raise _to_protocol_error(exc)
        self.mutations += 1
        return payload

    def _apply(self, op: str, facts: List[str]) -> Dict[str, Any]:
        """Writer-thread body: apply the batch, maintain, publish.

        Wraps the batch in a mutation log; on any failure the log's
        inverse is replayed (newest first) before the exception
        propagates, so the live database is restored byte-for-byte and
        the current published snapshot stays the serving version.
        """
        session = self._session
        database: Database = session.database
        log = database.start_mutation_log()
        changed = 0
        try:
            with session.batch():
                for fact in facts:
                    if op == "assert":
                        outcome = session.assert_(fact)
                    else:
                        outcome = session.retract(fact)
                    changed += int(bool(outcome))
        except BaseException:
            database.stop_mutation_log(log)
            self._rollback(database, log)
            self.rolled_back += 1
            raise
        database.stop_mutation_log(log)
        views = session.materialized_relations()
        snap = self._snapshots.publish(views)
        return {
            "op": op,
            "changed": changed,
            "requested": len(facts),
            "version": snap.version,
            "views_published": sorted(views),
        }

    @staticmethod
    def _rollback(database: Database, log) -> None:
        for pred_key, idrow, sign in reversed(log):
            relation = database.relation(pred_key)
            if sign > 0:
                relation.discard_id_row(idrow)
            else:
                relation.add_id_row(idrow)

    def shutdown(self) -> None:
        self._writer.shutdown(wait=True)
