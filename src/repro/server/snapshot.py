"""MVCC snapshot management over relation-level copy-on-write.

The server's concurrency model is single-writer / multi-reader over
*versions*: readers never look at the live database.  They acquire the
current :class:`Snapshot` -- a frozen ``Database.snapshot()`` (O(#
relations), no tuple copied) plus the frozen materialized-view
relations that were fresh at publish time -- and evaluate against it
in a worker thread while the writer mutates the live database and,
when a mutation batch commits, publishes the next version.

Snapshots are refcounted: the manager holds one reference on the
current version, every in-flight read holds one more, and a version
retires (drops out of ``live_count``) when its last reference is
released.  Memory behaves like the write rate, not the read rate: a
writer touching k of n relations between publishes costs k relation
clones, and a retired snapshot's unshared relations free with it.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..datalog.database import Database, Relation

__all__ = ["Snapshot", "SnapshotManager"]


class Snapshot:
    """One published, immutable version of the served database.

    ``db`` is a copy-on-write ``Database.snapshot()`` of the live
    database at publish time; ``views`` maps derived predicate keys to
    frozen :class:`Relation` copies of the maintained materialized
    views *iff* they were fresh when this version was published (an
    aborted maintenance pass publishes with no views -- stale answers
    are never served).  Reads must hold a reference (``acquire`` /
    ``release``) for as long as they use either.
    """

    __slots__ = ("version", "db", "views", "_refs", "_manager", "_lock")

    def __init__(
        self,
        version: int,
        db: Database,
        views: Dict[str, Relation],
        manager: "SnapshotManager",
    ):
        self.version = version
        self.db = db
        self.views = views
        self._refs = 1  # the manager's own reference
        self._manager = manager
        self._lock = threading.Lock()

    def acquire(self) -> "Snapshot":
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError(
                    f"snapshot v{self.version} is already retired"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            refs = self._refs
        if refs == 0:
            self._manager._retired(self)

    @property
    def refs(self) -> int:
        return self._refs

    def __repr__(self) -> str:
        return (
            f"Snapshot(v{self.version}, {len(self.db.predicate_keys())} "
            f"relations, {len(self.views)} views, refs={self._refs})"
        )


class SnapshotManager:
    """Publishes and hands out refcounted snapshots of one database.

    ``publish`` is called by the writer after each committed mutation
    batch (and once at startup); ``current`` is called per read.  Both
    take the manager lock only for pointer swaps and counter updates --
    the O(#relations) ``Database.snapshot()`` itself runs under the
    lock too, but copies no tuples, so writers never hold readers up
    for longer than a dict copy.
    """

    def __init__(self, database: Database):
        self._database = database
        self._lock = threading.Lock()
        self._current: Optional[Snapshot] = None
        self._live = 0
        #: versions published over the manager's lifetime
        self.published = 0

    def publish(
        self, views: Optional[Dict[str, Relation]] = None
    ) -> Snapshot:
        """Freeze the live database as the new current snapshot."""
        with self._lock:
            snap = Snapshot(
                self._database.version,
                self._database.snapshot(),
                views or {},
                self,
            )
            previous = self._current
            self._current = snap
            self._live += 1
            self.published += 1
        if previous is not None:
            previous.release()  # drop the manager's reference
        return snap

    def current(self) -> Snapshot:
        """Acquire the current snapshot (caller must ``release`` it)."""
        with self._lock:
            snap = self._current
            if snap is None:
                raise RuntimeError("no snapshot published yet")
            return snap.acquire()

    def _retired(self, snap: Snapshot) -> None:
        with self._lock:
            self._live -= 1

    @property
    def live_count(self) -> int:
        """Snapshots still referenced (including the current one)."""
        return self._live

    @property
    def current_version(self) -> int:
        with self._lock:
            return -1 if self._current is None else self._current.version

    def __repr__(self) -> str:
        return (
            f"SnapshotManager(v{self.current_version}, "
            f"{self._live} live, {self.published} published)"
        )
