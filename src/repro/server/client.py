"""A blocking TCP client for ``repro serve``.

Speaks the line-oriented JSON protocol of
:mod:`repro.server.protocol`.  One socket, sequential requests; use
one client per thread (or one per concurrent task) -- the server side
is what multiplexes.  Error responses raise :class:`ServerError`,
which carries the structured code and the CLI-compatible exit code::

    with ReproClient(host, port) as client:
        rows = client.query("anc(john, X)?")["rows"]
        client.assert_facts(["par(zed, john)."])
        rows = client.query("anc(zed, X)?", timeout=2.0)["rows"]
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, List, Optional

from .protocol import decode_line, encode_message

__all__ = ["ReproClient", "ServerError"]


class ServerError(Exception):
    """A structured error response from the server."""

    def __init__(
        self,
        code: str,
        message: str,
        exit_code: int,
        detail: Optional[dict] = None,
    ):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.exit_code = exit_code
        self.detail = detail or {}


class ReproClient:
    """One connection to a running server."""

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 60.0
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._recv = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, wait for its response, unwrap errors."""
        if "id" not in obj:
            self._next_id += 1
            obj = dict(obj, id=self._next_id)
        self._sock.sendall(encode_message(obj))
        line = self._recv.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", "internal_error"),
                error.get("message", "unknown server error"),
                error.get("exit_code", 70),
                error.get("detail"),
            )
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def query(self, query: str, **options: Any) -> Dict[str, Any]:
        """Answer a query; keyword arguments become protocol options
        (``method``, ``engine``, ``timeout``, ``max_facts``)."""
        request: Dict[str, Any] = {"op": "query", "query": query}
        if options:
            request["options"] = options
        return self.request(request)

    def assert_facts(self, facts: Iterable[str]) -> Dict[str, Any]:
        return self.request({"op": "assert", "facts": list(facts)})

    def retract_facts(self, facts: Iterable[str]) -> Dict[str, Any]:
        return self.request({"op": "retract", "facts": list(facts)})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
