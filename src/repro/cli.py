"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``rewrite``   print the rewritten program for a query
    python -m repro rewrite program.dl --query "anc(john, Y)?" \
        --method supplementary_magic [--sip chain] [--semijoin]

``query``     answer a query (facts may live in the .dl file or a CSV-ish
              facts file given with --facts); runs through a
              :class:`repro.Session`, so ``--method auto`` dispatches
              per query and ``--repeat N`` exercises the answer memo
    python -m repro query program.dl --query "anc(john, Y)?" --method magic
    python -m repro query program.dl --method auto --repeat 3 --stats

``adorn``     print the adorned program P^ad
``safety``    print the Section 10 safety verdicts (plus the safe-negation
              and stratification verdicts when the program uses ``not``)
``explain``   answer a query and print one derivation tree per answer
``workload``  generate a synthetic workload as a .dl file on stdout
    python -m repro workload bom --depth 5 --fanout 2 \
        --exception-rate 0.15 --seed 7 > bom.dl

``serve``     serve the program over TCP: a concurrent query server
              where readers run against frozen MVCC snapshots while
              one writer applies mutations and publishes the next
              version (line-oriented JSON; see repro.server)
    python -m repro serve program.dl --port 7471 --readers 4 \
        --max-timeout 5 --materialize anc

The program file uses the surface syntax of ``repro.datalog.parser``:
rules, ground facts, ``%`` comments, and optionally queries (a query
given with --query overrides queries in the file).  Body literals may be
negated (``not p(X)`` or ``\\+ p(X)``); such programs evaluate under the
stratified semantics with the bottom-up baselines (``--method naive`` /
``seminaive``) and with the magic rewrites (``--method magic`` /
``supplementary_magic``, or ``auto``), which handle negation
conservatively; the counting rewrites and ``qsq`` are positive-only and
report an error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.adornment import adorn_program
from .core.pipeline import REWRITE_METHODS, rewrite
from .core.safety import counting_safety, magic_safety, negation_safety
from .core.stratify import stratify
from .core.sips import build_chain_sip, build_empty_sip, build_full_sip
from .datalog.database import Database
from .core.limits import BudgetExceeded
from .datalog.errors import ReproError
from .datalog.parser import parse_program, parse_query
from .session import BASELINE_METHODS, Session
from .workloads.bom import bom_source

__all__ = ["main", "build_parser"]

_SIP_BUILDERS = {
    "full": build_full_sip,
    "chain": build_chain_sip,
    "empty": build_empty_sip,
}

#: baseline strategies Session accepts besides the rewrite methods
_BASELINE_METHODS = BASELINE_METHODS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Magic-sets rewriting for recursive queries "
        "(Beeri & Ramakrishnan, 'On the Power of Magic').",
        epilog="Programs may negate body literals -- 'not p(X)' or "
        "'\\+ p(X)' -- under the stratified semantics: the bottom-up "
        "engines evaluate stratum by stratum with anti-joins, and the "
        "magic rewrites (--method magic/supplementary_magic, what "
        "--method auto picks) handle negation conservatively, so "
        "selective queries stay query-directed; the counting rewrites "
        "and qsq are positive-only and report an error.  Negation must "
        "be safe: every negated variable needs a positive binder in "
        "the same rule.  Try: repro workload bom | repro query "
        "/dev/stdin --method auto --stats",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_method=True):
        p.add_argument("program", help="path to a .dl program file")
        p.add_argument(
            "--query",
            help='query text, e.g. "anc(john, Y)?" (defaults to the '
            "first query in the file)",
        )
        p.add_argument(
            "--sip",
            choices=sorted(_SIP_BUILDERS),
            default="full",
            help="sip family: full left-to-right (default), chain "
            "(no-memory partial), or empty (no information passing)",
        )
        if with_method:
            p.add_argument(
                "--method",
                choices=("auto",) + REWRITE_METHODS + _BASELINE_METHODS,
                default="supplementary_magic",
                help="rewrite method, a baseline (plain bottom-up "
                "naive/seminaive or top-down qsq), or auto: magic-"
                "family rewriting for positive and stratified "
                "programs alike, compiled stratified semi-naive only "
                "when adornment rejects the program; the counting "
                "rewrites and qsq reject negation",
            )
            p.add_argument(
                "--mode",
                choices=("numeric", "structural"),
                default="numeric",
                help="counting index encoding",
            )
            p.add_argument(
                "--semijoin",
                action="store_true",
                help="apply the Section 8 semijoin optimization "
                "(counting methods only)",
            )
            p.add_argument(
                "--no-optimize",
                action="store_true",
                help="keep the redundant magic/counting literals "
                "(disable Prop. 4.2 / Lemma 6.2 pruning)",
            )

    p_rewrite = sub.add_parser("rewrite", help="print the rewritten program")
    add_common(p_rewrite)

    p_query = sub.add_parser("query", help="answer a query")
    add_common(p_query)
    p_query.add_argument(
        "--facts", help="extra facts file (same .dl syntax)", default=None
    )
    p_query.add_argument(
        "--engine", choices=("naive", "seminaive"), default="seminaive"
    )
    p_query.add_argument(
        "--max-iterations", type=int, default=None,
        help="abort after this many fixpoint rounds",
    )
    p_query.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the evaluation; overrun aborts "
        "cleanly (exit code 4) without mutating the database",
    )
    p_query.add_argument(
        "--max-facts", type=int, default=None, metavar="N",
        help="derived-fact budget for the evaluation; overrun aborts "
        "cleanly (exit code 4) without mutating the database",
    )
    p_query.add_argument(
        "--stats", action="store_true", help="print work counters"
    )
    p_query.add_argument(
        "--stats-json", action="store_true",
        help="print one JSON object on stdout (rows, method, work and "
        "cache counters) instead of the human-readable bindings -- the "
        "machine-readable twin of --stats",
    )
    p_query.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate bottom-up strata on N pool workers (sharded "
        "semi-naive rounds; answers and counters identical to serial; "
        "default 1 = in-process serial)",
    )
    p_query.add_argument(
        "--no-planner", action="store_true",
        help="run the legacy interpretive join instead of compiled join "
        "plans (A/B comparison; answers are identical)",
    )
    p_query.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="answer the query N times through one session: repeats "
        "after the first are served from the cross-evaluation answer "
        "memo (see --stats for the hit counters)",
    )

    p_adorn = sub.add_parser("adorn", help="print the adorned program")
    add_common(p_adorn, with_method=False)

    p_safety = sub.add_parser(
        "safety", help="print the Section 10 safety verdicts"
    )
    add_common(p_safety, with_method=False)

    p_explain = sub.add_parser(
        "explain", help="answer a query and print derivation trees"
    )
    add_common(p_explain, with_method=False)
    p_explain.add_argument("--facts", default=None)
    p_explain.add_argument(
        "--limit", type=int, default=3,
        help="maximum number of answers to explain",
    )

    p_workload = sub.add_parser(
        "workload",
        help="generate a synthetic workload (.dl source on stdout)",
        description="Generate a synthetic workload as a self-contained "
        ".dl file: rules, facts, and a default query.  Pipe or redirect "
        "it into the query command.",
    )
    p_workload.add_argument(
        "family",
        choices=("bom",),
        help="workload family: bom = bill-of-materials with exception "
        "lists (stratified negation, 4 strata)",
    )
    p_workload.add_argument(
        "--depth", type=int, default=4,
        help="part-tree depth (default 4)",
    )
    p_workload.add_argument(
        "--fanout", type=int, default=2,
        help="subparts per assembly (default 2)",
    )
    p_workload.add_argument(
        "--exception-rate", type=float, default=0.1,
        help="per-part exception probability (default 0.1)",
    )
    p_workload.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for the exception list (default 0)",
    )
    p_workload.add_argument(
        "--query", default=None,
        help='query to embed (default "buildable(P)?")',
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve the program as a concurrent query server",
        description="Start a line-oriented JSON query server over TCP. "
        "Readers evaluate against frozen copy-on-write snapshots while "
        "one writer serializes mutations and publishes new versions; "
        "identical in-flight cold queries coalesce into one "
        "evaluation.  The bound address is printed on stderr as "
        "'repro serve: listening on HOST:PORT'.",
    )
    p_serve.add_argument("program", help="path to a .dl program file")
    p_serve.add_argument(
        "--facts", help="extra facts file (same .dl syntax)", default=None
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: let the OS pick; the bound port is "
        "printed on stderr)",
    )
    p_serve.add_argument(
        "--readers", type=int, default=4, metavar="N",
        help="reader worker threads (default 4)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="pool workers per bottom-up evaluation (default 1: "
        "serial; parallelism across requests comes from --readers)",
    )
    p_serve.add_argument(
        "--max-timeout", type=float, default=None, metavar="SECONDS",
        help="cap on the per-request wall-clock budget clients may ask "
        "for (and the default when they ask for none)",
    )
    p_serve.add_argument(
        "--max-facts", type=int, default=None, metavar="N",
        help="cap on the per-request derived-fact budget",
    )
    p_serve.add_argument(
        "--memo-size", type=int, default=256, metavar="N",
        help="server answer-memo capacity (default 256)",
    )
    p_serve.add_argument(
        "--materialize", action="append", default=None, metavar="PRED",
        help="maintain this derived predicate incrementally and serve "
        "covering queries from the frozen view (repeatable)",
    )
    return parser


def _load(args) -> tuple:
    with open(args.program) as handle:
        parsed = parse_program(handle.read())
    program = parsed.program
    database = Database()
    database.add_facts(parsed.facts)
    if getattr(args, "facts", None):
        with open(args.facts) as handle:
            extra = parse_program(handle.read())
        if extra.program.rules:
            raise ReproError(
                f"facts file {args.facts} contains rules; put rules in "
                "the program file"
            )
        database.add_facts(extra.facts)
    if args.query:
        query = parse_query(args.query)
    elif parsed.queries:
        query = parsed.queries[0]
    else:
        raise ReproError(
            "no query: pass --query or put one in the program file"
        )
    return program, database, query


def _cmd_rewrite(args) -> int:
    program, _, query = _load(args)
    if args.method in _BASELINE_METHODS + ("auto",):
        raise ReproError(
            f"--method {args.method} is an evaluation strategy, not a "
            "rewrite; use it with the query command"
        )
    rewritten = rewrite(
        program,
        query,
        method=args.method,
        sip_builder=_SIP_BUILDERS[args.sip],
        mode=args.mode,
        optimize=not args.no_optimize,
        semijoin=args.semijoin,
    )
    print(rewritten)
    return 0


def _cmd_query(args) -> int:
    program, database, query = _load(args)
    session = Session(
        program=program,
        database=database,
        use_planner=not args.no_planner,
        sip_builder=_SIP_BUILDERS[args.sip],
    )
    repeat = max(1, args.repeat)
    result = None
    for _ in range(repeat):
        result = session.query(
            query,
            method=args.method,
            engine=args.engine,
            mode=args.mode,
            semijoin=args.semijoin,
            optimize=not args.no_optimize,
            max_iterations=args.max_iterations,
            workers=args.workers,
            timeout=args.timeout,
            max_facts=args.max_facts,
        )
    free_vars = [v.name for v in query.free_variables()]
    if args.stats_json:
        # machine-readable: exactly one JSON object on stdout, nothing
        # else (tooling and the server bench consume this)
        from .server.protocol import sorted_rows

        stats = result.stats
        payload = {
            "query": str(query),
            "free_variables": free_vars,
            "rows": sorted_rows(result.values()),
            "row_count": len(result.rows),
            "method": result.method,
            "requested_method": args.method,
            "from_memo": result.from_memo,
            "degraded": result.degraded,
            "maintained": result.maintained,
            "db_version": session.version,
            "elapsed": result.elapsed,
            "repeat": repeat,
            "memo_hits": session.memo_hits,
            "memo_misses": session.memo_misses,
            "facts_derived": (
                stats.facts_derived if stats is not None else None
            ),
            "iterations": stats.iterations if stats is not None else None,
            "rule_firings": (
                stats.rule_firings if stats is not None else None
            ),
            "join_probes": stats.join_probes if stats is not None else None,
            "plan_cache_hits": (
                stats.plan_cache_hits if stats is not None else None
            ),
            "plan_cache_misses": (
                stats.plan_cache_misses if stats is not None else None
            ),
            "workers": (
                stats.parallel_workers if stats is not None else None
            ),
            "parallel_backend": (
                stats.parallel_backend if stats is not None else None
            ),
            "parallel_tasks": (
                stats.parallel_tasks if stats is not None else None
            ),
            "parallel_rows_shipped": (
                stats.parallel_rows_shipped if stats is not None else None
            ),
        }
        import json as _json

        print(_json.dumps(payload, sort_keys=True))
        return 0
    if not free_vars:
        print("yes" if result.rows else "no")
    else:
        header = ", ".join(free_vars)
        print(f"% bindings for ({header})")
        for row in sorted(result.rows, key=str):
            print(", ".join(str(term) for term in row))
    if args.stats and result.stats is not None:
        stats = result.stats
        answer = result.answer
        if result.method == "qsq":
            # the top-down evaluator does not track firings/probes;
            # printing zeros would misreport real join work as absent
            work = (
                f"facts={stats.facts_derived} "
                f"iterations={stats.iterations} "
                f"subqueries={answer.qsq.subqueries_generated}"
            )
        else:
            work = (
                f"facts={stats.facts_derived} "
                f"firings={stats.rule_firings} "
                f"iterations={stats.iterations} "
                f"probes={stats.join_probes}"
            )
            if stats.parallel_workers:
                work += (
                    f" workers={stats.parallel_workers}"
                    f" backend={stats.parallel_backend}"
                    f" parallel_tasks={stats.parallel_tasks}"
                    f" rows_shipped={stats.parallel_rows_shipped}"
                )
                if stats.parallel_fallback:
                    fb = stats.parallel_fallback
                    work += f" parallel_fallback={fb!r}"
        # on a memo-served result the work counters describe the cold
        # evaluation that produced the rows, hence the memo= label
        print(
            f"% method={result.method} "
            f"memo={'hit' if result.from_memo else 'miss'} {work} "
            f"plan_cache_hits={stats.plan_cache_hits} "
            f"plan_cache_misses={stats.plan_cache_misses} "
            f"memo_hits={session.memo_hits} "
            f"memo_misses={session.memo_misses} "
            f"db_version={session.version}",
            file=sys.stderr,
        )
    return 0


def _cmd_adorn(args) -> int:
    program, _, query = _load(args)
    adorned = adorn_program(
        program, query, sip_builder=_SIP_BUILDERS[args.sip]
    )
    print(adorned)
    return 0


def _cmd_safety(args) -> int:
    program, _, query = _load(args)

    def show(family, report):
        verdict = {True: "SAFE", False: "DIVERGES", None: "UNKNOWN"}[
            report.safe
        ]
        label = report.theorem
        if label and label[0].isdigit():
            label = f"Theorem {label}"
        print(f"{family:<18} {verdict:<9} ({label})")
        print(f"                   {report.reason}")

    if program.has_negation():
        show("safe negation", negation_safety(program))
        from .datalog.errors import StratificationError

        try:
            strat = stratify(program)
        except StratificationError as exc:
            print(f"{'stratification':<18} {'REJECTED':<9}")
            print(f"                   {exc}")
            print(
                "% magic/counting verdicts skipped: no stratified "
                "model, so no rewrite applies"
            )
            return 0
        print(
            f"{'stratification':<18} {'OK':<9} "
            f"({len(strat)} strata)"
        )
        for line in str(strat).splitlines():
            print(f"                   {line}")
    adorned = adorn_program(
        program, query, sip_builder=_SIP_BUILDERS[args.sip]
    )
    show("magic methods", magic_safety(adorned))
    if program.has_negation():
        print(
            "% counting verdicts skipped: the counting rewrites are "
            "positive-only (use the magic family or --method auto)"
        )
        return 0
    show("counting methods", counting_safety(adorned))
    return 0


def _cmd_workload(args) -> int:
    # only one family today; the choices list keeps the CLI honest
    try:
        source = bom_source(
            depth=args.depth,
            fanout=args.fanout,
            exception_rate=args.exception_rate,
            seed=args.seed,
            query=args.query,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(source)
    return 0


def _cmd_explain(args) -> int:
    from .datalog.derivation import explain, fact_stages
    from .datalog.engine import evaluate

    program, database, query = _load(args)
    result = evaluate(program, database)
    from .datalog.engine import answer_tuples

    answers = answer_tuples(result, query.literal)
    if not answers:
        print("no answers")
        return 0
    stages = fact_stages(program, database, result)
    free_positions = [
        i for i, arg in enumerate(query.literal.args) if not arg.is_ground()
    ]
    shown = 0
    for row in sorted(answers, key=str):
        if shown >= args.limit:
            print(f"... ({len(answers) - shown} more answers)")
            break
        binding = dict(zip(free_positions, row))
        fact_args = [
            binding.get(i, arg)
            for i, arg in enumerate(query.literal.args)
        ]
        from .datalog.ast import Literal

        fact = Literal(query.pred, tuple(fact_args))
        tree = explain(program, database, result, fact, _stages=stages)
        print(tree.render())
        print()
        shown += 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .server import ReproServer, ServerConfig

    with open(args.program) as handle:
        parsed = parse_program(handle.read())
    database = Database()
    database.add_facts(parsed.facts)
    if args.facts:
        with open(args.facts) as handle:
            extra = parse_program(handle.read())
        if extra.program.rules:
            raise ReproError(
                f"facts file {args.facts} contains rules; put rules in "
                "the program file"
            )
        database.add_facts(extra.facts)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        reader_threads=args.readers,
        workers=args.workers,
        memo_size=args.memo_size,
        max_timeout=args.max_timeout,
        max_facts=args.max_facts,
    )
    server = ReproServer(
        program=parsed.program,
        database=database,
        config=config,
        materialize=args.materialize,
    )

    async def run() -> None:
        host, port = await server.start()
        # stderr, flushed: scripts wait for this line to learn the port
        print(f"repro serve: listening on {host}:{port}", file=sys.stderr)
        sys.stderr.flush()
        assert server._stopped is not None
        await server._stopped.wait()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        # second interrupt during drain still exits 0: the server's
        # pools are daemon-threaded and the database is in-memory
        pass
    return 0


_COMMANDS = {
    "rewrite": _cmd_rewrite,
    "query": _cmd_query,
    "adorn": _cmd_adorn,
    "safety": _cmd_safety,
    "explain": _cmd_explain,
    "workload": _cmd_workload,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code = _COMMANDS[args.command](args)
        # flush inside the try: a downstream pipe closed early would
        # otherwise surface as an unhandled BrokenPipeError during
        # interpreter-exit flush (exit status 120)
        sys.stdout.flush()
        return code
    except BudgetExceeded as exc:
        # a tripped --timeout/--max-facts budget is an expected,
        # clean outcome: one structured line, a distinct exit code,
        # and (by the transactional evaluation) an unmutated database
        print(str(exc), file=sys.stderr)
        return 4
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # downstream consumer (e.g. `repro query ... | head`) closed the
        # pipe; exit quietly instead of tracebacking on flush
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
