"""repro -- a reproduction of Beeri & Ramakrishnan, "On the Power of Magic".

The package has three layers:

* :mod:`repro.datalog` -- a from-scratch deductive-database substrate:
  terms (with function symbols), Horn-clause AST, parser, unification,
  columnar indexed fact storage over interned term IDs, naive/semi-naive
  bottom-up evaluation with batch-vectorized compiled joins, and a
  QSQ-style top-down evaluator;
* :mod:`repro.core` -- the paper's contribution: sideways information
  passing strategies (Section 2), the adorned program (Section 3), the
  generalized magic-sets / supplementary-magic / counting /
  supplementary-counting rewrites (Sections 4-7), the semijoin
  optimization (Section 8), sip-optimality checks (Section 9), and the
  safety analyses (Section 10);
* :mod:`repro.workloads` -- synthetic data generators used by the
  benchmark harness.

The public surface is the stateful :class:`repro.Session` (versioned
database, auto-dispatched queries, cross-evaluation answer memo); the
module-level functions (``parse_program`` + ``answer_query``) remain as
one-shot shims over it.

Quickstart::

    import repro

    session = repro.Session('''
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    ''')
    session.assert_(["par(john, mary)", "par(mary, sue)"])
    result = session.query("anc(john, Y)?")   # method="auto"
    assert ("mary",) in result.values()
    assert session.query("anc(john, Y)?").from_memo

    view = session.materialize("anc(X, Y)?")  # evaluate once...
    session.assert_("par", "sue", "ann")      # ...maintain by deltas
    assert ("john", "ann") in view.rows.values()
"""

from .datalog import (
    AdornmentError,
    CompiledProgram,
    ConnectivityError,
    PlanCache,
    SubqueryPlan,
    SubqueryProgram,
    SubqueryStep,
    Constant,
    Database,
    DerivationNode,
    EvaluationError,
    EvaluationResult,
    EvaluationStats,
    IntegrityError,
    JoinPlan,
    JoinStep,
    LinExpr,
    Literal,
    NonTerminationError,
    ParseError,
    Program,
    QSQResult,
    Query,
    Relation,
    ReproError,
    RewriteError,
    Rule,
    SafetyError,
    SipValidationError,
    StratificationError,
    Struct,
    Term,
    TermCatalog,
    UnsafeNegationError,
    UnsupportedProgramError,
    Variable,
    WellFormednessError,
    answer_tuples,
    compile_rule,
    compile_subquery_rule,
    compiled_program_for,
    shared_plan_cache,
    subquery_program_for,
    evaluate,
    evaluate_naive,
    evaluate_seminaive,
    explain,
    order_body,
    fact_stages,
    list_elements,
    make_list,
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
    qsq_evaluate,
    term_catalog,
)
from .core import (
    AdornedProgram,
    BudgetExceeded,
    BudgetMeter,
    CancellationToken,
    EvaluationBudget,
    EvaluationCancelled,
    FaultPlan,
    InjectedFault,
    QueryAnswer,
    REWRITE_METHODS,
    RewrittenProgram,
    Stratification,
    adorn_program,
    answer_query,
    bottom_up_answer,
    build_chain_sip,
    build_empty_sip,
    build_full_sip,
    check_optimality,
    check_safe_negation,
    check_stratified,
    compare_sips,
    counting_rewrite,
    counting_safety,
    is_stratified,
    lemma_8_1_prune,
    lemma_8_2_anonymize,
    magic_rewrite,
    magic_safety,
    negation_safety,
    rewrite,
    semijoin_optimize,
    stratify,
    stratify_or_raise,
    supplementary_counting_rewrite,
    supplementary_magic_rewrite,
    unwrap_values,
)
from .datalog.ivm import (
    MaintenanceResult,
    MaterializedProgram,
)
from .session import (
    BASELINE_METHODS,
    SESSION_METHODS,
    MaterializedView,
    QueryResult,
    Session,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # substrate
    "Constant", "Variable", "Struct", "LinExpr", "Term",
    "Literal", "Rule", "Program", "Query",
    "Database", "Relation", "TermCatalog", "term_catalog",
    "parse_program", "parse_rule", "parse_literal", "parse_term",
    "parse_query", "make_list", "list_elements",
    "evaluate", "evaluate_naive", "evaluate_seminaive", "answer_tuples",
    "CompiledProgram", "JoinPlan", "JoinStep", "compile_rule", "order_body",
    "PlanCache", "SubqueryPlan", "SubqueryProgram", "SubqueryStep",
    "compile_subquery_rule", "compiled_program_for", "subquery_program_for",
    "shared_plan_cache",
    "qsq_evaluate", "QSQResult",
    "explain", "fact_stages", "DerivationNode",
    "EvaluationResult", "EvaluationStats",
    # errors
    "ReproError", "ParseError", "WellFormednessError", "ConnectivityError",
    "SipValidationError", "AdornmentError", "EvaluationError",
    "NonTerminationError", "SafetyError", "RewriteError", "IntegrityError",
    "StratificationError", "UnsafeNegationError", "UnsupportedProgramError",
    # core
    "AdornedProgram", "adorn_program",
    "build_full_sip", "build_chain_sip", "build_empty_sip",
    "magic_rewrite", "supplementary_magic_rewrite",
    "counting_rewrite", "supplementary_counting_rewrite",
    "semijoin_optimize", "lemma_8_1_prune", "lemma_8_2_anonymize",
    "magic_safety", "counting_safety",
    "negation_safety", "check_safe_negation",
    "Stratification", "stratify", "stratify_or_raise", "is_stratified",
    "check_stratified",
    "check_optimality", "compare_sips",
    "rewrite", "answer_query", "bottom_up_answer", "unwrap_values",
    "RewrittenProgram", "QueryAnswer", "REWRITE_METHODS",
    # resource governance
    "EvaluationBudget", "BudgetMeter", "BudgetExceeded",
    "EvaluationCancelled", "CancellationToken", "FaultPlan",
    "InjectedFault",
    # session + incremental view maintenance
    "Session", "QueryResult", "SESSION_METHODS", "BASELINE_METHODS",
    "MaterializedView", "MaterializedProgram", "MaintenanceResult",
]
