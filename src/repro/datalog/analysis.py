"""Static analysis of programs: dependencies, recursion, blocks.

Provides the predicate dependency graph, Tarjan strongly connected
components (the *blocks* of mutually recursive predicates used by the
semijoin optimization, Theorem 8.3), and recursion/reachability queries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .ast import Program

__all__ = [
    "dependency_graph",
    "strongly_connected_components",
    "recursive_blocks",
    "is_recursive_predicate",
    "reachable_predicates",
    "depends_on",
]


def dependency_graph(program: Program) -> Dict[str, Set[str]]:
    """Map each derived predicate key to the predicate keys it depends on.

    ``p -> q`` when some rule with head ``p`` mentions ``q`` in its body.
    """
    graph: Dict[str, Set[str]] = {}
    for rule in program.rules:
        deps = graph.setdefault(rule.head.pred_key, set())
        for literal in rule.body:
            deps.add(literal.pred_key)
    return graph


def strongly_connected_components(
    graph: Dict[str, Set[str]]
) -> List[FrozenSet[str]]:
    """Tarjan's SCC algorithm (iterative), components in reverse
    topological order (callees before callers)."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    components: List[FrozenSet[str]] = []
    nodes = set(graph)
    for targets in graph.values():
        nodes.update(targets)

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return components


def recursive_blocks(program: Program) -> List[FrozenSet[str]]:
    """Maximal sets of mutually recursive predicates (Section 8 'blocks').

    A singleton component counts as a block only when the predicate
    depends on itself.
    """
    graph = dependency_graph(program)
    blocks = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            blocks.append(component)
            continue
        member = next(iter(component))
        if member in graph.get(member, ()):
            blocks.append(component)
    return blocks


def is_recursive_predicate(program: Program, pred_key: str) -> bool:
    """True when the predicate (transitively) depends on itself."""
    graph = dependency_graph(program)
    seen: Set[str] = set()
    frontier = list(graph.get(pred_key, ()))
    while frontier:
        node = frontier.pop()
        if node == pred_key:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.get(node, ()))
    return False


def reachable_predicates(program: Program, roots: Iterable[str]) -> Set[str]:
    """Predicates reachable from the given roots in the dependency graph."""
    graph = dependency_graph(program)
    seen: Set[str] = set()
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.get(node, ()))
    return seen


def depends_on(program: Program, pred_key: str, other: str) -> bool:
    """True when ``pred_key`` transitively depends on ``other``."""
    return other in reachable_predicates(program, [pred_key]) and (
        other != pred_key or is_recursive_predicate(program, pred_key)
    )
