"""Static analysis of programs: dependencies, recursion, blocks, strata.

Provides the predicate dependency graph, Tarjan strongly connected
components (the *blocks* of mutually recursive predicates used by the
semijoin optimization, Theorem 8.3), recursion/reachability queries, and
the stratification of programs with negated body literals (used by the
bottom-up engines to run stratum by stratum; the user-facing subsystem
API lives in :mod:`repro.core.stratify`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .ast import Program
from .errors import StratificationError

__all__ = [
    "dependency_graph",
    "polarity_edges",
    "strongly_connected_components",
    "recursive_blocks",
    "is_recursive_predicate",
    "reachable_predicates",
    "depends_on",
    "stratify_rules",
    "stratify_or_raise",
]


def dependency_graph(program: Program) -> Dict[str, Set[str]]:
    """Map each derived predicate key to the predicate keys it depends on.

    ``p -> q`` when some rule with head ``p`` mentions ``q`` in its body.
    """
    graph: Dict[str, Set[str]] = {}
    for rule in program.rules:
        deps = graph.setdefault(rule.head.pred_key, set())
        for literal in rule.body:
            deps.add(literal.pred_key)
    return graph


def strongly_connected_components(
    graph: Dict[str, Set[str]]
) -> List[FrozenSet[str]]:
    """Tarjan's SCC algorithm (iterative), components in reverse
    topological order (callees before callers)."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    components: List[FrozenSet[str]] = []
    nodes = set(graph)
    for targets in graph.values():
        nodes.update(targets)

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return components


def recursive_blocks(program: Program) -> List[FrozenSet[str]]:
    """Maximal sets of mutually recursive predicates (Section 8 'blocks').

    A singleton component counts as a block only when the predicate
    depends on itself.
    """
    graph = dependency_graph(program)
    blocks = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            blocks.append(component)
            continue
        member = next(iter(component))
        if member in graph.get(member, ()):
            blocks.append(component)
    return blocks


def is_recursive_predicate(program: Program, pred_key: str) -> bool:
    """True when the predicate (transitively) depends on itself."""
    graph = dependency_graph(program)
    seen: Set[str] = set()
    frontier = list(graph.get(pred_key, ()))
    while frontier:
        node = frontier.pop()
        if node == pred_key:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.get(node, ()))
    return False


def reachable_predicates(program: Program, roots: Iterable[str]) -> Set[str]:
    """Predicates reachable from the given roots in the dependency graph."""
    graph = dependency_graph(program)
    seen: Set[str] = set()
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.get(node, ()))
    return seen


def depends_on(program: Program, pred_key: str, other: str) -> bool:
    """True when ``pred_key`` transitively depends on ``other``."""
    return other in reachable_predicates(program, [pred_key]) and (
        other != pred_key or is_recursive_predicate(program, pred_key)
    )


# ----------------------------------------------------------------------
# stratification (negation as failure, stratified semantics)
# ----------------------------------------------------------------------

def polarity_edges(program: Program) -> List[Tuple[str, str, bool]]:
    """The labelled dependency edges ``(head, dep, negative)``.

    ``negative`` is True when some rule with head ``head`` mentions
    ``dep`` under negation.  One edge per (head, dep, polarity) triple;
    a pair may carry both a positive and a negative edge.
    """
    seen: Set[Tuple[str, str, bool]] = set()
    edges: List[Tuple[str, str, bool]] = []
    for rule in program.rules:
        head_key = rule.head.pred_key
        for literal in rule.body:
            edge = (head_key, literal.pred_key, literal.negated)
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
    return edges


def stratify_rules(
    program: Program,
) -> Tuple[Dict[str, int], Tuple[Tuple[int, ...], ...]]:
    """Stratum numbers and the stratum-ordered rule partition.

    Returns ``(predicate_stratum, rule_strata)``: every predicate key of
    the program mapped to its stratum (base predicates sit at stratum 0;
    a negative dependency strictly increases the stratum), and the
    program's rule indexes grouped by head stratum, lowest first, with
    the original rule order preserved inside each group.

    Raises :class:`StratificationError` when the dependency graph has a
    cycle through negation (the program then has no stratified model --
    ``win(X) :- move(X, Y), not win(Y)`` on cyclic moves is the classic
    example).  A purely positive program yields a single stratum.
    """
    graph = dependency_graph(program)
    components = strongly_connected_components(graph)
    component_of: Dict[str, int] = {}
    for comp_id, component in enumerate(components):
        for node in component:
            component_of[node] = comp_id

    edges = polarity_edges(program)
    for head_key, dep_key, negative in edges:
        if negative and component_of[head_key] == component_of[dep_key]:
            cycle = sorted(components[component_of[head_key]])
            raise StratificationError(
                f"program is not stratified: {head_key} depends negatively "
                f"on {dep_key} inside the recursive component "
                f"{{{', '.join(cycle)}}}; no cycle of the dependency graph "
                "may pass through 'not'",
                cycle=cycle,
            )

    # components arrive callees-first (reverse topological), so every
    # dependency's stratum is final before its dependents are numbered
    component_stratum: Dict[int, int] = {}
    out_edges: Dict[int, List[Tuple[int, bool]]] = {}
    for head_key, dep_key, negative in edges:
        out_edges.setdefault(component_of[head_key], []).append(
            (component_of[dep_key], negative)
        )
    for comp_id in range(len(components)):
        stratum = 0
        for dep_comp, negative in out_edges.get(comp_id, ()):
            if dep_comp == comp_id:
                continue  # intra-component edges are positive (checked)
            candidate = component_stratum[dep_comp] + (1 if negative else 0)
            if candidate > stratum:
                stratum = candidate
        component_stratum[comp_id] = stratum

    predicate_stratum = {
        node: component_stratum[comp_id]
        for node, comp_id in component_of.items()
    }
    by_stratum: Dict[int, List[int]] = {}
    for rule_index, rule in enumerate(program.rules):
        stratum = predicate_stratum[rule.head.pred_key]
        by_stratum.setdefault(stratum, []).append(rule_index)
    rule_strata = tuple(
        tuple(by_stratum[stratum]) for stratum in sorted(by_stratum)
    )
    return predicate_stratum, rule_strata


def stratify_or_raise(
    program: Program, context: str = ""
) -> Tuple[Dict[str, int], Tuple[Tuple[int, ...], ...]]:
    """:func:`stratify_rules`, with a caller-supplied error context.

    The rewrite pipeline calls this on its *output*: the conservative
    magic rewrites must never turn a stratified program into an
    unstratifiable one, so a failure there is an internal invariant
    violation and the ``context`` prefix makes the resulting
    :class:`StratificationError` say so (instead of blaming the user's
    program).
    """
    try:
        return stratify_rules(program)
    except StratificationError as exc:
        if not context:
            raise
        raise StratificationError(
            f"{context}: {exc}", cycle=exc.cycle
        ) from exc
