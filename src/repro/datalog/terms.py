"""The term language of Horn clauses: variables, constants, function terms.

This module implements the ``term`` notion of Section 1.1 of the paper: an
argument of a predicate occurrence is a *term*, i.e. a constant, a variable,
or an n-ary function symbol applied to n terms.  Lists (needed for the
paper's *list reverse* running example, Appendix A.1 problem 4) are encoded
in the usual Prolog way with the binary functor ``'.'`` and the empty-list
constant ``[]``.

In addition to the paper's term language we provide :class:`LinExpr`, a
*linear index expression* ``coeff * var + offset`` over integers.  These are
the index expressions (``I + 1``, ``K x m + i``, ``H x t + j``) that the
generalized counting method of Section 6 writes into rule heads and bodies.
They are invertible, so the unifier (``repro.datalog.unify``) can both
evaluate them when the variable is bound and solve them when matched
against an integer constant.

All term classes are immutable and hashable; ground terms can be used
directly as relation tuple entries.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Tuple

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Struct",
    "LinExpr",
    "EMPTY_LIST",
    "LIST_FUNCTOR",
    "make_list",
    "list_elements",
    "is_list_term",
    "term_variables",
    "term_is_ground",
    "substitute_term",
    "ground_term_length",
    "fresh_variable_factory",
]

#: Functor used for list cells, as in Prolog.
LIST_FUNCTOR = "."


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    def variables(self) -> Tuple["Variable", ...]:
        """Return the variables of this term, in first-occurrence order."""
        raise NotImplementedError

    def is_ground(self) -> bool:
        """True when the term contains no variables."""
        raise NotImplementedError

    def substitute(self, subst) -> "Term":
        """Apply a substitution (mapping Variable -> Term) to this term."""
        raise NotImplementedError


class Variable(Term):
    """A logic variable.  Identity is by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # immutability
        raise AttributeError("Variable is immutable")

    def variables(self) -> Tuple["Variable", ...]:
        return (self,)

    def is_ground(self) -> bool:
        return False

    def substitute(self, subst) -> Term:
        return subst.get(self, self)

    def is_anonymous(self) -> bool:
        """True for don't-care variables (Lemma 8.2 anonymization)."""
        return self.name.startswith("_")

    def __eq__(self, other):
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return self.name


class Constant(Term):
    """A constant: an interned Python value (string, int, ...)."""

    __slots__ = ("value",)

    def __init__(self, value):
        object.__setattr__(self, "value", value)

    def __setattr__(self, key, value):
        raise AttributeError("Constant is immutable")

    def variables(self) -> Tuple[Variable, ...]:
        return ()

    def is_ground(self) -> bool:
        return True

    def substitute(self, subst) -> Term:
        return self

    def __eq__(self, other):
        return (
            isinstance(other, Constant)
            and type(other.value) is type(self.value)
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("const", type(self.value).__name__, self.value))

    def __repr__(self):
        return f"Constant({self.value!r})"

    def __str__(self):
        return str(self.value)


#: The empty list constant, ``[]``.
EMPTY_LIST = Constant("[]")


class Struct(Term):
    """A function term: an n-ary function symbol applied to n terms."""

    __slots__ = ("functor", "args", "_vars")

    def __init__(self, functor: str, args: Iterable[Term]):
        args = tuple(args)
        if not functor:
            raise ValueError("functor must be non-empty")
        if not args:
            raise ValueError(
                "Struct requires at least one argument; use Constant for "
                "0-ary symbols"
            )
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"Struct argument {arg!r} is not a Term")
        object.__setattr__(self, "functor", functor)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_vars", None)

    def __setattr__(self, key, value):
        raise AttributeError("Struct is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Tuple[Variable, ...]:
        cached = self._vars
        if cached is None:
            seen = []
            for arg in self.args:
                for var in arg.variables():
                    if var not in seen:
                        seen.append(var)
            cached = tuple(seen)
            object.__setattr__(self, "_vars", cached)
        return cached

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, subst) -> Term:
        if not self.variables():
            return self
        return Struct(self.functor, tuple(a.substitute(subst) for a in self.args))

    def __eq__(self, other):
        return (
            isinstance(other, Struct)
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self):
        return hash(("struct", self.functor, self.args))

    def __repr__(self):
        return f"Struct({self.functor!r}, {self.args!r})"

    def __str__(self):
        if self.functor == LIST_FUNCTOR and len(self.args) == 2:
            return _format_list(self)
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({inner})"


class LinExpr(Term):
    """A linear integer expression ``coeff * var + offset``.

    Used by the numeric index mode of the generalized counting method
    (Section 6): the index fields of counting predicates are written as
    ``I + 1``, ``K x m + i`` and ``H x t + j``, all of which have this
    shape.  The unifier evaluates a :class:`LinExpr` once its variable is
    bound to an integer, and *inverts* it when matching against an integer
    constant ``c`` (the match succeeds iff ``(c - offset) % coeff == 0``,
    binding ``var = (c - offset) // coeff``).
    """

    __slots__ = ("var", "coeff", "offset")

    def __init__(self, var: Variable, coeff: int = 1, offset: int = 0):
        if not isinstance(var, Variable):
            raise TypeError("LinExpr variable must be a Variable")
        if not isinstance(coeff, int) or not isinstance(offset, int):
            raise TypeError("LinExpr coefficients must be integers")
        if coeff == 0:
            raise ValueError("LinExpr coefficient must be non-zero")
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "coeff", coeff)
        object.__setattr__(self, "offset", offset)

    def __setattr__(self, key, value):
        raise AttributeError("LinExpr is immutable")

    def variables(self) -> Tuple[Variable, ...]:
        return (self.var,)

    def is_ground(self) -> bool:
        return False

    def substitute(self, subst) -> Term:
        replacement = subst.get(self.var)
        if replacement is None:
            return self
        return self.apply_to(replacement)

    def apply_to(self, replacement: Term) -> Term:
        """Compose this expression with a replacement for its variable."""
        if isinstance(replacement, Constant):
            if not isinstance(replacement.value, int):
                raise TypeError(
                    f"LinExpr variable bound to non-integer {replacement!r}"
                )
            return Constant(self.coeff * replacement.value + self.offset)
        if isinstance(replacement, Variable):
            return LinExpr(replacement, self.coeff, self.offset)
        if isinstance(replacement, LinExpr):
            return LinExpr(
                replacement.var,
                self.coeff * replacement.coeff,
                self.coeff * replacement.offset + self.offset,
            )
        raise TypeError(f"cannot substitute {replacement!r} into LinExpr")

    def solve(self, value: int) -> Optional[int]:
        """Solve ``coeff * x + offset == value``; None when unsolvable.

        Solutions are restricted to the naturals: counting indices start
        at 0 and only grow, so a negative solution denotes a level
        "before the seed", which no derivation can have.  (Without this
        restriction the semijoin-optimized index-walk rules, e.g.
        ``anc_ind(I,K,H,Y) :- anc_ind(I+1, 2K+2, 2H+2, Y)``, would
        derive spurious facts at negative levels.)
        """
        delta = value - self.offset
        if delta % self.coeff != 0:
            return None
        solution = delta // self.coeff
        if solution < 0:
            return None
        return solution

    def __eq__(self, other):
        return (
            isinstance(other, LinExpr)
            and other.var == self.var
            and other.coeff == self.coeff
            and other.offset == self.offset
        )

    def __hash__(self):
        return hash(("linexpr", self.var, self.coeff, self.offset))

    def __repr__(self):
        return f"LinExpr({self.var!r}, {self.coeff}, {self.offset})"

    def __str__(self):
        parts = []
        if self.coeff == 1:
            parts.append(self.var.name)
        else:
            parts.append(f"{self.coeff}*{self.var.name}")
        if self.offset > 0:
            parts.append(f"+{self.offset}")
        elif self.offset < 0:
            parts.append(str(self.offset))
        return "".join(parts)


def _format_list(term: Struct) -> str:
    """Pretty-print a list cell, using ``[a, b | T]`` notation."""
    elements = []
    cursor: Term = term
    while (
        isinstance(cursor, Struct)
        and cursor.functor == LIST_FUNCTOR
        and len(cursor.args) == 2
    ):
        elements.append(str(cursor.args[0]))
        cursor = cursor.args[1]
    if cursor == EMPTY_LIST:
        return "[" + ", ".join(elements) + "]"
    return "[" + ", ".join(elements) + " | " + str(cursor) + "]"


def make_list(items: Iterable[Term], tail: Term = EMPTY_LIST) -> Term:
    """Build the term ``[i1, ..., in | tail]`` from Python iterables."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(LIST_FUNCTOR, (item, result))
    return result


def is_list_term(term: Term) -> bool:
    """True when ``term`` is a proper (nil-terminated) ground-spine list."""
    cursor = term
    while (
        isinstance(cursor, Struct)
        and cursor.functor == LIST_FUNCTOR
        and len(cursor.args) == 2
    ):
        cursor = cursor.args[1]
    return cursor == EMPTY_LIST


def list_elements(term: Term) -> Tuple[Term, ...]:
    """Return the elements of a proper list term."""
    elements = []
    cursor = term
    while (
        isinstance(cursor, Struct)
        and cursor.functor == LIST_FUNCTOR
        and len(cursor.args) == 2
    ):
        elements.append(cursor.args[0])
        cursor = cursor.args[1]
    if cursor != EMPTY_LIST:
        raise ValueError(f"{term} is not a proper list")
    return tuple(elements)


def term_variables(terms: Iterable[Term]) -> Tuple[Variable, ...]:
    """Variables of a sequence of terms, in first-occurrence order."""
    seen = []
    for term in terms:
        for var in term.variables():
            if var not in seen:
                seen.append(var)
    return tuple(seen)


def term_is_ground(terms: Iterable[Term]) -> bool:
    """True when every term in the sequence is ground."""
    return all(t.is_ground() for t in terms)


def substitute_term(term: Term, subst) -> Term:
    """Functional form of :meth:`Term.substitute`."""
    return term.substitute(subst)


def ground_term_length(term: Term) -> int:
    """The length ``|t|`` of a ground term (Section 10).

    ``|t| = 1`` for a constant; ``|f(t1..tn)| = 1 + sum |ti|``.
    """
    if isinstance(term, Constant):
        return 1
    if isinstance(term, Struct):
        return 1 + sum(ground_term_length(a) for a in term.args)
    raise ValueError(f"term {term} is not ground")


def fresh_variable_factory(prefix: str = "V") -> Iterator[Variable]:
    """An infinite stream of fresh variables ``prefix0, prefix1, ...``."""
    return (Variable(f"{prefix}{i}") for i in itertools.count())
