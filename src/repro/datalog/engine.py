"""Bottom-up evaluation: naive and semi-naive fixpoint computation.

This is the evaluation substrate the paper assumes (Section 1.1): start
with the database relations and empty derived predicates; in each stage
add every tuple implied by a rule given the previous stage; the limit of
the monotonically increasing sequence is the answer.  Completeness is the
classical least-fixed-point result [van Emden & Kowalski; Lloyd 84].

Two strategies are provided:

* :func:`evaluate_naive` -- recompute every rule against the whole
  database each iteration (the paper's strawman in Section 1);
* :func:`evaluate_seminaive` -- the standard differential evaluation: a
  rule fires only when at least one derived body literal is matched
  against the *delta* (facts new in the previous iteration).

Both are instrumented (:class:`EvaluationStats`): the paper's claims are
about the *number of facts computed* (Sections 9 and 11), so counting
derivations, firings, and index probes is the measurement apparatus of
the reproduction.

Programs with function symbols need not terminate (Section 1.1 notes the
limit may be infinite); both strategies accept iteration and fact budgets
and raise :class:`~repro.datalog.errors.NonTerminationError` on overrun.

Stratified negation
-------------------

Both strategies evaluate programs with negated body literals under the
stratified semantics: the rules are partitioned by
:func:`repro.datalog.analysis.stratify_rules` (raising
:class:`~repro.datalog.errors.StratificationError` on recursion through
negation and :class:`~repro.datalog.errors.UnsafeNegationError` on
negated variables no positive literal binds), and each stratum runs to
its fixpoint before the next starts.  A negated literal is evaluated as
an anti-join against the -- by then complete -- relation of a strictly
lower stratum, so negation-as-failure coincides with set complement.
Positive programs form a single stratum and behave exactly as before.

Execution paths
---------------

Both strategies run, by default, on **compiled join plans**
(:mod:`repro.datalog.planner`): each rule is compiled once -- per
delta-literal choice -- into a :class:`~repro.datalog.planner.JoinPlan`
with a greedily reordered body (delta occurrence first, then maximally
bound literals), precomputed index-position tuples registered on the
:class:`Relation` objects up front, and slot-based variable frames in
place of per-row dict substitutions.  Pass ``use_planner=False`` to run
the original interpretive join (:func:`_evaluate_rule`) instead; the two
paths derive identical fact sets and identical ``rule_firings`` /
``facts_derived`` / ``duplicate_derivations`` counters (those count body
solutions, which join order cannot change), while ``join_probes`` and
``tuples_scanned`` measure the work actually done -- the planner's whole
point is that they shrink.

Testing gotcha: run the suite as ``python -m pytest`` from the repo root
(``pyproject.toml`` pins ``testpaths = ["tests"]``).  Without that
pinning, pytest also collects ``benchmarks/``, whose sibling
``conftest.py`` shadows ``tests/conftest.py`` in the import cache and
breaks collection with an ImportError on ``assert_rules_equal``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .analysis import stratify_rules
from .ast import Literal, Program, Rule
from .database import Database, FactTuple, Relation
from .errors import EvaluationError, NonTerminationError, UnsafeNegationError
from .planner import CompiledProgram, PlanCache, compiled_program_for
from .terms import Term
from .unify import Substitution, match_sequences, resolve

__all__ = [
    "EvaluationStats",
    "EvaluationResult",
    "evaluate_naive",
    "evaluate_seminaive",
    "evaluate",
    "answer_tuples",
]


@dataclass
class EvaluationStats:
    """Work counters for one bottom-up evaluation."""

    iterations: int = 0
    #: successful body matches (head instances produced, incl. duplicates)
    rule_firings: int = 0
    #: facts that were new when derived
    facts_derived: int = 0
    #: head instances that had already been derived
    duplicate_derivations: int = 0
    #: index lookups performed during joins
    join_probes: int = 0
    #: tuples scanned while extending partial matches
    tuples_scanned: int = 0
    #: plan-cache outcome for this evaluation (planner path only)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    facts_by_predicate: Dict[str, int] = field(default_factory=dict)
    #: effective worker count of the parallel tier (0 = serial run)
    parallel_workers: int = 0
    #: backend the pool ran on ("fork" / "thread"; "" = serial)
    parallel_backend: str = ""
    #: shard/batch work items executed by workers
    parallel_tasks: int = 0
    #: batches merged through the parallel path
    parallel_batches: int = 0
    #: ID rows that crossed a worker boundary (results + broadcasts)
    parallel_rows_shipped: int = 0
    #: parent-side seconds spent flattening/shipping/unflattening rows
    parallel_ship_seconds: float = 0.0
    #: why a requested parallel run fell back ("" = none needed)
    parallel_fallback: str = ""
    #: rows emitted per worker index (shard-balance instrumentation)
    parallel_worker_rows: Dict[int, int] = field(default_factory=dict)

    def record_fact(self, pred_key: str) -> None:
        self.facts_derived += 1
        self.facts_by_predicate[pred_key] = (
            self.facts_by_predicate.get(pred_key, 0) + 1
        )

    def record_facts(self, pred_key: str, count: int) -> None:
        """Bulk :meth:`record_fact` (the batch engine's accounting)."""
        self.facts_derived += count
        self.facts_by_predicate[pred_key] = (
            self.facts_by_predicate.get(pred_key, 0) + count
        )


@dataclass
class EvaluationResult:
    """Outcome of a bottom-up evaluation.

    ``database`` holds base *and* derived facts; ``derived_keys`` lists
    the predicate keys the program defines (so callers can separate IDB
    from EDB), and ``stats`` the work counters.
    """

    database: Database
    derived_keys: Set[str]
    stats: EvaluationStats

    def derived_tuples(self, pred_key: str) -> Set[FactTuple]:
        return self.database.tuples(pred_key)

    def derived_fact_count(self) -> int:
        return sum(
            len(self.database.tuples(key)) for key in self.derived_keys
        )


# ----------------------------------------------------------------------
# single-rule evaluation (the join)
# ----------------------------------------------------------------------

def _literal_rows(
    literal: Literal,
    subst: Substitution,
    database: Database,
    override: Optional[Tuple[str, Relation]],
    stats: EvaluationStats,
) -> Tuple[List[FactTuple], Tuple[Term, ...]]:
    """Rows that may match a body literal under the current bindings.

    Returns the candidate rows (narrowed through an index on the
    currently-ground argument positions) and the resolved argument
    patterns to finish the match with.
    """
    if override is not None and literal.pred_key == override[0]:
        relation: Optional[Relation] = override[1]
    else:
        relation = database.get(literal.pred_key)
    if relation is None or len(relation) == 0:
        return [], ()
    resolved = tuple(resolve(arg, subst) for arg in literal.args)
    bound_positions = tuple(
        i for i, arg in enumerate(resolved) if arg.is_ground()
    )
    key = tuple(resolved[i] for i in bound_positions)
    stats.join_probes += 1
    rows = relation.lookup(bound_positions, key)
    return rows, resolved


def _negation_sequence(rule: Rule) -> Tuple[int, ...]:
    """Body indexes in legacy evaluation order under negation.

    Positive literals keep their source order; each negated literal is
    deferred to the earliest point where the positive prefix has bound
    all its variables (safe negation guarantees that point exists).
    """
    body = rule.body
    order: List[int] = []
    bound: Set = set()
    pending = [i for i, lit in enumerate(body) if lit.negated]

    def flush() -> None:
        kept = []
        for i in pending:
            if all(v in bound for v in body[i].variables()):
                order.append(i)
            else:
                kept.append(i)
        pending[:] = kept

    flush()
    for i, literal in enumerate(body):
        if literal.negated:
            continue
        order.append(i)
        bound.update(literal.variables())
        flush()
    if pending:
        rule.check_safe_negation()  # raises with the offending variables
        raise UnsafeNegationError(
            f"rule {rule}: no join order binds every negated variable "
            "before its anti-join runs",
            rule=rule,
        )
    return tuple(order)


def _evaluate_rule(
    rule: Rule,
    database: Database,
    stats: EvaluationStats,
    delta: Optional[Tuple[int, str, Relation]] = None,
) -> List[FactTuple]:
    """All head instances derivable from one rule (one delta choice).

    ``delta``, when given, is ``(occurrence_index, pred_key, relation)``:
    the body literal at that index is matched against the delta relation
    instead of the full one.  The join proceeds left-to-right, carrying a
    substitution; index lookups narrow each literal to the rows agreeing
    with the currently-ground argument positions.  Negated literals are
    anti-joins, deferred until their variables are bound
    (:func:`_negation_sequence`).
    """
    produced: List[FactTuple] = []
    body = rule.body
    if rule.has_negation():
        sequence: Sequence[int] = _negation_sequence(rule)
    else:
        sequence = range(len(body))

    def extend(position: int, subst: Substitution) -> None:
        if position == len(body):
            head_args = tuple(resolve(arg, subst) for arg in rule.head.args)
            for value in head_args:
                if not value.is_ground():
                    raise EvaluationError(
                        f"rule {rule} produced a non-ground head argument "
                        f"{value}; the rule is not range-restricted for "
                        "this database"
                    )
            stats.rule_firings += 1
            produced.append(head_args)
            return
        index = sequence[position]
        literal = body[index]
        if literal.negated:
            # anti-join: the tuple must be ground here (safe negation);
            # the branch survives only when it is absent from the
            # completed lower-stratum relation
            resolved = tuple(resolve(arg, subst) for arg in literal.args)
            for value in resolved:
                if not value.is_ground():
                    raise UnsafeNegationError(
                        f"rule {rule}: negated literal {literal} reached "
                        f"with non-ground argument {value}; negated "
                        "variables must be bound by positive literals",
                        rule=rule,
                    )
            relation = database.get(literal.pred_key)
            if relation is not None and len(relation) > 0:
                stats.join_probes += 1
                positions = tuple(range(len(resolved)))
                if relation.lookup(positions, resolved):
                    return
            extend(position + 1, subst)
            return
        override = None
        if delta is not None and index == delta[0]:
            override = (delta[1], delta[2])
        elif delta is not None and literal.pred_key == delta[1]:
            # non-delta occurrence of the delta predicate: use the full
            # relation (which already includes the delta facts)
            override = None
        rows, resolved = _literal_rows(
            literal, subst, database, override, stats
        )
        for row in rows:
            stats.tuples_scanned += 1
            extended = match_sequences(resolved, row, subst)
            if extended is not None:
                extend(position + 1, extended)

    extend(0, {})
    return produced


# ----------------------------------------------------------------------
# fixpoint strategies
# ----------------------------------------------------------------------

def _check_budget(
    stats: EvaluationStats,
    total_derived: int,
    max_iterations: Optional[int],
    max_facts: Optional[int],
) -> None:
    if max_iterations is not None and stats.iterations > max_iterations:
        raise NonTerminationError(
            f"bottom-up evaluation exceeded {max_iterations} iterations "
            f"({total_derived} facts derived); the program/query pair may "
            "be unsafe (see Section 10 of the paper)",
            iterations=stats.iterations,
            facts=total_derived,
        )
    if max_facts is not None and total_derived > max_facts:
        raise NonTerminationError(
            f"bottom-up evaluation exceeded {max_facts} derived facts "
            f"after {stats.iterations} iterations",
            iterations=stats.iterations,
            facts=total_derived,
        )


def _compiled_for(
    program: Program,
    working: Database,
    stats: EvaluationStats,
    plan_cache: Optional[PlanCache],
) -> CompiledProgram:
    """Fetch (or build) the program's plans and register their indexes."""
    compiled, cache_hit = compiled_program_for(program, plan_cache)
    if cache_hit:
        stats.plan_cache_hits += 1
    else:
        stats.plan_cache_misses += 1
    compiled.register_indexes(working)
    return compiled


def _evaluation_strata(
    program: Program, compiled: Optional[CompiledProgram]
) -> Tuple[Tuple[int, ...], ...]:
    """The stratum partition of the program's rule indexes.

    The compiled program carries it precomputed (and plan-cached); the
    legacy path stratifies here, first re-checking safe negation so
    unsafe rules fail with :class:`UnsafeNegationError` before any
    evaluation work happens.  Positive programs yield one stratum.
    """
    if compiled is not None:
        return compiled.strata
    if not program.has_negation():
        # positive program: single stratum, no graph work on the legacy
        # path (it is the A/B timing baseline and must stay lean)
        return (tuple(range(len(program.rules))),)
    for rule in program.rules:
        rule.check_safe_negation()
    _, rule_strata = stratify_rules(program)
    return rule_strata


def _parallel_requested(
    workers: Optional[int], use_planner: bool, vectorized: bool
) -> bool:
    """Whether a ``workers=N`` request can take the parallel tier.

    The pool executes compiled batch plans only; the legacy and
    row-at-a-time paths are A/B baselines and stay serial (the request
    is recorded on the stats as a fallback instead of erroring).
    """
    return (
        workers is not None and workers > 1 and use_planner and vectorized
    )


def evaluate_naive(
    program: Program,
    database: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_planner: bool = True,
    plan_cache: Optional[PlanCache] = None,
    vectorized: bool = True,
    meter=None,
    workers: Optional[int] = None,
    parallel_backend: str = "auto",
) -> EvaluationResult:
    """Naive bottom-up fixpoint: all rules against all facts, each round.

    With negation, each stratum's rules run to their joint fixpoint
    before the next stratum starts (``stats.iterations`` accumulates
    rounds across strata).

    ``vectorized`` (planner path only) selects batch execution over ID
    columns (:meth:`JoinPlan.execute_batch`); pass False to run the
    compiled plans row-at-a-time at the term level instead.  Both derive
    identical fact sets and solution counters.

    ``meter`` is an optional budget meter (duck-typed so this module
    never imports :mod:`repro.core.limits`): ``check_round`` runs at
    every fixpoint-round boundary and ``check_batch`` at rule/batch
    boundaries, each free to abort by raising.  Evaluation runs on a
    copy of ``database``, so an abort installs nothing.

    ``workers`` > 1 runs each round's batches on the parallel tier
    (:mod:`repro.datalog.parallel`); fact sets and the solution counters
    (``facts_derived`` / ``rule_firings`` / ``duplicate_derivations`` /
    ``iterations``) are identical to the serial run by construction.
    """
    if _parallel_requested(workers, use_planner, vectorized):
        from .parallel import evaluate_parallel

        return evaluate_parallel(
            program, database, method="naive", workers=workers,
            backend=parallel_backend, max_iterations=max_iterations,
            max_facts=max_facts, plan_cache=plan_cache, meter=meter,
        )
    working = database.copy()
    stats = EvaluationStats()
    if workers is not None and workers > 1:
        stats.parallel_fallback = "row path is serial-only"
    derived_keys = program.derived_predicates()
    compiled: Optional[CompiledProgram] = None
    if use_planner:
        compiled = _compiled_for(program, working, stats, plan_cache)
    batch = compiled is not None and vectorized
    for stratum_index, stratum in enumerate(
        _evaluation_strata(program, compiled)
    ):
        changed = True
        round_in_stratum = 0
        while changed:
            changed = False
            stats.iterations += 1
            round_in_stratum += 1
            _check_budget(
                stats, stats.facts_derived, max_iterations, max_facts
            )
            if meter is not None:
                meter.check_round(
                    stats.facts_derived,
                    stats.tuples_scanned,
                    stratum_index,
                    round_in_stratum,
                    working,
                )
            for rule_index in stratum:
                rule = program.rules[rule_index]
                head_key = rule.head.pred_key
                relation = working.relation(head_key)
                if batch:
                    rows = compiled.plan(rule_index).execute_batch(
                        working, stats, meter=meter
                    )
                    if rows:
                        fresh = relation.add_id_rows(rows)
                        n_fresh = len(fresh)
                        stats.duplicate_derivations += len(rows) - n_fresh
                        if n_fresh:
                            stats.record_facts(head_key, n_fresh)
                            changed = True
                    continue
                if compiled is not None:
                    rows = compiled.plan(rule_index).execute(
                        working, stats, meter=meter
                    )
                else:
                    if meter is not None:
                        meter.check_batch(
                            stats.facts_derived, stats.tuples_scanned
                        )
                    rows = _evaluate_rule(rule, working, stats)
                for row in rows:
                    if relation.add(row):
                        stats.record_fact(head_key)
                        changed = True
                    else:
                        stats.duplicate_derivations += 1
            if max_facts is not None and stats.facts_derived > max_facts:
                _check_budget(stats, stats.facts_derived, None, max_facts)
    return EvaluationResult(working, derived_keys, stats)


class _IdDeltaBatch:
    """A per-round delta of fresh ID rows, for the batch executor.

    Duck-types the slice of the :class:`Relation` interface the batch
    join steps touch (``__len__``, ``lookup_ids``, ``_columns``):
    fresh rows are collected by plain list extension during a round and
    the columns / probe index are built in one pass at the first probe
    of the *next* round -- a delta is never probed and extended in the
    same round, so nothing is maintained incrementally and the
    per-row insert cost of a full :class:`Relation` disappears.
    """

    __slots__ = ("rows", "_cols", "_indexes")

    def __init__(self) -> None:
        self.rows: List[Tuple[int, ...]] = []
        self._cols: Optional[List[List[int]]] = None
        self._indexes: Dict[Tuple[int, ...], Dict[object, List[int]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def extend(self, fresh: List[Tuple[int, ...]]) -> None:
        self.rows.extend(fresh)
        self._cols = None
        self._indexes.clear()

    @property
    def _columns(self) -> List[List[int]]:
        cols = self._cols
        if cols is None:
            rows = self.rows
            cols = self._cols = [
                [row[p] for row in rows] for p in range(len(rows[0]))
            ]
        return cols

    def probe_index(
        self, positions: Tuple[int, ...]
    ) -> Optional[Dict[object, List[int]]]:
        """The raw key->rows dict for ``positions`` (always exact:
        deltas have no tombstones), or None for empty positions."""
        if not positions:
            return None
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                (p0,) = positions
                for slot, row in enumerate(self.rows):
                    index.setdefault(row[p0], []).append(slot)
            else:
                for slot, row in enumerate(self.rows):
                    index.setdefault(
                        tuple(row[i] for i in positions), []
                    ).append(slot)
            self._indexes[positions] = index
        return index

    def lookup_ids(
        self, positions: Tuple[int, ...], key: object
    ) -> List[int]:
        if not positions:
            return list(range(len(self.rows)))
        return self.probe_index(positions).get(key, [])


def _new_delta_relation(
    head_key: str,
    delta_positions: Dict[str, Tuple[Tuple[int, ...], ...]],
) -> Relation:
    """A per-round delta relation, pre-indexed for the delta plans.

    Delta literals that carry constants (magic seeds) probe the delta on
    those positions.  :meth:`Relation.lookup` would build the index
    lazily on the first probe anyway (once per round, same total cost);
    registering it at creation moves that build out of the join path so
    every delta probe -- including the first -- is a plain hash lookup,
    maintained incrementally by :meth:`Relation.add` as the round's
    facts arrive.
    """
    relation = Relation(head_key)
    for positions in delta_positions.get(head_key, ()):
        relation.register_index(positions)
    return relation


def evaluate_seminaive(
    program: Program,
    database: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_planner: bool = True,
    plan_cache: Optional[PlanCache] = None,
    vectorized: bool = True,
    meter=None,
    workers: Optional[int] = None,
    parallel_backend: str = "auto",
) -> EvaluationResult:
    """Semi-naive bottom-up fixpoint (differential evaluation).

    For each rule and each body occurrence of a derived predicate, a
    delta version of the rule matches that occurrence against the facts
    new in the previous round.  Rules whose body mentions no derived
    predicate fire once, in round one.

    ``vectorized`` (planner path only) selects batch execution over ID
    columns: rule solutions and the per-round deltas then travel as ID
    rows end to end, and terms are only resolved back when answers are
    materialized.  Pass False for the row-at-a-time compiled path; both
    derive identical fact sets and solution counters.

    ``meter`` -- optional budget meter checked at round and rule/batch
    boundaries, as in :func:`evaluate_naive`.

    ``workers`` > 1 fans each round's delta batches out to the parallel
    tier (:mod:`repro.datalog.parallel`), preserving fact sets and the
    solution counters exactly; see :func:`evaluate_naive`.
    """
    if _parallel_requested(workers, use_planner, vectorized):
        from .parallel import evaluate_parallel

        return evaluate_parallel(
            program, database, method="seminaive", workers=workers,
            backend=parallel_backend, max_iterations=max_iterations,
            max_facts=max_facts, plan_cache=plan_cache, meter=meter,
        )
    working = database.copy()
    stats = EvaluationStats()
    if workers is not None and workers > 1:
        stats.parallel_fallback = "row path is serial-only"
    derived_keys = program.derived_predicates()
    compiled: Optional[CompiledProgram] = None
    delta_positions: Dict[str, Tuple[Tuple[int, ...], ...]] = {}
    if use_planner:
        compiled = _compiled_for(program, working, stats, plan_cache)
        delta_positions = compiled.delta_index_positions()
    batch = compiled is not None and vectorized

    for stratum_index, stratum in enumerate(
        _evaluation_strata(program, compiled)
    ):
        # round 1 of the stratum: all its rules against the current
        # database (derived relations of this stratum are empty, so only
        # rules over base/lower-stratum facts can fire; rules with
        # same-stratum derived body literals fire iff those relations
        # already hold facts, which we support by simply evaluating every
        # rule naively once).  Negated literals probe lower strata, which
        # are complete by now.
        deltas: Dict[str, Relation] = {}
        stats.iterations += 1
        round_in_stratum = 1
        if meter is not None:
            meter.check_round(
                stats.facts_derived,
                stats.tuples_scanned,
                stratum_index,
                round_in_stratum,
                working,
            )
        for rule_index in stratum:
            rule = program.rules[rule_index]
            head_key = rule.head.pred_key
            relation = working.relation(head_key)
            if batch:
                rows = compiled.plan(rule_index).execute_batch(
                    working, stats, meter=meter
                )
                if rows:
                    fresh = relation.add_id_rows(rows)
                    n_fresh = len(fresh)
                    stats.duplicate_derivations += len(rows) - n_fresh
                    if n_fresh:
                        stats.record_facts(head_key, n_fresh)
                        delta_rel = deltas.get(head_key)
                        if delta_rel is None:
                            delta_rel = deltas[head_key] = _IdDeltaBatch()
                        delta_rel.extend(fresh)
                continue
            if compiled is not None:
                rows = compiled.plan(rule_index).execute(
                    working, stats, meter=meter
                )
            else:
                if meter is not None:
                    meter.check_batch(
                        stats.facts_derived, stats.tuples_scanned
                    )
                rows = _evaluate_rule(rule, working, stats)
            for row in rows:
                if relation.add(row):
                    stats.record_fact(head_key)
                    delta_rel = deltas.get(head_key)
                    if delta_rel is None:
                        delta_rel = _new_delta_relation(
                            head_key, delta_positions
                        )
                        deltas[head_key] = delta_rel
                    delta_rel.add(row)
                else:
                    stats.duplicate_derivations += 1

        # subsequent rounds: delta-driven (deltas only ever hold
        # same-stratum predicates, so negated literals -- strictly lower
        # stratum -- never match one)
        while deltas:
            stats.iterations += 1
            round_in_stratum += 1
            _check_budget(
                stats, stats.facts_derived, max_iterations, max_facts
            )
            if meter is not None:
                meter.check_round(
                    stats.facts_derived,
                    stats.tuples_scanned,
                    stratum_index,
                    round_in_stratum,
                    working,
                )
            new_deltas: Dict[str, Relation] = {}
            for rule_index in stratum:
                rule = program.rules[rule_index]
                head_key = rule.head.pred_key
                relation = working.relation(head_key)
                for index, literal in enumerate(rule.body):
                    if literal.negated:
                        continue
                    if literal.pred_key not in deltas:
                        continue
                    if literal.pred_key not in derived_keys:
                        continue
                    delta_rel = deltas[literal.pred_key]
                    if batch:
                        rows = compiled.plan(
                            rule_index, index
                        ).execute_batch(working, stats, delta_rel, meter=meter)
                        if rows:
                            fresh = relation.add_id_rows(rows)
                            n_fresh = len(fresh)
                            stats.duplicate_derivations += (
                                len(rows) - n_fresh
                            )
                            if n_fresh:
                                stats.record_facts(head_key, n_fresh)
                                new_rel = new_deltas.get(head_key)
                                if new_rel is None:
                                    new_rel = new_deltas[head_key] = (
                                        _IdDeltaBatch()
                                    )
                                new_rel.extend(fresh)
                        continue
                    if compiled is not None:
                        rows = compiled.plan(rule_index, index).execute(
                            working, stats, delta_rel, meter=meter
                        )
                    else:
                        if meter is not None:
                            meter.check_batch(
                                stats.facts_derived, stats.tuples_scanned
                            )
                        delta_spec = (index, literal.pred_key, delta_rel)
                        rows = _evaluate_rule(
                            rule, working, stats, delta_spec
                        )
                    for row in rows:
                        if relation.add(row):
                            stats.record_fact(head_key)
                            new_rel = new_deltas.get(head_key)
                            if new_rel is None:
                                new_rel = _new_delta_relation(
                                    head_key, delta_positions
                                )
                                new_deltas[head_key] = new_rel
                            new_rel.add(row)
                        else:
                            stats.duplicate_derivations += 1
            deltas = new_deltas
            if max_facts is not None and stats.facts_derived > max_facts:
                _check_budget(stats, stats.facts_derived, None, max_facts)
    return EvaluationResult(working, derived_keys, stats)


def evaluate(
    program: Program,
    database: Database,
    method: str = "seminaive",
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_planner: bool = True,
    plan_cache: Optional[PlanCache] = None,
    vectorized: bool = True,
    meter=None,
    workers: Optional[int] = None,
    parallel_backend: str = "auto",
) -> EvaluationResult:
    """Dispatch to a bottom-up strategy by name."""
    if method == "naive":
        return evaluate_naive(
            program, database, max_iterations, max_facts, use_planner,
            plan_cache, vectorized, meter, workers, parallel_backend,
        )
    if method == "seminaive":
        return evaluate_seminaive(
            program, database, max_iterations, max_facts, use_planner,
            plan_cache, vectorized, meter, workers, parallel_backend,
        )
    raise ValueError(f"unknown evaluation method {method!r}")


def answer_tuples(
    result: EvaluationResult,
    query_literal: Literal,
) -> Set[FactTuple]:
    """Apply the query's selection/projection to an evaluation result.

    Returns the set of bindings for the query's free positions, i.e. the
    *answer* of Section 1.1 ("the set of bindings to the vector of
    variables X that make the query expression true").
    """
    free_positions = [
        i for i, arg in enumerate(query_literal.args) if not arg.is_ground()
    ]
    answers: Set[FactTuple] = set()
    for row in result.database.tuples(query_literal.pred_key):
        binding = match_sequences(query_literal.args, row)
        if binding is None:
            continue
        answers.add(tuple(row[i] for i in free_positions))
    return answers
