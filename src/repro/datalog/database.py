"""Extensional/intensional fact storage: columnar, ID-interned relations.

Columnar layout
---------------

A :class:`Relation` no longer stores Python tuples of
:class:`~repro.datalog.terms.Term`.  Ground terms are interned once into
dense integer IDs by the process-wide
:class:`~repro.datalog.catalog.TermCatalog`, and a relation is stored
column-oriented: one ``array('q')`` of term IDs per argument position,
indexed by *row slot*.  Alongside the columns live

* ``_rowmap`` -- dict mapping each live ID-row (tuple of ints) to its
  slot; this is the dedup set, the membership test, and the anti-join
  probe in one structure;
* ``_live`` -- a bytearray of liveness flags (retraction tombstones a
  slot in O(1) instead of splicing every index bucket);
* hash indexes -- ``dict[int-key, array('q') of slots]`` keyed by the
  projection of the ID-row on a sorted tuple of positions (a bare int,
  not a 1-tuple, for single-position indexes).  Buckets are pruned of
  tombstoned slots lazily at probe time, and the whole relation is
  compacted when dead slots outnumber live ones, so retraction stays
  O(1) expected.

The row-view boundary
---------------------

The row-level API (``__iter__``, ``__contains__``, :meth:`Relation.lookup`,
``add``/``add_many``/``discard``/...) is preserved exactly as a *view*:
terms are interned on the way in and IDs resolved back to canonical
``Term`` objects on the way out (memoized per slot), so no caller
outside the planner has to change.  The batch-vectorized join executor
(:mod:`repro.datalog.planner`) bypasses the view and works on ID
batches directly via ``lookup_ids``/``add_id_row``/``id_rows``;
evaluation results are resolved back to terms only when answers are
materialized (``answer_tuples``, ``QSQResult.query_answers``, session
answer sets, derivation/provenance reconstruction).

Copy-on-write snapshots
-----------------------

:meth:`Database.snapshot` produces a frozen, relation-sharing view of
the database in O(#relations): the snapshot's relation dict references
the *same* :class:`Relation` objects, and both sides mark those keys
*shared*.  The first mutation of a shared relation **through the
database's methods** (``relation()``, ``retract_fact``, ...) clones it
for the mutating side first (:meth:`Relation.copy` preserves indexes),
so the other side never observes the change -- this is the MVCC
substrate the query server (:mod:`repro.server`) builds on: readers pin
a snapshot version while the single writer clones only the relations a
mutation actually touches.  Direct ``Relation`` method calls on objects
obtained *before* the snapshot bypass the guard; the server only
mutates through ``Session``/``Database`` methods, which honor it.

Versioning
----------

Every relation carries a monotone :attr:`Relation.version` counter that
is bumped exactly when the stored tuple set actually changes (a new
tuple inserted, an existing tuple retracted); no-op mutations -- adding
a duplicate, retracting an absent tuple -- leave it untouched.  A
database's :attr:`Database.version` is the sum of its relations'
counters, maintained as an O(1) cached counter: relations created by a
:class:`Database` carry an owner backreference and bump the database
counter in the same mutation, so *any* mutation path (the ``Database``
convenience methods as well as direct ``database.relation(key).add(...)``
calls) advances it without re-summing all relations per check.  The
counter is what makes cross-evaluation answer memoization
(:mod:`repro.session`) cheap: a memoized answer is valid exactly while
the version it was computed at is still current.
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .ast import Literal
from .catalog import term_catalog
from .errors import IntegrityError
from .terms import Constant, Term

__all__ = ["Relation", "Database", "FactTuple", "IdTuple", "MutationEntry"]

FactTuple = Tuple[Term, ...]
IdTuple = Tuple[int, ...]

#: Index key: a bare term ID for single-position indexes, an ID tuple
#: otherwise.
IndexKey = Union[int, IdTuple]

_CATALOG = term_catalog()

_EMPTY_SLOTS: Tuple[int, ...] = ()

#: Compact only when the dead-slot count both dominates the live count
#: and is large enough to amortize the rebuild.
_COMPACT_MIN_DEAD = 16


class Relation:
    """A set of ground tuples stored as ID columns with hash indexes.

    Indexes are keyed by a sorted tuple of positions; each maps the
    ID projection of a row on those positions to an ``array('q')`` of
    row slots with that projection.

    :attr:`version` counts the mutations that changed the tuple set
    (inserts of new tuples, retractions of present ones); it is monotone
    and feeds :attr:`Database.version` through the ``owner``
    backreference.
    """

    __slots__ = (
        "name",
        "arity",
        "version",
        "owner",
        "_columns",
        "_rowmap",
        "_live",
        "_dead",
        "_term_rows",
        "_indexes",
    )

    def __init__(self, name: str, arity: Optional[int] = None):
        self.name = name
        self.arity = arity
        self.version = 0
        self.owner: Optional["Database"] = None
        self._columns: Optional[List[array]] = (
            None if arity is None else [array("q") for _ in range(arity)]
        )
        self._rowmap: Dict[IdTuple, int] = {}
        self._live = bytearray()
        self._dead = 0
        self._term_rows: List[Optional[FactTuple]] = []
        self._indexes: Dict[Tuple[int, ...], Dict[IndexKey, array]] = {}

    def __len__(self) -> int:
        return len(self._rowmap)

    def __iter__(self) -> Iterator[FactTuple]:
        term_row = self.term_row
        return iter([term_row(slot) for slot in self._rowmap.values()])

    def __contains__(self, row: FactTuple) -> bool:
        id_of = _CATALOG.id_of
        ids = tuple(id_of(term) for term in row)
        return -1 not in ids and ids in self._rowmap

    # ------------------------------------------------------------------
    # version bookkeeping
    # ------------------------------------------------------------------
    def _bump(self, count: int) -> None:
        self.version += count
        owner = self.owner
        if owner is not None:
            owner._version += count

    def _capture(self, idrows: Iterable[IdTuple], sign: int) -> None:
        """Append actual set changes to the owner's active mutation logs.

        Called only for mutations that changed the tuple set (the same
        condition that bumps :attr:`version`), so a log replays to the
        exact net delta: no-op inserts and absent retracts never appear.
        """
        owner = self.owner
        if owner is None:
            return
        logs = owner._mutation_logs
        if not logs:
            return
        name = self.name
        entries = [(name, idrow, sign) for idrow in idrows]
        for log in logs:
            log.extend(entries)

    # ------------------------------------------------------------------
    # insertion (term-level view)
    # ------------------------------------------------------------------
    def add(self, row: Iterable[Term]) -> bool:
        """Insert a tuple; returns True when it was new."""
        row = tuple(row)
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}: arity mismatch, expected "
                f"{self.arity}, got tuple of length {len(row)}"
            )
        try:
            idrow = _CATALOG.intern_row(row)
        except ValueError:
            raise ValueError(
                f"relation {self.name}: tuple {row} is not ground"
            ) from None
        return self._insert(idrow, row)

    def add_many(self, rows: Iterable[Iterable[Term]]) -> int:
        """Insert many tuples; returns the number that were new.

        Bulk fast path: rows are validated and interned up front (so a
        bad row leaves the relation untouched, unlike repeated
        :meth:`add` calls which keep the prefix), deduplicated against
        ``_rowmap``, and each registered index is brought up to date in
        a single batch pass over the fresh slots.
        """
        arity = self.arity
        intern_row = _CATALOG.intern_row
        idrows: List[IdTuple] = []
        term_rows: List[FactTuple] = []
        append_id = idrows.append
        append_term = term_rows.append
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                if arity is None:
                    arity = len(row)
                else:
                    raise ValueError(
                        f"relation {self.name}: arity mismatch, expected "
                        f"{arity}, got tuple of length {len(row)}"
                    )
            try:
                append_id(intern_row(row))
            except ValueError:
                raise ValueError(
                    f"relation {self.name}: tuple {row} is not ground"
                ) from None
            append_term(row)
        if not idrows:
            return 0
        self.arity = arity
        columns = self._columns
        if columns is None:
            columns = self._columns = [array("q") for _ in range(arity)]
        rowmap = self._rowmap
        live = self._live
        base = len(live)
        fresh_ids: List[IdTuple] = []
        fresh_terms: List[FactTuple] = []
        for idrow, row in zip(idrows, term_rows):
            if idrow in rowmap:
                continue
            # claiming the rowmap slot immediately also dedups within
            # the batch itself
            rowmap[idrow] = base + len(fresh_ids)
            fresh_ids.append(idrow)
            fresh_terms.append(row)
        n_fresh = len(fresh_ids)
        if not n_fresh:
            return 0
        for p, column in enumerate(columns):
            column.extend([idrow[p] for idrow in fresh_ids])
        live.extend(b"\x01" * n_fresh)
        self._term_rows.extend(fresh_terms)
        self._bump(n_fresh)
        self._capture(fresh_ids, 1)
        for positions, index in self._indexes.items():
            # specialized key construction: nearly all registered
            # indexes cover one or two positions
            if len(positions) == 1:
                (p0,) = positions
                for offset, idrow in enumerate(fresh_ids):
                    key: IndexKey = idrow[p0]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = array("q", (base + offset,))
                    else:
                        bucket.append(base + offset)
            elif len(positions) == 2:
                p0, p1 = positions
                for offset, idrow in enumerate(fresh_ids):
                    key = (idrow[p0], idrow[p1])
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = array("q", (base + offset,))
                    else:
                        bucket.append(base + offset)
            else:
                for offset, idrow in enumerate(fresh_ids):
                    key = tuple(idrow[i] for i in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = array("q", (base + offset,))
                    else:
                        bucket.append(base + offset)
        return n_fresh

    # ------------------------------------------------------------------
    # insertion / probing (ID-level, used by the batch executor)
    # ------------------------------------------------------------------
    def add_id_row(self, idrow: IdTuple) -> bool:
        """Insert an already-interned ID row; returns True when new."""
        if self.arity is None:
            self.arity = len(idrow)
        elif len(idrow) != self.arity:
            raise ValueError(
                f"relation {self.name}: arity mismatch, expected "
                f"{self.arity}, got tuple of length {len(idrow)}"
            )
        return self._insert(idrow, None)

    def add_id_rows(self, idrows: Iterable[IdTuple]) -> List[IdTuple]:
        """Bulk :meth:`add_id_row`; returns the rows that were new.

        The batch engine's insert path: duplicates cost one ``_rowmap``
        membership check, fresh rows are appended to the columns in one
        pass, and each registered index is brought up to date in a
        single batch pass over the fresh slots.
        """
        arity = self.arity
        rowmap = self._rowmap
        live = self._live
        base = len(live)
        fresh_rows: List[IdTuple] = []
        for idrow in idrows:
            if idrow in rowmap:
                continue
            if len(idrow) != arity:
                if arity is None:
                    arity = self.arity = len(idrow)
                    self._columns = [array("q") for _ in range(arity)]
                else:
                    raise ValueError(
                        f"relation {self.name}: arity mismatch, expected "
                        f"{arity}, got tuple of length {len(idrow)}"
                    )
            # claiming the rowmap slot immediately also dedups within
            # the batch itself
            rowmap[idrow] = base + len(fresh_rows)
            fresh_rows.append(idrow)
        n_fresh = len(fresh_rows)
        if not n_fresh:
            return fresh_rows
        columns = self._columns
        if columns is None:
            columns = self._columns = [array("q") for _ in range(arity)]
        for p, column in enumerate(columns):
            column.extend([row[p] for row in fresh_rows])
        live.extend(b"\x01" * n_fresh)
        self._term_rows.extend([None] * n_fresh)
        self._bump(n_fresh)
        self._capture(fresh_rows, 1)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                (p0,) = positions
                for offset, idrow in enumerate(fresh_rows):
                    key = idrow[p0]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = array("q", (base + offset,))
                    else:
                        bucket.append(base + offset)
            else:
                for offset, idrow in enumerate(fresh_rows):
                    key = tuple(idrow[i] for i in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = array("q", (base + offset,))
                    else:
                        bucket.append(base + offset)
        return fresh_rows

    def _insert(self, idrow: IdTuple, term_row: Optional[FactTuple]) -> bool:
        rowmap = self._rowmap
        if idrow in rowmap:
            return False
        columns = self._columns
        if columns is None:
            columns = self._columns = [array("q") for _ in range(len(idrow))]
        live = self._live
        slot = len(live)
        rowmap[idrow] = slot
        for column, value in zip(columns, idrow):
            column.append(value)
        live.append(1)
        self._term_rows.append(term_row)
        self._bump(1)
        self._capture((idrow,), 1)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key: IndexKey = idrow[positions[0]]
            elif len(positions) == 2:
                key = (idrow[positions[0]], idrow[positions[1]])
            else:
                key = tuple(idrow[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = array("q", (slot,))
            else:
                bucket.append(slot)
        return True

    def id_rows(self) -> Iterable[IdTuple]:
        """The live ID rows (insertion order)."""
        return self._rowmap.keys()

    def has_id_row(self, idrow: IdTuple) -> bool:
        return idrow in self._rowmap

    def all_slots(self) -> List[int]:
        """The live slots (insertion order)."""
        return list(self._rowmap.values())

    def term_row(self, slot: int) -> FactTuple:
        """Resolve a slot back to its tuple of terms (memoized)."""
        term_rows = self._term_rows
        row = term_rows[slot]
        if row is None:
            resolve = _CATALOG.resolve
            row = tuple(resolve(column[slot]) for column in self._columns)
            term_rows[slot] = row
        return row

    def lookup_ids(
        self, positions: Tuple[int, ...], key: IndexKey
    ) -> Sequence[int]:
        """Slots of rows whose ID projection on ``positions`` is ``key``.

        ``positions`` must already be normalized (sorted, unique);
        ``key`` is a bare int for a single position, an ID tuple
        otherwise.  Tombstoned slots are pruned from the probed bucket
        in place, so a bucket is paid for at most once per retraction.
        """
        if not positions:
            return self.all_slots()
        index = self._indexes.get(positions)
        if index is None:
            index = self._build_index(positions)
        bucket = index.get(key)
        if bucket is None:
            return _EMPTY_SLOTS
        if not self._dead:
            return bucket
        live = self._live
        pruned = [slot for slot in bucket if live[slot]]
        if len(pruned) != len(bucket):
            if pruned:
                index[key] = array("q", pruned)
            else:
                # pop, not del: concurrent readers of a shared snapshot
                # relation may both prune the same exhausted bucket
                index.pop(key, None)
        return pruned

    def probe_index(
        self, positions: Tuple[int, ...]
    ) -> Optional[Dict[IndexKey, array]]:
        """The raw key->slots dict for ``positions``, when exact.

        The batch executor's bulk-probe fast path: when no slot is
        tombstoned every bucket is exact, so the executor can hash keys
        straight into the dict without a :meth:`lookup_ids` call per
        distinct key.  Returns None for empty positions or while
        tombstones exist (callers then fall back to :meth:`lookup_ids`,
        which prunes lazily).
        """
        if not positions or self._dead:
            return None
        index = self._indexes.get(positions)
        if index is None:
            index = self._build_index(positions)
        return index

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def register_index(self, positions: Tuple[int, ...]) -> None:
        """Build (or reuse) the hash index on ``positions`` eagerly.

        The join planner calls this up front for every index position
        tuple its plans will probe, so fixpoint rounds never pay the
        one-off O(n) lazy build mid-join.  Registered indexes are kept
        current incrementally by :meth:`add`.
        """
        positions = tuple(sorted(set(self._normalize_positions(positions))))
        if positions and positions not in self._indexes:
            self._build_index(positions)

    def _normalize_positions(
        self, positions: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        positions = tuple(positions)
        if any(p < 0 for p in positions) or (
            self.arity is not None
            and any(p >= self.arity for p in positions)
        ):
            raise ValueError(
                f"relation {self.name}: index positions {positions} out of "
                f"range for arity {self.arity}"
            )
        return positions

    def _build_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[IndexKey, array]:
        index: Dict[IndexKey, array] = {}
        if len(positions) == 1:
            (p0,) = positions
            for idrow, slot in self._rowmap.items():
                key: IndexKey = idrow[p0]
                bucket = index.get(key)
                if bucket is None:
                    index[key] = array("q", (slot,))
                else:
                    bucket.append(slot)
        else:
            for idrow, slot in self._rowmap.items():
                key = tuple(idrow[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = array("q", (slot,))
                else:
                    bucket.append(slot)
        self._indexes[positions] = index
        return index

    # ------------------------------------------------------------------
    # term-level lookup (row view)
    # ------------------------------------------------------------------
    def lookup(
        self, positions: Tuple[int, ...], key: FactTuple
    ) -> List[FactTuple]:
        """Tuples whose projection on ``positions`` equals ``key``.

        An empty position tuple returns all tuples.  Positions need not
        arrive sorted: they are normalized (sorted together with ``key``,
        duplicates checked for consistency) before the index is consulted,
        so an unsorted caller gets correct answers instead of a silently
        inconsistent shadow index.
        """
        positions = self._normalize_positions(positions)
        term_row = self.term_row
        if not positions:
            return [term_row(slot) for slot in self._rowmap.values()]
        key = tuple(key)
        if len(key) != len(positions):
            raise ValueError(
                f"relation {self.name}: lookup key {key} does not match "
                f"positions {positions}"
            )
        if any(
            positions[i] >= positions[i + 1]
            for i in range(len(positions) - 1)
        ):
            sorted_positions: List[int] = []
            sorted_key: List[Term] = []
            for pos, value in sorted(
                zip(positions, key), key=lambda pair: pair[0]
            ):
                if sorted_positions and sorted_positions[-1] == pos:
                    if sorted_key[-1] != value:
                        return []  # same position constrained two ways
                    continue
                sorted_positions.append(pos)
                sorted_key.append(value)
            positions = tuple(sorted_positions)
            key = tuple(sorted_key)
        id_of = _CATALOG.id_of
        ids = tuple(id_of(term) for term in key)
        if -1 in ids:
            return []  # a never-interned term cannot match any row
        id_key: IndexKey = ids[0] if len(ids) == 1 else ids
        return [term_row(slot) for slot in self.lookup_ids(positions, id_key)]

    # ------------------------------------------------------------------
    # retraction
    # ------------------------------------------------------------------
    def discard(self, row: Iterable[Term]) -> bool:
        """Retract a tuple; returns True when it was present.

        O(1) expected: the slot is tombstoned (``_live`` flag cleared)
        rather than spliced out of every index bucket; buckets shed dead
        slots lazily at probe time, and the relation compacts itself
        when dead slots outnumber live ones.
        """
        id_of = _CATALOG.id_of
        idrow = tuple(id_of(term) for term in row)
        if -1 in idrow:
            return False
        return self._discard_id_row(idrow)

    def discard_id_row(self, idrow: IdTuple) -> bool:
        """Retract an already-interned ID row; returns True when it was
        present (the ID-level twin of :meth:`discard`)."""
        return self._discard_id_row(idrow)

    def _discard_id_row(self, idrow: IdTuple) -> bool:
        slot = self._rowmap.pop(idrow, None)
        if slot is None:
            return False
        self._live[slot] = 0
        self._term_rows[slot] = None
        self._dead += 1
        self._bump(1)
        self._capture((idrow,), -1)
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead > len(self._rowmap)
        ):
            self._compact()
        return True

    def discard_many(self, rows: Iterable[Iterable[Term]]) -> int:
        """Retract many tuples; returns the number that were present."""
        return sum(1 for row in rows if self.discard(row))

    def discard_id_rows(self, idrows: Iterable[IdTuple]) -> int:
        """Retract many ID rows with one version bump and one capture.

        Bulk twin of :meth:`discard_id_row` for the incremental
        maintenance deletion phases, where per-row bookkeeping would
        dominate small deltas.
        """
        rowmap = self._rowmap
        live = self._live
        term_rows = self._term_rows
        gone = []
        for idrow in idrows:
            slot = rowmap.pop(idrow, None)
            if slot is None:
                continue
            live[slot] = 0
            term_rows[slot] = None
            gone.append(idrow)
        if not gone:
            return 0
        self._dead += len(gone)
        self._bump(len(gone))
        self._capture(gone, -1)
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead > len(self._rowmap)
        ):
            self._compact()
        return len(gone)

    def _compact(self) -> None:
        """Drop tombstoned slots and rebuild columns and indexes."""
        live = self._live
        keep = [slot for slot in range(len(live)) if live[slot]]
        remap = {old: new for new, old in enumerate(keep)}
        columns = self._columns
        if columns is not None:
            self._columns = [
                array("q", (column[slot] for slot in keep))
                for column in columns
            ]
        term_rows = self._term_rows
        self._term_rows = [term_rows[slot] for slot in keep]
        self._live = bytearray(b"\x01" * len(keep))
        self._rowmap = {
            idrow: remap[slot] for idrow, slot in self._rowmap.items()
        }
        self._dead = 0
        for positions in list(self._indexes):
            self._build_index(positions)

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self) -> "Relation":
        """An independent copy.

        Registered index positions *and* their buckets are carried over
        (raw ``array`` copies -- no Term is touched), so consumers of
        ``Database.copy()``/``seeded_database`` never pay lazy O(n)
        index rebuilds mid-join.

        Safe to call on a snapshot-shared relation while other reader
        threads probe it: the index dicts are materialized with
        ``list()`` before iteration, so a concurrent lazy index build
        or bucket prune (both value-idempotent under the GIL) cannot
        raise ``RuntimeError: dict changed size during iteration``.
        """
        duplicate = Relation.__new__(Relation)
        duplicate.name = self.name
        duplicate.arity = self.arity
        duplicate.version = self.version
        duplicate.owner = None
        columns = self._columns
        duplicate._columns = (
            None if columns is None else [column[:] for column in columns]
        )
        duplicate._rowmap = dict(self._rowmap)
        duplicate._live = bytearray(self._live)
        duplicate._dead = self._dead
        duplicate._term_rows = list(self._term_rows)
        duplicate._indexes = {
            positions: {
                key: bucket[:] for key, bucket in list(index.items())
            }
            for positions, index in list(self._indexes.items())
        }
        return duplicate

    # ------------------------------------------------------------------
    # accounting / integrity
    # ------------------------------------------------------------------
    def estimated_bytes(self) -> int:
        """Coarse storage estimate for the memory budget.

        Counts 8 bytes per column cell, then per index: 8 bytes per
        bucket slot (every stored row appears in every index exactly
        once) *plus* a flat per-bucket charge -- each distinct key owns
        an ``array('q')`` object (~64 bytes of header) and a dict entry
        (~50 bytes amortized), which dominates on indexes with small
        buckets and used to be dropped entirely, letting
        ``max_memory_bytes`` budgets undercount index-heavy workloads
        by several x.  ``len(index)`` is the bucket count, so this stays
        O(#indexes) and never walks buckets -- cheap enough for a
        per-round check.  A flat per-row charge covers the rowmap entry
        (key tuple + dict slot).
        """
        n = len(self._live)
        arity = self.arity or 0
        total = 8 * arity * n + 96 * len(self._rowmap)
        for index in self._indexes.values():
            total += 8 * n + 114 * len(index)
        return total

    def check_invariants(self) -> bool:
        """Verify the columnar storage invariants; raises IntegrityError.

        The oracle behind ``Database.check_integrity`` and the
        fault-injection atomicity property: columns equal-length,
        rowmap and columns agree, liveness flags match the tombstone
        count, memoized term rows resolve to their ID rows, every index
        bucket references in-range slots whose live members project to
        the bucket key and covers every live row, and the version
        counter has kept pace with the live tuple count.  Returns True
        so ``assert rel.check_invariants()`` reads naturally.
        """

        def fail(invariant: str, detail: str):
            raise IntegrityError(
                f"relation {self.name}: {invariant}: {detail}",
                relation=self.name,
                invariant=invariant,
            )

        n = len(self._live)
        columns = self._columns
        if columns is None:
            if n or self._rowmap or self._term_rows:
                fail("columns", "no columns but rows recorded")
        else:
            if self.arity is None or len(columns) != self.arity:
                fail(
                    "columns",
                    f"{len(columns)} columns for arity {self.arity}",
                )
            for p, column in enumerate(columns):
                if len(column) != n:
                    fail(
                        "columns",
                        f"column {p} holds {len(column)} cells, "
                        f"expected {n}",
                    )
        if len(self._term_rows) != n:
            fail(
                "term-rows",
                f"{len(self._term_rows)} memo slots for {n} rows",
            )
        dead = n - sum(self._live)
        if dead != self._dead:
            fail(
                "tombstones",
                f"counter says {self._dead} dead slots, flags say {dead}",
            )
        if len(self._rowmap) != n - dead:
            fail(
                "rowmap",
                f"{len(self._rowmap)} mapped rows for {n - dead} live slots",
            )
        seen_slots = set()
        resolve = _CATALOG.resolve
        for idrow, slot in self._rowmap.items():
            if not 0 <= slot < n:
                fail("rowmap", f"slot {slot} out of range for {n} rows")
            if not self._live[slot]:
                fail("rowmap", f"row {idrow} maps to tombstoned slot {slot}")
            if slot in seen_slots:
                fail("rowmap", f"slot {slot} mapped twice")
            seen_slots.add(slot)
            if columns is not None:
                stored = tuple(column[slot] for column in columns)
                if stored != idrow:
                    fail(
                        "rowmap",
                        f"slot {slot} stores {stored}, rowmap says {idrow}",
                    )
            memo = self._term_rows[slot]
            if memo is not None:
                resolved = tuple(resolve(term_id) for term_id in idrow)
                if memo != resolved:
                    fail(
                        "term-rows",
                        f"slot {slot} memoizes {memo}, ids resolve to "
                        f"{resolved}",
                    )
        for positions, index in self._indexes.items():
            covered = set()
            for key, bucket in index.items():
                for slot in bucket:
                    if not 0 <= slot < n:
                        fail(
                            "index",
                            f"index {positions} bucket {key} references "
                            f"slot {slot} beyond {n} rows",
                        )
                    if not self._live[slot]:
                        continue  # stale entries are pruned lazily
                    if columns is not None:
                        projection = (
                            columns[positions[0]][slot]
                            if len(positions) == 1
                            else tuple(columns[p][slot] for p in positions)
                        )
                        if projection != key:
                            fail(
                                "index",
                                f"index {positions} bucket {key} holds live "
                                f"slot {slot} projecting to {projection}",
                            )
                    if slot in covered:
                        fail(
                            "index",
                            f"index {positions} lists live slot {slot} twice",
                        )
                    covered.add(slot)
            if covered != seen_slots:
                missing = sorted(seen_slots - covered)
                fail(
                    "index",
                    f"index {positions} misses live slots {missing[:5]}",
                )
        if self.version < len(self._rowmap):
            fail(
                "version",
                f"version {self.version} below live count "
                f"{len(self._rowmap)}",
            )
        return True

    def __repr__(self):
        return f"Relation({self.name!r}, {len(self)} tuples)"


#: One captured mutation: ``(pred_key, id_row, +1 | -1)``.
MutationEntry = Tuple[str, IdTuple, int]


class Database:
    """A named collection of relations, keyed by predicate key."""

    __slots__ = ("_relations", "_version", "_mutation_logs", "_shared")

    def __init__(self):
        self._relations: Dict[str, Relation] = {}
        self._version = 0
        #: active mutation logs (incremental-view-maintenance capture):
        #: every actual set change on an owned relation appends a
        #: ``(pred_key, idrow, sign)`` entry to each
        self._mutation_logs: Tuple[List[MutationEntry], ...] = ()
        #: predicate keys whose Relation object is shared with a live
        #: :meth:`snapshot`; mutation paths clone these first (COW)
        self._shared: Set[str] = set()

    # ------------------------------------------------------------------
    # copy-on-write snapshots (the MVCC substrate of repro.server)
    # ------------------------------------------------------------------
    def snapshot(self) -> "Database":
        """A frozen, relation-sharing snapshot of this database.

        O(#relations): no tuple is copied.  The snapshot references the
        same :class:`Relation` objects; both databases mark those keys
        shared, and the first mutation of a shared relation *through
        either database's methods* clones it for the mutating side
        before touching it, so the other side keeps observing the state
        at snapshot time.  A writer that touches k of n relations
        between snapshots therefore pays k relation copies, not n.

        Shared relations keep their ``owner`` backreference to the
        database that created them (their version bumps -- which can
        only happen after a clone replaced them on the owning side --
        never corrupt the snapshot), and :meth:`check_integrity`
        accepts foreign ownership exactly for keys marked shared.
        """
        snap = Database()
        snap._relations = dict(self._relations)
        snap._version = self._version
        snap._shared = set(self._relations)
        self._shared = set(self._relations)
        return snap

    def _writable(self, pred_key: str) -> Optional[Relation]:
        """The relation for a mutation path: clones a snapshot-shared
        one (preserving its indexes) before handing it out."""
        rel = self._relations.get(pred_key)
        if rel is not None and pred_key in self._shared:
            rel = rel.copy()
            rel.owner = self
            self._relations[pred_key] = rel
            self._shared.discard(pred_key)
        return rel

    # ------------------------------------------------------------------
    # mutation capture (incremental view maintenance)
    # ------------------------------------------------------------------
    def start_mutation_log(self) -> List[MutationEntry]:
        """Begin capturing this database's mutations into a fresh log.

        Returns the log: a plain list of ``(pred_key, idrow, sign)``
        entries, appended to by every mutation that actually changes a
        relation's tuple set (through *any* path -- the ``Database``
        convenience methods, bulk relation inserts, or the ID-level
        executor API).  No-op mutations are never recorded, so replaying
        a log yields the exact net delta.  The caller owns the list (it
        may drain it in place); call :meth:`stop_mutation_log` with the
        same list to detach it.  Multiple concurrent logs are allowed.
        """
        log: List[MutationEntry] = []
        self._mutation_logs = self._mutation_logs + (log,)
        return log

    def stop_mutation_log(self, log: List[MutationEntry]) -> None:
        """Detach a log returned by :meth:`start_mutation_log`."""
        self._mutation_logs = tuple(
            active for active in self._mutation_logs if active is not log
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def relation(self, pred_key: str) -> Relation:
        """Get (or create) the relation for a predicate key.

        This is a mutation entry point: a snapshot-shared relation is
        cloned for this database first (copy-on-write), so callers may
        freely mutate the returned object.
        """
        rel = self._writable(pred_key)
        if rel is None:
            rel = Relation(pred_key)
            rel.owner = self
            self._relations[pred_key] = rel
        return rel

    def get(self, pred_key: str) -> Optional[Relation]:
        return self._relations.get(pred_key)

    def add_fact(self, literal: Literal) -> bool:
        """Insert a ground literal as a tuple of its relation."""
        if not literal.is_ground():
            raise ValueError(f"fact {literal} is not ground")
        return self.relation(literal.pred_key).add(literal.args)

    def add_facts(self, literals: Iterable[Literal]) -> int:
        return sum(1 for lit in literals if self.add_fact(lit))

    def add_tuples(self, pred_key: str, rows: Iterable[Iterable[Term]]) -> int:
        return self.relation(pred_key).add_many(rows)

    def add_values(self, pred_key: str, rows: Iterable[Iterable[object]]) -> int:
        """Insert rows of raw Python values, wrapping them in Constants."""
        wrapped = (tuple(Constant(v) for v in row) for row in rows)
        return self.relation(pred_key).add_many(wrapped)

    # ------------------------------------------------------------------
    # retraction
    # ------------------------------------------------------------------
    def retract_fact(self, literal: Literal) -> bool:
        """Retract a ground literal; returns True when it was present."""
        if not literal.is_ground():
            raise ValueError(f"fact {literal} is not ground")
        rel = self._writable(literal.pred_key)
        if rel is None:
            return False
        return rel.discard(literal.args)

    def retract_facts(self, literals: Iterable[Literal]) -> int:
        return sum(1 for lit in literals if self.retract_fact(lit))

    def retract_tuples(
        self, pred_key: str, rows: Iterable[Iterable[Term]]
    ) -> int:
        rel = self._writable(pred_key)
        if rel is None:
            return 0
        return rel.discard_many(rows)

    def retract_values(
        self, pred_key: str, rows: Iterable[Iterable[object]]
    ) -> int:
        """Retract rows of raw Python values, wrapping them in Constants."""
        wrapped = (tuple(Constant(v) for v in row) for row in rows)
        return self.retract_tuples(pred_key, wrapped)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter over all relations, O(1).

        Equal to the sum of the relations' counters, but maintained
        incrementally: every owned relation bumps this counter in the
        same mutation that bumps its own, whichever path performed it
        (``Database`` methods or direct :class:`Relation` calls).
        Relations are created but never removed, so the counter only
        grows; no-op mutations (duplicate insert, absent retract) do
        not bump it, which is exactly the invariant the answer memo in
        :mod:`repro.session` relies on.
        """
        return self._version

    def predicate_keys(self) -> Set[str]:
        return set(self._relations)

    def has_fact(self, literal: Literal) -> bool:
        rel = self._relations.get(literal.pred_key)
        return rel is not None and tuple(literal.args) in rel

    def tuples(self, pred_key: str) -> Set[FactTuple]:
        rel = self._relations.get(pred_key)
        if rel is None:
            return set()
        return set(rel)

    def total_facts(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def fact_counts(self) -> Dict[str, int]:
        return {key: len(rel) for key, rel in self._relations.items()}

    def copy(self) -> "Database":
        duplicate = Database()
        for key, rel in self._relations.items():
            dup_rel = rel.copy()
            dup_rel.owner = duplicate
            duplicate._relations[key] = dup_rel
        duplicate._version = self._version
        return duplicate

    def estimated_bytes(self) -> int:
        """Coarse storage estimate over all relations (memory budget)."""
        return sum(
            128 + rel.estimated_bytes() for rel in self._relations.values()
        )

    def check_integrity(self) -> bool:
        """Verify every relation's invariants and the version counter.

        Raises :class:`IntegrityError` on the first violation; returns
        True otherwise.  This is the oracle the fault-injection
        atomicity property asserts after every aborted evaluation.
        """
        total = 0
        for key, rel in self._relations.items():
            rel.check_invariants()
            if rel.owner is not self and key not in self._shared:
                raise IntegrityError(
                    f"relation {key}: owner backreference does not point "
                    f"at this database",
                    relation=key,
                    invariant="owner",
                )
            total += rel.version
        if total != self._version:
            raise IntegrityError(
                f"database version {self._version} != sum of relation "
                f"versions {total}",
                invariant="version",
            )
        return True

    def merged_with(self, other: "Database") -> "Database":
        """A new database containing the facts of both."""
        merged = self.copy()
        for key, rel in other._relations.items():
            merged.relation(key).add_many(rel)
        return merged

    def __contains__(self, pred_key: str) -> bool:
        return pred_key in self._relations

    def __repr__(self):
        parts = ", ".join(
            f"{key}:{len(rel)}" for key, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
