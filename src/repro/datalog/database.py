"""Extensional/intensional fact storage: indexed relations.

A :class:`Relation` stores ground tuples (tuples of ground
:class:`~repro.datalog.terms.Term`) and lazily builds hash indexes keyed
by subsets of argument positions.  The bottom-up engine asks for the
tuples matching the constants in the currently bound positions of a body
literal, which the index answers in O(1) expected time -- this is what
makes the magic-restricted joins cheap, mirroring the selection pushing
the paper's transformations are designed to enable.

A :class:`Database` is a mapping from predicate keys (see
:attr:`Literal.pred_key`) to relations.

Versioning
----------

Every relation carries a monotone :attr:`Relation.version` counter that
is bumped exactly when the stored tuple set actually changes (a new
tuple inserted, an existing tuple retracted); no-op mutations -- adding
a duplicate, retracting an absent tuple -- leave it untouched.  A
database's :attr:`Database.version` is the sum of its relations'
counters, so *any* mutation path (the ``Database`` convenience methods
as well as direct ``database.relation(key).add(...)`` calls) advances
it.  The counter is what makes cross-evaluation answer memoization
(:mod:`repro.session`) cheap: a memoized answer is valid exactly while
the version it was computed at is still current.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .ast import Literal
from .terms import Constant, Term

__all__ = ["Relation", "Database", "FactTuple"]

FactTuple = Tuple[Term, ...]


class Relation:
    """A set of ground tuples with lazy hash indexes.

    Indexes are keyed by a sorted tuple of positions; each maps the
    projection of a tuple on those positions to the list of tuples with
    that projection.

    :attr:`version` counts the mutations that changed the tuple set
    (inserts of new tuples, retractions of present ones); it is monotone
    and feeds :attr:`Database.version`.
    """

    __slots__ = ("name", "arity", "version", "_tuples", "_indexes")

    def __init__(self, name: str, arity: Optional[int] = None):
        self.name = name
        self.arity = arity
        self.version = 0
        self._tuples: Set[FactTuple] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[FactTuple, List[FactTuple]]] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[FactTuple]:
        return iter(self._tuples)

    def __contains__(self, row: FactTuple) -> bool:
        return tuple(row) in self._tuples

    def add(self, row: Iterable[Term]) -> bool:
        """Insert a tuple; returns True when it was new."""
        row = tuple(row)
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}: arity mismatch, expected "
                f"{self.arity}, got tuple of length {len(row)}"
            )
        for term in row:
            if not term.is_ground():
                raise ValueError(
                    f"relation {self.name}: tuple {row} is not ground"
                )
        if row in self._tuples:
            return False
        self._tuples.add(row)
        self.version += 1
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            index.setdefault(key, []).append(row)
        return True

    def add_many(self, rows: Iterable[Iterable[Term]]) -> int:
        """Insert many tuples; returns the number that were new.

        Bulk fast path: rows are validated up front (so a bad row leaves
        the relation untouched, unlike repeated :meth:`add` calls which
        keep the prefix), deduplicated with one set difference, and each
        registered index is brought up to date in a single batch pass --
        instead of paying the per-row call and per-row index upkeep of
        repeated :meth:`add`.
        """
        normalized: List[FactTuple] = []
        append = normalized.append
        arity = self.arity
        constant = Constant
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                if arity is None:
                    arity = len(row)
                else:
                    raise ValueError(
                        f"relation {self.name}: arity mismatch, expected "
                        f"{arity}, got tuple of length {len(row)}"
                    )
            for term in row:
                # constants are ground by construction; only composite
                # terms need the recursive check
                if type(term) is not constant and not term.is_ground():
                    raise ValueError(
                        f"relation {self.name}: tuple {row} is not ground"
                    )
            append(row)
        if not normalized:
            return 0
        self.arity = arity
        tuples = self._tuples
        fresh = set(normalized) - tuples
        if not fresh:
            return 0
        tuples |= fresh
        self.version += len(fresh)
        for positions, index in self._indexes.items():
            setdefault = index.setdefault
            # specialized key construction: the generator-expression
            # tuple build dominates index upkeep, and nearly all
            # registered indexes cover one or two positions
            if len(positions) == 1:
                p0, = positions
                for row in fresh:
                    setdefault((row[p0],), []).append(row)
            elif len(positions) == 2:
                p0, p1 = positions
                for row in fresh:
                    setdefault((row[p0], row[p1]), []).append(row)
            else:
                for row in fresh:
                    key = tuple(row[i] for i in positions)
                    setdefault(key, []).append(row)
        return len(fresh)

    def register_index(self, positions: Tuple[int, ...]) -> None:
        """Build (or reuse) the hash index on ``positions`` eagerly.

        The join planner calls this up front for every index position
        tuple its plans will probe, so fixpoint rounds never pay the
        one-off O(n) lazy build mid-join.  Registered indexes are kept
        current incrementally by :meth:`add`.
        """
        positions = tuple(sorted(set(self._normalize_positions(positions))))
        if positions and positions not in self._indexes:
            self._build_index(positions)

    def _normalize_positions(
        self, positions: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        positions = tuple(positions)
        if any(p < 0 for p in positions) or (
            self.arity is not None
            and any(p >= self.arity for p in positions)
        ):
            raise ValueError(
                f"relation {self.name}: index positions {positions} out of "
                f"range for arity {self.arity}"
            )
        return positions

    def _build_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[FactTuple, List[FactTuple]]:
        index: Dict[FactTuple, List[FactTuple]] = {}
        for row in self._tuples:
            row_key = tuple(row[i] for i in positions)
            index.setdefault(row_key, []).append(row)
        self._indexes[positions] = index
        return index

    def lookup(
        self, positions: Tuple[int, ...], key: FactTuple
    ) -> List[FactTuple]:
        """Tuples whose projection on ``positions`` equals ``key``.

        An empty position tuple returns all tuples.  Positions need not
        arrive sorted: they are normalized (sorted together with ``key``,
        duplicates checked for consistency) before the index is consulted,
        so an unsorted caller gets correct answers instead of a silently
        inconsistent shadow index.
        """
        positions = self._normalize_positions(positions)
        if not positions:
            return list(self._tuples)
        key = tuple(key)
        if len(key) != len(positions):
            raise ValueError(
                f"relation {self.name}: lookup key {key} does not match "
                f"positions {positions}"
            )
        if any(
            positions[i] >= positions[i + 1]
            for i in range(len(positions) - 1)
        ):
            sorted_positions: List[int] = []
            sorted_key: List[Term] = []
            for pos, value in sorted(
                zip(positions, key), key=lambda pair: pair[0]
            ):
                if sorted_positions and sorted_positions[-1] == pos:
                    if sorted_key[-1] != value:
                        return []  # same position constrained two ways
                    continue
                sorted_positions.append(pos)
                sorted_key.append(value)
            positions = tuple(sorted_positions)
            key = tuple(sorted_key)
        index = self._indexes.get(positions)
        if index is None:
            index = self._build_index(positions)
        return index.get(key, [])

    def discard(self, row: Iterable[Term]) -> bool:
        """Retract a tuple; returns True when it was present.

        Registered indexes are kept consistent: the row is removed from
        every index bucket it projects into, and emptied buckets are
        dropped so absent keys keep answering with the shared empty
        list.
        """
        row = tuple(row)
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        self.version += 1
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                continue
            try:
                bucket.remove(row)
            except ValueError:
                pass
            if not bucket:
                del index[key]
        return True

    def discard_many(self, rows: Iterable[Iterable[Term]]) -> int:
        """Retract many tuples; returns the number that were present."""
        return sum(1 for row in rows if self.discard(row))

    def copy(self) -> "Relation":
        duplicate = Relation(self.name, self.arity)
        duplicate._tuples = set(self._tuples)
        duplicate.version = self.version
        return duplicate

    def __repr__(self):
        return f"Relation({self.name!r}, {len(self)} tuples)"


class Database:
    """A named collection of relations, keyed by predicate key."""

    __slots__ = ("_relations",)

    def __init__(self):
        self._relations: Dict[str, Relation] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def relation(self, pred_key: str) -> Relation:
        """Get (or create) the relation for a predicate key."""
        rel = self._relations.get(pred_key)
        if rel is None:
            rel = Relation(pred_key)
            self._relations[pred_key] = rel
        return rel

    def get(self, pred_key: str) -> Optional[Relation]:
        return self._relations.get(pred_key)

    def add_fact(self, literal: Literal) -> bool:
        """Insert a ground literal as a tuple of its relation."""
        if not literal.is_ground():
            raise ValueError(f"fact {literal} is not ground")
        return self.relation(literal.pred_key).add(literal.args)

    def add_facts(self, literals: Iterable[Literal]) -> int:
        return sum(1 for lit in literals if self.add_fact(lit))

    def add_tuples(self, pred_key: str, rows: Iterable[Iterable[Term]]) -> int:
        return self.relation(pred_key).add_many(rows)

    def add_values(self, pred_key: str, rows: Iterable[Iterable[object]]) -> int:
        """Insert rows of raw Python values, wrapping them in Constants."""
        wrapped = (tuple(Constant(v) for v in row) for row in rows)
        return self.relation(pred_key).add_many(wrapped)

    # ------------------------------------------------------------------
    # retraction
    # ------------------------------------------------------------------
    def retract_fact(self, literal: Literal) -> bool:
        """Retract a ground literal; returns True when it was present."""
        if not literal.is_ground():
            raise ValueError(f"fact {literal} is not ground")
        rel = self._relations.get(literal.pred_key)
        if rel is None:
            return False
        return rel.discard(literal.args)

    def retract_facts(self, literals: Iterable[Literal]) -> int:
        return sum(1 for lit in literals if self.retract_fact(lit))

    def retract_tuples(
        self, pred_key: str, rows: Iterable[Iterable[Term]]
    ) -> int:
        rel = self._relations.get(pred_key)
        if rel is None:
            return 0
        return rel.discard_many(rows)

    def retract_values(
        self, pred_key: str, rows: Iterable[Iterable[object]]
    ) -> int:
        """Retract rows of raw Python values, wrapping them in Constants."""
        wrapped = (tuple(Constant(v) for v in row) for row in rows)
        return self.retract_tuples(pred_key, wrapped)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter over all relations.

        The sum of the relations' counters: bumped by every mutation
        that changes a stored tuple set, whichever path performed it
        (``Database`` methods or direct :class:`Relation` calls).
        Relations are created but never removed, so the sum only grows;
        no-op mutations (duplicate insert, absent retract) do not bump
        it, which is exactly the invariant the answer memo in
        :mod:`repro.session` relies on.
        """
        return sum(rel.version for rel in self._relations.values())

    def predicate_keys(self) -> Set[str]:
        return set(self._relations)

    def has_fact(self, literal: Literal) -> bool:
        rel = self._relations.get(literal.pred_key)
        return rel is not None and tuple(literal.args) in rel

    def tuples(self, pred_key: str) -> Set[FactTuple]:
        rel = self._relations.get(pred_key)
        if rel is None:
            return set()
        return set(rel)

    def total_facts(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def fact_counts(self) -> Dict[str, int]:
        return {key: len(rel) for key, rel in self._relations.items()}

    def copy(self) -> "Database":
        duplicate = Database()
        for key, rel in self._relations.items():
            duplicate._relations[key] = rel.copy()
        return duplicate

    def merged_with(self, other: "Database") -> "Database":
        """A new database containing the facts of both."""
        merged = self.copy()
        for key, rel in other._relations.items():
            merged.relation(key).add_many(rel)
        return merged

    def __contains__(self, pred_key: str) -> bool:
        return pred_key in self._relations

    def __repr__(self):
        parts = ", ".join(
            f"{key}:{len(rel)}" for key, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
