"""Exception hierarchy for the Datalog substrate and the rewriting core.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the boundary of the library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """Raised when the surface-syntax parser cannot make sense of its input.

    Carries the offending line and column so tooling can point at the
    problem.
    """

    def __init__(self, message, line=None, column=None, text=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
        self.text = text


class WellFormednessError(ReproError):
    """Raised when a rule violates condition (WF) of Section 1.1.

    (WF): each variable that appears in the head of a rule must also
    appear in its body.
    """


class ConnectivityError(ReproError):
    """Raised when a rule violates condition (C) of Section 1.1.

    (C): the predicate occurrences of a rule must form a single connected
    component (via shared variables).
    """


class SipValidationError(ReproError):
    """Raised when a sip graph violates conditions (1)-(3) of Section 2."""


class AdornmentError(ReproError):
    """Raised for malformed adornment strings or inconsistent adorned use."""


class EvaluationError(ReproError):
    """Raised when bottom-up or top-down evaluation cannot proceed."""


class NonTerminationError(EvaluationError):
    """Raised when evaluation exceeds its iteration or fact budget.

    Bottom-up evaluation of programs with function symbols (and the
    counting transformations on cyclic data, Theorem 10.3) need not
    terminate; the engine converts a configured budget overrun into this
    error instead of looping forever.
    """

    def __init__(self, message, iterations=None, facts=None):
        super().__init__(message)
        self.iterations = iterations
        self.facts = facts


class IntegrityError(ReproError):
    """Raised when a storage invariant of :class:`Relation`/`Database` fails.

    ``Relation.check_invariants`` and ``Database.check_integrity`` raise
    this with a message naming the relation and the violated invariant.
    It indicates a bug in the storage layer (or deliberate corruption in
    a test), never a user error.
    """

    def __init__(self, message, relation=None, invariant=None):
        super().__init__(message)
        self.relation = relation
        self.invariant = invariant


class SafetyError(ReproError):
    """Raised when a safety analysis cannot certify a program/query pair."""


class RewriteError(ReproError):
    """Raised when a rewriting algorithm is applied outside its domain.

    For example: requesting a counting rewrite for a program whose
    reachable argument graph is cyclic (Theorem 10.3) with
    ``require_safe=True``.
    """


class UnsafeNegationError(EvaluationError):
    """Raised when a negated body literal is not range-restricted.

    Safe negation requires every variable of a negated literal to be
    bound by a *positive* body literal of the same rule; otherwise
    ``not p(X)`` would quantify over an infinite complement.  Carries
    the offending rule and variable names so the message is actionable.
    """

    def __init__(self, message, rule=None, variables=()):
        super().__init__(message)
        self.rule = rule
        self.variables = tuple(variables)


class StratificationError(EvaluationError):
    """Raised when a program recurses through negation.

    Stratified semantics require the predicate dependency graph to have
    no cycle containing a negative edge (``win(X) :- move(X, Y),
    not win(Y)`` is the classic offender).  Carries the predicates of
    the offending cycle.
    """

    def __init__(self, message, cycle=()):
        super().__init__(message)
        self.cycle = tuple(cycle)


class UnsupportedProgramError(ReproError):
    """Raised when a pipeline stage cannot handle a (valid) program.

    The magic/supplementary rewrites accept stratified programs through
    the conservative extension (negated literals are carried unchanged
    and their definitions computed completely), but the counting
    rewrites and the QSQ evaluator remain positive-only: they raise
    this error instead of silently treating ``not p`` as ``p``.
    ``--method auto`` resolves stratified programs to the bottom-up
    magic path; the plain bottom-up engines
    (``--method naive``/``seminaive``) evaluate them too.
    """
