"""QSQ-style top-down evaluation of adorned programs.

This is the reference *sip strategy* of Section 9: starting from the
query, construct subqueries for every body literal according to the sips
(condition 2) and compute all answers for every constructed query
(condition 1).  The evaluator is an iterated, set-at-a-time version of
the Query/Subquery method (QSQR, Vieille [24]), restricted to adorned
programs whose rule bodies are already ordered by their sip's total order
with all available bindings carried left to right (i.e. full compressed
sips -- the adornment construction of ``repro.core.adornment`` produces
exactly this form).

Its two outputs are the paper's sets

* ``Q`` -- the queries generated (per adorned predicate, the set of bound
  argument vectors); and
* ``F`` -- the facts computed (per adorned predicate, full tuples).

Theorem 9.1 states that bottom-up evaluation of the generalized magic
rewrite produces *exactly* the facts corresponding to ``Q`` (the magic
relations) and ``F`` (the adorned relations); ``repro.core.optimality``
checks this equivalence experimentally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ast import Literal, Program, Query
from .database import Database, FactTuple
from .errors import EvaluationError, NonTerminationError
from .terms import Term
from .unify import Substitution, match_sequences, resolve, unify_sequences

__all__ = ["QSQResult", "qsq_evaluate"]


@dataclass
class QSQResult:
    """Queries and facts produced by a QSQ (sip strategy) evaluation.

    ``queries`` maps adorned predicate keys to the set of bound-argument
    vectors for which a subquery was generated (the paper's ``Q``);
    ``answers`` maps adorned predicate keys to full answer tuples (the
    paper's ``F`` restricted to derived predicates).
    """

    queries: Dict[str, Set[FactTuple]] = field(default_factory=dict)
    answers: Dict[str, Set[FactTuple]] = field(default_factory=dict)
    iterations: int = 0
    subqueries_generated: int = 0

    def query_count(self) -> int:
        return sum(len(v) for v in self.queries.values())

    def answer_count(self) -> int:
        return sum(len(v) for v in self.answers.values())

    def query_answers(self, query_literal: Literal) -> Set[FactTuple]:
        """Answer bindings (free positions) for the original query."""
        free_positions = [
            i
            for i, arg in enumerate(query_literal.args)
            if not arg.is_ground()
        ]
        out: Set[FactTuple] = set()
        for row in self.answers.get(query_literal.pred_key, ()):
            if match_sequences(query_literal.args, row) is not None:
                out.add(tuple(row[i] for i in free_positions))
        return out


def qsq_evaluate(
    adorned_program: Program,
    database: Database,
    query_literal: Literal,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
) -> QSQResult:
    """Evaluate an adorned program top-down, memoizing queries and answers.

    ``adorned_program`` must use adorned literals for derived predicates
    (as produced by ``repro.core.adornment.adorn_program(...).program``)
    with rule bodies in sip order.  ``query_literal`` is the adorned
    query, whose ground arguments form the initial subquery.
    """
    derived = adorned_program.derived_predicates()
    result = QSQResult()
    query_key = query_literal.pred_key
    if query_key not in derived:
        raise EvaluationError(
            f"query predicate {query_key} is not defined by the program"
        )

    seed = tuple(arg for arg in query_literal.args if arg.is_ground())
    result.queries.setdefault(query_key, set()).add(seed)
    result.subqueries_generated += 1

    rules_by_head: Dict[str, List] = {}
    for rule in adorned_program.rules:
        rules_by_head.setdefault(rule.head.pred_key, []).append(rule)

    changed = True
    while changed:
        changed = False
        result.iterations += 1
        if max_iterations is not None and result.iterations > max_iterations:
            raise NonTerminationError(
                f"QSQ evaluation exceeded {max_iterations} iterations",
                iterations=result.iterations,
                facts=result.answer_count(),
            )
        for pred_key, inputs in list(result.queries.items()):
            for rule in rules_by_head.get(pred_key, ()):
                for bound_vector in list(inputs):
                    if _solve_rule(
                        rule, bound_vector, database, derived, result
                    ):
                        changed = True
        if max_facts is not None and result.answer_count() > max_facts:
            raise NonTerminationError(
                f"QSQ evaluation exceeded {max_facts} facts",
                iterations=result.iterations,
                facts=result.answer_count(),
            )
    return result


def _solve_rule(
    rule,
    bound_vector: FactTuple,
    database: Database,
    derived: Set[str],
    result: QSQResult,
) -> bool:
    """Push one input binding through one rule; True when anything new."""
    head = rule.head
    bound_args = head.bound_args()
    subst = unify_sequences(bound_args, bound_vector)
    if subst is None:
        return False
    changed = False
    # relational set of partial substitutions, advanced literal by literal
    frontier: List[Substitution] = [subst]
    for literal in rule.body:
        if not frontier:
            break
        next_frontier: List[Substitution] = []
        if literal.pred_key in derived:
            answers = result.answers.get(literal.pred_key, set())
            inputs = result.queries.setdefault(literal.pred_key, set())
            for binding in frontier:
                resolved_bound = tuple(
                    resolve(arg, binding) for arg in literal.bound_args()
                )
                if all(arg.is_ground() for arg in resolved_bound):
                    if resolved_bound not in inputs:
                        inputs.add(resolved_bound)
                        result.subqueries_generated += 1
                        changed = True
                resolved_all = tuple(
                    resolve(arg, binding) for arg in literal.args
                )
                for row in answers:
                    extended = match_sequences(resolved_all, row, binding)
                    if extended is not None:
                        next_frontier.append(extended)
        else:
            relation = database.get(literal.pred_key)
            rows = list(relation) if relation is not None else []
            for binding in frontier:
                resolved_all = tuple(
                    resolve(arg, binding) for arg in literal.args
                )
                for row in rows:
                    extended = match_sequences(resolved_all, row, binding)
                    if extended is not None:
                        next_frontier.append(extended)
        frontier = next_frontier
    if not frontier:
        return changed
    answer_set = result.answers.setdefault(head.pred_key, set())
    for binding in frontier:
        row = tuple(resolve(arg, binding) for arg in head.args)
        if all(t.is_ground() for t in row) and row not in answer_set:
            answer_set.add(row)
            changed = True
    return changed
