"""QSQ-style top-down evaluation of adorned programs, compiled.

This is the reference *sip strategy* of Section 9: starting from the
query, construct subqueries for every body literal according to the sips
(condition 2) and compute all answers for every constructed query
(condition 1).  The evaluator is an iterated, set-at-a-time version of
the Query/Subquery method (QSQR, Vieille [24]), restricted to adorned
programs whose rule bodies are already ordered by their sip's total order
with all available bindings carried left to right (i.e. full compressed
sips -- the adornment construction of ``repro.core.adornment`` produces
exactly this form).

Its two outputs are the paper's sets

* ``Q`` -- the queries generated (per adorned predicate, the set of bound
  argument vectors); and
* ``F`` -- the facts computed (per adorned predicate, full tuples).

Theorem 9.1 states that bottom-up evaluation of the generalized magic
rewrite produces *exactly* the facts corresponding to ``Q`` (the magic
relations) and ``F`` (the adorned relations); ``repro.core.optimality``
checks this equivalence experimentally.

Compiled architecture
---------------------

The default execution path mirrors the bottom-up engine's join planner
(:mod:`repro.datalog.planner`).  Each adorned rule is compiled **once**
into a :class:`~repro.datalog.planner.SubqueryPlan`:

* **Slot frames.**  Rule variables are numbered into a flat frame; the
  inner loops run precompiled ops (store slot / compare slot / match
  pattern) instead of threading dict :class:`Substitution` copies
  through every candidate row.
* **Precomputed bound/free splits.**  Each derived body literal carries
  its adornment's bound positions as the key of an indexed *answer
  store* (a :class:`~repro.datalog.database.Relation` per adorned
  predicate, indexed on those positions), so joining new bindings
  against accumulated answers is a hash probe, not a scan.  Base
  literals carry the argument positions ground at plan time, registered
  on the EDB relations up front so every database access goes through
  :meth:`Relation.lookup`.
* **Delta-driven rounds.**  Instead of joining every accumulated
  ``(rule, bound_vector)`` pair against every accumulated *answer* each
  global iteration, each round pushes only the deltas: *new subqueries*
  run against the full answer stores, and *new answers* are joined into
  the rules of every affected input via one delta variant per derived
  body occurrence.  This is semi-naive evaluation transplanted to the
  top-down side.  A residual ``Theta(rounds * |Q|)`` term remains --
  delta variants replay the accumulated inputs, though each replay is
  an entry match plus hash probes that mostly miss -- with constants
  small enough to be invisible next to the join work (see the ROADMAP
  open item on reverse-joining deltas to their affected inputs).
* **Plan caching.**  Compiled plans are looked up in the shared
  :class:`~repro.datalog.planner.PlanCache` keyed by program identity,
  so benchmark loops and repeated CLI queries stop recompiling;
  ``QSQResult.plan_cache_hits``/``plan_cache_misses`` report what
  happened.

``use_planner=False`` selects the legacy interpretive evaluator (dict
substitutions, full replay).  Both paths produce identical ``Q`` and
``F`` sets and identical ``subqueries_generated`` (distinct subqueries);
``iterations`` keeps its meaning -- global propagation rounds until the
fixpoint -- but the compiled path typically needs fewer of them because
answers flow as soon as their delta round fires.

Open items noticed while profiling: the round loop is still global (a
true QSQR scheduler would recurse per subquery and could terminate
earlier on stratified call graphs), and answer stores are rebuilt per
evaluation even when the database is unchanged -- a memo keyed by
(program, database version) would make repeated identical queries O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ast import Literal, Program
from .catalog import term_catalog
from .database import Database, FactTuple, Relation
from .errors import (
    EvaluationError,
    NonTerminationError,
    UnsupportedProgramError,
)
from .planner import (
    PlanCache,
    SubqueryPlan,
    SubqueryProgram,
    subquery_program_for,
    _batch_keys,
    _scan_batch_step,
    _CONST,
    _EQ,
    _EQC,
    _EVAL,
    _SLOT,
    _STORE,
)
from .terms import Term, Variable
from .unify import (
    Substitution,
    match_into,
    match_sequences,
    resolve,
    unify_sequences,
)

__all__ = ["QSQResult", "qsq_evaluate"]

_CATALOG = term_catalog()


@dataclass
class QSQResult:
    """Queries and facts produced by a QSQ (sip strategy) evaluation.

    ``queries`` maps adorned predicate keys to the set of bound-argument
    vectors for which a subquery was generated (the paper's ``Q``);
    ``answers`` maps adorned predicate keys to full answer tuples (the
    paper's ``F`` restricted to derived predicates).
    """

    queries: Dict[str, Set[FactTuple]] = field(default_factory=dict)
    answers: Dict[str, Set[FactTuple]] = field(default_factory=dict)
    iterations: int = 0
    subqueries_generated: int = 0
    #: plan-cache outcome for this evaluation (compiled path only)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def query_count(self) -> int:
        return sum(len(v) for v in self.queries.values())

    def answer_count(self) -> int:
        return sum(len(v) for v in self.answers.values())

    def query_answers(self, query_literal: Literal) -> Set[FactTuple]:
        """Answer bindings (free positions) for the original query.

        Uses the query's bound/free position split directly: bound
        positions hold ground terms compared per row; free positions are
        projected out.  The generic matcher is only consulted when a
        free position holds something other than a plain variable
        (which :class:`~repro.datalog.ast.Query` never produces).
        """
        rows = self.answers.get(query_literal.pred_key, ())
        if not rows:
            return set()
        bound_checks: List[Tuple[int, Term]] = []
        free_positions: List[int] = []
        seen_vars: Set[Term] = set()
        for i, arg in enumerate(query_literal.args):
            if arg.is_ground():
                bound_checks.append((i, arg))
            else:
                free_positions.append(i)
                if not isinstance(arg, Variable) or arg in seen_vars:
                    # a structured pattern or a repeated variable: fall
                    # back to the generic matcher for the whole literal
                    return self._query_answers_generic(query_literal)
                seen_vars.add(arg)
        out: Set[FactTuple] = set()
        for row in rows:
            if all(row[i] == value for i, value in bound_checks):
                out.add(tuple(row[i] for i in free_positions))
        return out

    def _query_answers_generic(
        self, query_literal: Literal
    ) -> Set[FactTuple]:
        free_positions = [
            i
            for i, arg in enumerate(query_literal.args)
            if not arg.is_ground()
        ]
        out: Set[FactTuple] = set()
        for row in self.answers.get(query_literal.pred_key, ()):
            if match_sequences(query_literal.args, row) is not None:
                out.add(tuple(row[i] for i in free_positions))
        return out


def qsq_evaluate(
    adorned_program: Program,
    database: Database,
    query_literal: Literal,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_planner: bool = True,
    plan_cache: Optional[PlanCache] = None,
    meter=None,
) -> QSQResult:
    """Evaluate an adorned program top-down, memoizing queries and answers.

    ``adorned_program`` must use adorned literals for derived predicates
    (as produced by ``repro.core.adornment.adorn_program(...).program``)
    with rule bodies in sip order.  ``query_literal`` is the adorned
    query, whose ground arguments form the initial subquery.

    ``use_planner`` selects compiled, delta-driven execution (default)
    or the legacy interpretive evaluator; both compute identical ``Q``
    and ``F``.  ``plan_cache`` overrides the shared compiled-plan cache
    (compiled path only).

    ``meter`` is an optional budget meter (duck-typed, see
    :mod:`repro.core.limits`): ``check_round`` runs at every QSQ round
    and ``check_batch`` at every plan invocation, either free to abort
    by raising.  QSQ stores answers outside the database (the only
    database mutation is physical index registration), so an abort
    leaves the database logically untouched.
    """
    if adorned_program.has_negation():
        raise UnsupportedProgramError(
            "the QSQ evaluator handles positive programs only; use "
            "method='auto' for stratified programs with negation (it "
            "resolves to the bottom-up magic path, which is "
            "query-directed too)"
        )
    derived = adorned_program.derived_predicates()
    query_key = query_literal.pred_key
    if query_key not in derived:
        raise EvaluationError(
            f"query predicate {query_key} is not defined by the program"
        )
    if use_planner:
        return _qsq_evaluate_compiled(
            adorned_program,
            database,
            query_literal,
            max_iterations,
            max_facts,
            plan_cache,
            meter,
        )
    return _qsq_evaluate_legacy(
        adorned_program,
        database,
        query_literal,
        derived,
        max_iterations,
        max_facts,
        meter,
    )


# ----------------------------------------------------------------------
# compiled, delta-driven path
# ----------------------------------------------------------------------

class _QSQExecutor:
    """Mutable evaluation state for one compiled QSQ run.

    ``result.queries`` doubles as the subquery dedup store; answers live
    in per-predicate :class:`Relation` stores indexed on the adornment's
    bound positions, with parallel per-round delta relations.
    """

    __slots__ = ("compiled", "database", "result", "answer_rels",
                 "pending_inputs", "pending_answers", "answer_total",
                 "meter")

    def __init__(self, compiled: SubqueryProgram, database: Database,
                 result: QSQResult, meter=None):
        self.compiled = compiled
        self.database = database
        self.result = result
        self.answer_rels: Dict[str, Relation] = {}
        self.pending_inputs: Dict[str, List[FactTuple]] = {}
        self.pending_answers: Dict[str, Relation] = {}
        self.answer_total = 0
        self.meter = meter

    # ------------------------------------------------------------------
    def execute(
        self,
        plan: SubqueryPlan,
        vectors,
        delta_depth: Optional[int] = None,
        delta_rel: Optional[Relation] = None,
    ) -> None:
        """Push input bound vectors through one plan (one delta choice).

        Entry ops filter each (small, term-level) input vector on a
        scratch frame exactly as the per-frame interpreter did;
        survivors are interned into the plan's entry-slot columns and
        the body runs batch-vectorized over term IDs
        (:meth:`_run_batch`).
        """
        if self.meter is not None:
            self.meter.check_batch(self.answer_total)
        frame: List[Optional[Term]] = [None] * plan.n_slots
        entry_ops = plan.entry_ops
        entry_slots = plan.b_entry_slots
        intern = _CATALOG.intern
        cols: Dict[int, List[int]] = {s: [] for s in entry_slots}
        n = 0
        for vector in vectors:
            ok = True
            for pos, tag, payload in entry_ops:
                value = vector[pos]
                if tag == _STORE:
                    frame[payload] = value
                elif tag == _CONST:
                    if payload != value:
                        ok = False
                        break
                elif tag == _EQ:
                    if frame[payload] != value:
                        ok = False
                        break
                else:  # _MATCH
                    pattern, bound_pairs, free_pairs = payload
                    seed: Substitution = {
                        v: frame[s] for v, s in bound_pairs
                    }
                    if not match_into(pattern, value, seed):
                        ok = False
                        break
                    for v, s in free_pairs:
                        frame[s] = seed[v]
            if ok:
                for s in entry_slots:
                    cols[s].append(intern(frame[s]))
                n += 1
        if n:
            self._run_batch(plan, cols, n, delta_depth, delta_rel)

    # ------------------------------------------------------------------
    def _run_batch(self, plan, cols, n, delta_depth, delta_rel) -> None:
        """Batch-vectorized body execution over ID columns.

        The batch twin of the per-frame :meth:`_run` recursion: partial
        matches travel as parallel columns of term IDs, each step probes
        its store once per *distinct* key in the batch, derived-step
        keys are registered as subqueries once per distinct key, and
        answers are emitted as ID rows -- terms are resolved only when
        ``QSQResult.answers`` is materialized.  Emission happens after
        the whole batch has been joined, so answers produced by one
        input vector reach sibling vectors through the next round's
        delta instead of intra-round: the same fixpoint, ``Q`` and
        ``F``, discovered at worst a round later.  A step whose subquery
        key may be non-ground diverts its frames to the per-frame
        interpreter, which re-checks groundness at run time and handles
        the generic fallback.
        """
        resolve_id = _CATALOG.resolve
        resolve_row = _CATALOG.resolve_row
        id_of = _CATALOG.id_of
        intern = _CATALOG.intern
        for depth, step in enumerate(plan.steps):
            if step.maybe_unground:
                n_slots = plan.n_slots
                for i in range(n):
                    frame: List[Optional[Term]] = [None] * n_slots
                    for s, col in cols.items():
                        frame[s] = resolve_id(col[i])
                    self._run(plan, depth, frame, delta_depth, delta_rel)
                return
            b_key_ops = step.b_key_ops
            if step.is_derived:
                pred = step.pred_key
                # derived keys double as subquery vectors, so _EVAL
                # keys are interned, and each distinct key registers
                # (at most) one new subquery -- before the empty-store
                # check, exactly like the per-frame path
                keys = (
                    _batch_keys(b_key_ops, cols, n, False, intern)
                    if b_key_ops else None
                )
                inputs = self.result.queries.setdefault(pred, set())
                if keys is None:
                    term_keys = [()]
                elif len(b_key_ops) == 1:
                    term_keys = [(resolve_id(k),) for k in set(keys)]
                else:
                    term_keys = [resolve_row(k) for k in set(keys)]
                for term_key in term_keys:
                    if term_key not in inputs:
                        inputs.add(term_key)
                        self.result.subqueries_generated += 1
                        self.pending_inputs.setdefault(
                            pred, []
                        ).append(term_key)
                if delta_depth == depth:
                    relation = delta_rel
                else:
                    relation = self.answer_rels.get(pred)
                if relation is None or len(relation) == 0:
                    return
            else:
                relation = self.database.get(step.pred_key)
                if relation is None or len(relation) == 0:
                    return
                keys = (
                    _batch_keys(b_key_ops, cols, n, False, id_of)
                    if b_key_ops else None
                )
            sel, stores, _probes, _scanned = _scan_batch_step(
                relation, step.lookup_positions, keys,
                step.b_row_ops, len(step.b_store_slots), cols, n,
            )
            if not sel:
                return
            next_cols: Dict[int, List[int]] = {
                s: [cols[s][i] for i in sel] for s in step.b_carry_out
            }
            for j, s in step.b_store_out:
                next_cols[s] = stores[j]
            cols = next_cols
            n = len(sel)

        head_slots = plan.b_head_slots
        if head_slots is not None:
            if not head_slots:
                rows: List[Tuple[int, ...]] = [()] * n
            elif len(head_slots) == 1:
                rows = [(v,) for v in cols[head_slots[0]]]
            else:
                rows = list(zip(*(cols[s] for s in head_slots)))
        else:
            rows = []
            b_head_ops = plan.b_head_ops
            for i in range(n):
                args = []
                ok = True
                for tag, payload in b_head_ops:
                    if tag == _SLOT:
                        args.append(cols[payload][i])
                    elif tag == _CONST:
                        args.append(payload)
                    elif tag == _EVAL:
                        term, pairs = payload
                        value = resolve(
                            term,
                            {v: resolve_id(cols[s][i]) for v, s in pairs},
                        )
                        if not value.is_ground():
                            # mirror the legacy _solve_rule: silently
                            # drop non-ground rows
                            ok = False
                            break
                        args.append(intern(value))
                    else:  # _UNBOUND: the row can never be ground
                        ok = False
                        break
                if ok:
                    rows.append(tuple(args))
        if not rows:
            return
        pred = plan.head_key
        relation = self.answer_rels.get(pred)
        if relation is None:
            relation = self._new_answer_relation(pred)
            self.answer_rels[pred] = relation
        fresh = relation.add_id_rows(rows)
        if fresh:
            self.answer_total += len(fresh)
            delta = self.pending_answers.get(pred)
            if delta is None:
                delta = self._new_answer_relation(pred)
                self.pending_answers[pred] = delta
            delta.add_id_rows(fresh)

    # ------------------------------------------------------------------
    def _build_key(self, key_ops, frame) -> FactTuple:
        key = []
        for tag, payload in key_ops:
            if tag == _SLOT:
                key.append(frame[payload])
            elif tag == _CONST:
                key.append(payload)
            else:  # _EVAL
                term, pairs = payload
                key.append(resolve(term, {v: frame[s] for v, s in pairs}))
        return tuple(key)

    def _run(self, plan, depth, frame, delta_depth, delta_rel) -> None:
        steps = plan.steps
        if depth == len(steps):
            self._emit(plan, frame)
            return
        step = steps[depth]
        if step.is_derived:
            pred = step.pred_key
            key = self._build_key(step.key_ops, frame)
            if step.maybe_unground and not all(
                t.is_ground() for t in key
            ):
                self._run_generic(plan, depth, frame, delta_depth,
                                  delta_rel)
                return
            inputs = self.result.queries.setdefault(pred, set())
            if key not in inputs:
                inputs.add(key)
                self.result.subqueries_generated += 1
                self.pending_inputs.setdefault(pred, []).append(key)
            if delta_depth == depth:
                relation = delta_rel
            else:
                relation = self.answer_rels.get(pred)
            if relation is None or len(relation) == 0:
                return
            rows = relation.lookup(step.lookup_positions, key)
            if step.self_recursive and delta_depth != depth:
                # emission extends the very bucket being probed; snapshot
                # it so the scan sees the store as of probe time (new
                # answers flow through the next round's delta instead)
                rows = list(rows)
        else:
            relation = self.database.get(step.pred_key)
            if relation is None or len(relation) == 0:
                return
            key = self._build_key(step.key_ops, frame)
            rows = relation.lookup(step.lookup_positions, key)
        row_ops = step.row_ops
        next_depth = depth + 1
        for row in rows:
            ok = True
            for pos, tag, payload in row_ops:
                value = row[pos]
                if tag == _STORE:
                    frame[payload] = value
                elif tag == _EQ:
                    if frame[payload] != value:
                        ok = False
                        break
                elif tag == _EQC:
                    if payload != value:
                        ok = False
                        break
                else:  # _MATCH
                    pattern, bound_pairs, free_pairs = payload
                    seed = {v: frame[s] for v, s in bound_pairs}
                    if not match_into(pattern, value, seed):
                        ok = False
                        break
                    for v, s in free_pairs:
                        frame[s] = seed[v]
            if ok:
                self._run(plan, next_depth, frame, delta_depth, delta_rel)

    def _run_generic(self, plan, depth, frame, delta_depth,
                     delta_rel) -> None:
        """Slow path for a derived step whose subquery key is not ground.

        Mirrors the legacy evaluator: no subquery is generated, and the
        literal's resolved pattern is matched against every stored
        answer (new bindings written back into the frame).
        """
        step = plan.steps[depth]
        bound_pairs, free_pairs = step.generic_pairs
        subst: Substitution = {v: frame[s] for v, s in bound_pairs}
        resolved = tuple(
            resolve(arg, subst) for arg in step.literal.args
        )
        pred = step.pred_key
        self.result.queries.setdefault(pred, set())
        if delta_depth == depth:
            relation = delta_rel
        else:
            relation = self.answer_rels.get(pred)
        if relation is None or len(relation) == 0:
            return
        next_depth = depth + 1
        for row in list(relation):
            binding = match_sequences(resolved, row)
            if binding is None:
                continue
            for v, s in free_pairs:
                frame[s] = resolve(v, binding)
            self._run(plan, next_depth, frame, delta_depth, delta_rel)

    # ------------------------------------------------------------------
    def _emit(self, plan, frame) -> None:
        args = []
        for tag, payload in plan.head_ops:
            if tag == _SLOT:
                args.append(frame[payload])
            elif tag == _CONST:
                args.append(payload)
            elif tag == _EVAL:
                term, pairs = payload
                value = resolve(term, {v: frame[s] for v, s in pairs})
                if not value.is_ground():
                    return
                args.append(value)
            else:  # _UNBOUND: the row can never be ground; skip it
                return
        row = tuple(args)
        pred = plan.head_key
        relation = self.answer_rels.get(pred)
        if relation is None:
            relation = self._new_answer_relation(pred)
            self.answer_rels[pred] = relation
        if relation.add(row):
            self.answer_total += 1
            delta = self.pending_answers.get(pred)
            if delta is None:
                delta = self._new_answer_relation(pred)
                self.pending_answers[pred] = delta
            delta.add(row)

    def _new_answer_relation(self, pred: str) -> Relation:
        relation = Relation(pred)
        positions = self.compiled.bound_positions.get(pred)
        if positions:
            relation.register_index(positions)
        return relation


def _qsq_evaluate_compiled(
    adorned_program: Program,
    database: Database,
    query_literal: Literal,
    max_iterations: Optional[int],
    max_facts: Optional[int],
    plan_cache: Optional[PlanCache],
    meter=None,
) -> QSQResult:
    compiled, cache_hit = subquery_program_for(adorned_program, plan_cache)
    compiled.register_indexes(database)
    result = QSQResult()
    if cache_hit:
        result.plan_cache_hits = 1
    else:
        result.plan_cache_misses = 1
    executor = _QSQExecutor(compiled, database, result, meter)

    query_key = query_literal.pred_key
    seed = tuple(arg for arg in query_literal.args if arg.is_ground())
    result.queries.setdefault(query_key, set()).add(seed)
    result.subqueries_generated += 1
    executor.pending_inputs = {query_key: [seed]}

    answer_deltas: Dict[str, Relation] = {}
    while executor.pending_inputs or answer_deltas:
        result.iterations += 1
        if max_iterations is not None and result.iterations > max_iterations:
            raise NonTerminationError(
                f"QSQ evaluation exceeded {max_iterations} iterations",
                iterations=result.iterations,
                facts=executor.answer_total,
            )
        if meter is not None:
            meter.check_round(
                executor.answer_total, round_=result.iterations
            )
        new_inputs = executor.pending_inputs
        executor.pending_inputs = {}
        executor.pending_answers = {}

        # variant 1: new subqueries against the full answer stores
        for pred, vectors in new_inputs.items():
            for plan in compiled.plans_by_head.get(pred, ()):
                executor.execute(plan, vectors)

        # variant 2: per derived body occurrence, previous-round answer
        # deltas against every other accumulated input (the new inputs
        # just ran against the full stores, which contain the deltas).
        # Inputs generated while these variants run are complete next
        # round via variant 1, so one snapshot per plan suffices.
        for plan in compiled.plans:
            active = [
                (depth, answer_deltas.get(plan.steps[depth].pred_key))
                for depth in plan.derived_steps
            ]
            active = [(d, rel) for d, rel in active if rel]
            if not active:
                continue
            inputs = result.queries.get(plan.head_key)
            if not inputs:
                continue
            fresh = new_inputs.get(plan.head_key)
            if fresh:
                fresh_set = set(fresh)
                vectors = [v for v in inputs if v not in fresh_set]
            else:
                vectors = list(inputs)
            if not vectors:
                continue
            for depth, delta_rel in active:
                executor.execute(plan, vectors, depth, delta_rel)

        answer_deltas = executor.pending_answers
        if max_facts is not None and executor.answer_total > max_facts:
            raise NonTerminationError(
                f"QSQ evaluation exceeded {max_facts} facts",
                iterations=result.iterations,
                facts=executor.answer_total,
            )
    for pred, relation in executor.answer_rels.items():
        result.answers[pred] = set(relation)
    return result


# ----------------------------------------------------------------------
# legacy interpretive path
# ----------------------------------------------------------------------

def _qsq_evaluate_legacy(
    adorned_program: Program,
    database: Database,
    query_literal: Literal,
    derived: Set[str],
    max_iterations: Optional[int],
    max_facts: Optional[int],
    meter=None,
) -> QSQResult:
    result = QSQResult()
    query_key = query_literal.pred_key
    seed = tuple(arg for arg in query_literal.args if arg.is_ground())
    result.queries.setdefault(query_key, set()).add(seed)
    result.subqueries_generated += 1

    rules_by_head: Dict[str, List] = {}
    for rule in adorned_program.rules:
        rules_by_head.setdefault(rule.head.pred_key, []).append(rule)

    changed = True
    while changed:
        changed = False
        result.iterations += 1
        if max_iterations is not None and result.iterations > max_iterations:
            raise NonTerminationError(
                f"QSQ evaluation exceeded {max_iterations} iterations",
                iterations=result.iterations,
                facts=result.answer_count(),
            )
        if meter is not None:
            meter.check_round(
                result.answer_count(), round_=result.iterations
            )
        for pred_key, inputs in list(result.queries.items()):
            for rule in rules_by_head.get(pred_key, ()):
                for bound_vector in list(inputs):
                    if _solve_rule(
                        rule, bound_vector, database, derived, result
                    ):
                        changed = True
        if max_facts is not None and result.answer_count() > max_facts:
            raise NonTerminationError(
                f"QSQ evaluation exceeded {max_facts} facts",
                iterations=result.iterations,
                facts=result.answer_count(),
            )
    return result


def _solve_rule(
    rule,
    bound_vector: FactTuple,
    database: Database,
    derived: Set[str],
    result: QSQResult,
) -> bool:
    """Push one input binding through one rule; True when anything new."""
    head = rule.head
    bound_args = head.bound_args()
    subst = unify_sequences(bound_args, bound_vector)
    if subst is None:
        return False
    changed = False
    # relational set of partial substitutions, advanced literal by literal
    frontier: List[Substitution] = [subst]
    for literal in rule.body:
        if not frontier:
            break
        next_frontier: List[Substitution] = []
        if literal.pred_key in derived:
            answers = result.answers.get(literal.pred_key, set())
            inputs = result.queries.setdefault(literal.pred_key, set())
            for binding in frontier:
                resolved_bound = tuple(
                    resolve(arg, binding) for arg in literal.bound_args()
                )
                if all(arg.is_ground() for arg in resolved_bound):
                    if resolved_bound not in inputs:
                        inputs.add(resolved_bound)
                        result.subqueries_generated += 1
                        changed = True
                resolved_all = tuple(
                    resolve(arg, binding) for arg in literal.args
                )
                for row in answers:
                    extended = match_sequences(resolved_all, row, binding)
                    if extended is not None:
                        next_frontier.append(extended)
        else:
            relation = database.get(literal.pred_key)
            rows = list(relation) if relation is not None else []
            for binding in frontier:
                resolved_all = tuple(
                    resolve(arg, binding) for arg in literal.args
                )
                for row in rows:
                    extended = match_sequences(resolved_all, row, binding)
                    if extended is not None:
                        next_frontier.append(extended)
        frontier = next_frontier
    if not frontier:
        return changed
    answer_set = result.answers.setdefault(head.pred_key, set())
    for binding in frontier:
        row = tuple(resolve(arg, binding) for arg in head.args)
        if all(t.is_ground() for t in row) and row not in answer_set:
            answer_set.add(row)
            changed = True
    return changed
