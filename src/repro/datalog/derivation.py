"""Derivation trees: how a derived fact follows from base facts.

Section 1.1 of the paper: "for each fact that belongs to a derived
predicate, there exists a finite derivation tree … the tree has p(c) at
its root, the leaves are base facts, and each internal node is labeled
by a fact and by a rule that generates this fact from the facts labeling
its children."  The equivalence proofs (Theorems 3.1/4.1/5.1/6.1/7.1)
are inductions over these trees, and the counting indices of Section 6
are precisely encodings of derivation paths.

This module reconstructs one derivation tree per fact *after* an
evaluation, by replaying rules against the fixpoint: a fact's
derivation uses only facts derivable in strictly earlier rounds, which
we witness by recomputing the stage (round number) of every derived
fact and then searching for a rule instance whose body facts all have
smaller stages.  Reconstruction is deterministic (rules and matches are
tried in order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .ast import Literal, Program, Rule
from .database import Database, FactTuple
from .engine import (
    EvaluationResult,
    EvaluationStats,
    _evaluate_rule,
    _evaluation_strata,
    _negation_sequence,
)
from .errors import EvaluationError
from .unify import match_sequences, resolve

__all__ = ["DerivationNode", "explain", "fact_stages"]


@dataclass
class DerivationNode:
    """One node of a derivation tree.

    ``rule`` is None for leaves (base facts / seeds).
    """

    literal: Literal
    rule: Optional[Rule] = None
    children: Tuple["DerivationNode", ...] = ()

    def is_leaf(self) -> bool:
        return self.rule is None

    def height(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def leaves(self) -> List[Literal]:
        if not self.children:
            return [self.literal]
        out: List[Literal] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def render(self, indent: str = "") -> str:
        """A human-readable tree rendering."""
        label = str(self.literal)
        if self.rule is not None:
            label += f"   [by {self.rule}]"
        lines = [indent + label]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def fact_stages(
    program: Program,
    base: Database,
    result: EvaluationResult,
) -> Dict[str, Dict[FactTuple, int]]:
    """The round at which each derived fact first becomes derivable.

    Base facts (and seeded facts present in ``base``) have stage 0.
    Replays a naive fixpoint over the (already computed) result, which
    terminates in at most as many rounds as the original evaluation.
    The replay is stratum-wise (round numbers keep increasing across
    strata), so anti-joins of negated literals probe lower-stratum
    relations only after those are complete -- exactly like the engines.
    """
    derived_keys = result.derived_keys
    stages: Dict[str, Dict[FactTuple, int]] = {
        key: {} for key in derived_keys
    }
    # facts the caller supplied (e.g. magic seeds) are stage 0
    for key in derived_keys:
        base_relation = base.get(key)
        if base_relation is None:
            continue
        for row in base_relation:
            stages[key][row] = 0

    working = base.copy()
    stats = EvaluationStats()
    round_number = 0
    for stratum in _evaluation_strata(program, None):
        changed = True
        while changed:
            changed = False
            round_number += 1
            # evaluate the whole round against the previous round's
            # facts so that stages are simultaneous (a fact's supporters
            # always have a strictly smaller stage)
            snapshot = working.copy()
            pending: List[Tuple[str, FactTuple]] = []
            for rule_index in stratum:
                rule = program.rules[rule_index]
                head_key = rule.head.pred_key
                for row in _evaluate_rule(rule, snapshot, stats):
                    pending.append((head_key, row))
            for head_key, row in pending:
                if working.relation(head_key).add(row):
                    stages.setdefault(head_key, {})[row] = round_number
                    changed = True
    return stages


def explain(
    program: Program,
    base: Database,
    result: EvaluationResult,
    fact: Literal,
    _stages: Optional[Dict[str, Dict[FactTuple, int]]] = None,
) -> DerivationNode:
    """Reconstruct one derivation tree for a derived fact.

    ``base`` must be the database the evaluation started from (base
    relations plus any seeds); ``result`` the finished evaluation.
    Raises :class:`EvaluationError` when the fact does not hold.
    """
    if not fact.is_ground():
        raise EvaluationError(f"cannot explain non-ground fact {fact}")
    key = fact.pred_key
    row = tuple(fact.args)
    if key not in result.derived_keys:
        if result.database.has_fact(fact):
            return DerivationNode(fact)
        raise EvaluationError(f"base fact {fact} does not hold")
    if row not in result.database.tuples(key):
        raise EvaluationError(f"fact {fact} was not derived")

    stages = _stages if _stages is not None else fact_stages(
        program, base, result
    )
    return _explain_rec(program, base, result, fact, stages, set())


def _explain_rec(
    program: Program,
    base: Database,
    result: EvaluationResult,
    fact: Literal,
    stages: Dict[str, Dict[FactTuple, int]],
    in_progress: Set[Tuple[str, FactTuple]],
) -> DerivationNode:
    if fact.negated:
        # negation-as-failure support: the absence of the fact is the
        # witness, so it renders as a leaf (stratification guarantees
        # the probed relation was complete)
        return DerivationNode(fact)
    key = fact.pred_key
    row = tuple(fact.args)
    if key not in result.derived_keys:
        return DerivationNode(fact)
    stage = stages.get(key, {}).get(row)
    if stage == 0:
        # seeded fact: a leaf from the caller's perspective
        return DerivationNode(fact)
    if stage is None:
        raise EvaluationError(f"fact {fact} has no recorded stage")
    marker = (key, row)
    if marker in in_progress:
        raise EvaluationError(
            f"cyclic reconstruction for {fact}; stages are inconsistent"
        )
    in_progress.add(marker)
    try:
        for rule in program.rules_for(key):
            instance = _find_supporting_instance(
                rule, fact, result.database, stages, stage
            )
            if instance is None:
                continue
            children = []
            for body_literal in instance:
                children.append(
                    _explain_rec(
                        program, base, result, body_literal, stages,
                        in_progress,
                    )
                )
            return DerivationNode(fact, rule, tuple(children))
    finally:
        in_progress.discard(marker)
    raise EvaluationError(
        f"no rule instance re-derives {fact}; the result database does "
        "not match the program"
    )


def _find_supporting_instance(
    rule: Rule,
    fact: Literal,
    database: Database,
    stages: Dict[str, Dict[FactTuple, int]],
    stage: int,
) -> Optional[List[Literal]]:
    """A ground body instance deriving ``fact`` from earlier-stage facts.

    Negated literals succeed on *absence* from the (complete, lower-
    stratum) relation and contribute their ground negated form to the
    instance, which :func:`_explain_rec` renders as a leaf.
    """
    head_binding = match_sequences(rule.head.args, fact.args)
    if head_binding is None:
        return None

    body = rule.body
    if rule.has_negation():
        sequence = _negation_sequence(rule)
    else:
        sequence = range(len(body))

    def extend(position: int, subst) -> Optional[List[Literal]]:
        if position == len(body):
            return []
        literal = body[sequence[position]]
        resolved = tuple(resolve(arg, subst) for arg in literal.args)
        key = literal.pred_key
        relation = database.get(key)
        if literal.negated:
            # the sequence defers anti-joins until resolved is ground
            if relation is not None and relation.lookup(
                tuple(range(len(resolved))), resolved
            ):
                return None
            rest = extend(position + 1, subst)
            if rest is not None:
                return [
                    Literal(
                        literal.pred, resolved, literal.adornment, True
                    )
                ] + rest
            return None
        if relation is None:
            return None
        bound_positions = tuple(
            i for i, arg in enumerate(resolved) if arg.is_ground()
        )
        lookup_key = tuple(resolved[i] for i in bound_positions)
        for row in relation.lookup(bound_positions, lookup_key):
            row_stage = stages.get(key, {}).get(row)
            if row_stage is not None and row_stage >= stage:
                continue  # would not be available strictly earlier
            extended = match_sequences(resolved, row, subst)
            if extended is None:
                continue
            rest = extend(position + 1, extended)
            if rest is not None:
                ground_literal = Literal(
                    literal.pred, row, literal.adornment
                )
                return [ground_literal] + rest
        return None

    return extend(0, head_binding)
