"""Interning of ground terms into dense integer IDs.

The columnar storage layer (:mod:`repro.datalog.database`) does not
store :class:`~repro.datalog.terms.Term` objects in its relations.  It
stores *term IDs*: small integers handed out by a process-wide
:class:`TermCatalog`.  Interning a ground term hashes it exactly once
for its whole lifetime; afterwards every insert, probe, and join over
that term is integer arithmetic on ``array('q')`` columns instead of
re-hashing a tuple of Python objects per touch.

The catalog is append-only and process-wide: IDs are dense (0, 1, 2,
...), never reused, and identical terms always intern to the same ID,
so equality of ground rows is equality of their int tuples and a hash
index keyed by ints is exactly as selective as one keyed by terms.
``resolve`` returns the canonical stored term object, so resolving is a
list indexing operation and resolved rows share structure.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Tuple

from .terms import Term

__all__ = ["TermCatalog", "term_catalog"]


class TermCatalog:
    """A bidirectional, append-only mapping ground ``Term`` <-> int ID.

    Thread-safe: reads (``id_of``/``resolve``) are lock-free -- they
    only see fully published entries because allocation appends to
    ``_terms`` *before* publishing the ID in ``_ids`` -- and allocation
    takes a lock so two threads interning distinct new terms can never
    be handed the same ID.  The hit path stays a single dict probe.
    """

    __slots__ = ("_ids", "_terms", "_alloc_lock")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._alloc_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: Term) -> int:
        """Return the ID for ``term``, assigning a fresh one if needed.

        Only ground terms may be interned: IDs stand for database
        values, and a variable is not a value.
        """
        term_id = self._ids.get(term)
        if term_id is None:
            if not term.is_ground():
                raise ValueError(f"cannot intern non-ground term {term}")
            with self._alloc_lock:
                term_id = self._ids.get(term)
                if term_id is None:
                    term_id = len(self._terms)
                    self._terms.append(term)
                    self._ids[term] = term_id
        return term_id

    def id_of(self, term: Term) -> int:
        """The ID of an already-interned term, or ``-1`` if never seen.

        Unlike :meth:`intern` this never allocates: it is the read-only
        probe used by lookups, where an unknown term simply cannot match
        any stored row.
        """
        return self._ids.get(term, -1)

    def resolve(self, term_id: int) -> Term:
        """The canonical term for an ID (list indexing; shares structure)."""
        return self._terms[term_id]

    def intern_row(self, row: Iterable[Term]) -> Tuple[int, ...]:
        """Bulk :meth:`intern` over one tuple of terms."""
        ids = self._ids
        out = []
        for term in row:
            term_id = ids.get(term)
            if term_id is None:
                term_id = self.intern(term)
            out.append(term_id)
        return tuple(out)

    def resolve_row(self, ids: Iterable[int]) -> Tuple[Term, ...]:
        """Bulk :meth:`resolve` over one tuple of IDs."""
        terms = self._terms
        return tuple(terms[i] for i in ids)

    def export_state(self) -> Tuple[Term, ...]:
        """A one-shot snapshot of the ID space, for worker processes.

        The tuple's index *is* the term's ID.  The parallel tier exports
        once at pool creation so workers operate purely on int IDs
        against a pinned prefix of the ID space: fork-based workers
        inherit the catalog by copy-on-write and use the export length
        as a consistency marker; spawn-style workers can rebuild the
        identical prefix with :meth:`ensure_state`.  Appends after the
        export do not invalidate it -- the prefix is immutable.
        """
        with self._alloc_lock:
            return tuple(self._terms)

    def ensure_state(self, terms: Tuple[Term, ...]) -> None:
        """Make ``terms[i]`` intern to ``i`` for every exported term.

        Idempotent: a catalog that already holds the exported prefix
        (a forked child) verifies it; an empty one (a spawned child)
        rebuilds it.  A mismatch means the worker's ID space diverged
        from the parent's -- joining on its IDs would silently corrupt
        results, so it raises instead.
        """
        with self._alloc_lock:
            own = self._terms
            prefix = min(len(own), len(terms))
            for i in range(prefix):
                if own[i] is not terms[i] and own[i] != terms[i]:
                    raise ValueError(
                        f"term catalog diverged at ID {i}: "
                        f"{own[i]!r} != {terms[i]!r}"
                    )
            for i in range(prefix, len(terms)):
                self._terms.append(terms[i])
                self._ids[terms[i]] = i

    def __repr__(self) -> str:
        return f"TermCatalog({len(self._terms)} terms)"


#: The process-wide catalog all relations share.  A single catalog keeps
#: IDs comparable across databases, sessions, plan caches, and copies --
#: which is what lets Database.copy() duplicate raw int columns without
#: ever touching a Term.
_CATALOG = TermCatalog()


def term_catalog() -> TermCatalog:
    """The process-wide :class:`TermCatalog` singleton."""
    return _CATALOG
