"""Join-plan compiler for the bottom-up engine.

The legacy executor (:func:`repro.datalog.engine._evaluate_rule`) re-derives
its join strategy from scratch for every candidate row, every iteration: it
resolves each body literal's arguments through a dict substitution, recomputes
which argument positions are ground, and lets :class:`Relation` discover the
needed hash index lazily on first probe.  The paper measures rewriting
strategies by the *number of facts computed*, so the substrate executing those
strategies should spend its time on facts, not on rediscovering structure that
is invariant across the whole fixpoint.

This module compiles each rule **once** -- and once more per delta-literal
choice for semi-naive evaluation -- into a :class:`JoinPlan`:

* **Greedy body reordering.**  Body literals are ordered so each step
  maximizes the number of already-bound argument positions, seeded from the
  rule's ground arguments (for a delta plan, the delta occurrence runs first,
  mirroring the sideways information passing the rewrites encode).  On the
  ancestor chain this turns the per-round full scan of ``par`` into a probe
  of the (small) delta.
* **Precomputed index positions.**  Each :class:`JoinStep` carries the tuple
  of argument positions that are ground when the step runs, so the needed
  :class:`Relation` indexes can be registered up front
  (:meth:`CompiledProgram.register_indexes`) instead of discovered per probe.
* **Slot-based variable frames.**  The rule's variables are numbered into a
  flat frame (a Python list); the inner loop executes tiny precompiled ops
  (store slot / compare slot / match pattern) instead of copying a dict
  substitution per candidate row.  Function terms and
  :class:`~repro.datalog.terms.LinExpr` index expressions fall back to the
  generic one-way matcher for just the affected position.

Plans preserve the semantics of :class:`~repro.datalog.engine.EvaluationStats`
exactly: ``rule_firings``, ``facts_derived`` and ``duplicate_derivations`` are
join-order independent (they count body solutions, which reordering does not
change), while ``join_probes`` / ``tuples_scanned`` measure the work the plan
actually performs -- the quantity the planner is built to shrink.

Two further layers serve the top-down side and repeated evaluations:

* **Subquery plans** (:class:`SubqueryPlan`, :func:`compile_subquery_rule`)
  compile adorned rules for the QSQ evaluator
  (:mod:`repro.datalog.topdown`): entry ops match an input bound vector
  against the head's bound arguments, body steps stay in sip order (the
  order determines which subqueries exist, so it cannot be rearranged)
  with each derived literal keyed on its adornment's bound positions and
  each base literal keyed on its plan-time-ground positions.
* **The plan cache** (:class:`PlanCache`, :func:`shared_plan_cache`)
  memoizes both compilation kinds by program identity, so benchmark
  loops and repeated CLI queries compile once; ``evaluate*`` and
  ``qsq_evaluate`` report hits/misses through their stats.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import repeat as _repeat
from typing import Dict, List, Optional, Set, Tuple

from .analysis import stratify_rules
from .ast import Program, Rule
from .catalog import term_catalog
from .database import Database, FactTuple, IdTuple, Relation
from .errors import (
    EvaluationError,
    UnsafeNegationError,
    UnsupportedProgramError,
)
from .terms import Term, Variable
from .unify import match_into, resolve

__all__ = [
    "JoinStep",
    "JoinPlan",
    "CompiledProgram",
    "SubqueryStep",
    "SubqueryPlan",
    "SubqueryProgram",
    "PlanCache",
    "compile_rule",
    "compile_subquery_rule",
    "compiled_program_for",
    "subquery_program_for",
    "shared_plan_cache",
    "order_body",
    "partition_columns",
    "plan_interns_terms",
]

# Op tags.  Key ops build the index-lookup key for a step; row ops process
# the non-indexed positions of each candidate row; head ops emit the derived
# tuple.  Payloads are documented at the construction sites below.
_CONST = 0   # key/head: a ground term known at plan time
_SLOT = 1    # key/head: read a frame slot
_EVAL = 2    # key/head: substitute bound slots into a Struct/LinExpr
_STORE = 3   # row: bind the row value into a frame slot
_EQ = 4      # row: compare the row value against a frame slot
_MATCH = 5   # row: generic one-way match for a partially-bound pattern
_UNBOUND = 6  # head: argument can never be ground (range-restriction error)
_EQC = 7     # row: compare the row value against a ground term
# (_EQC only arises in subquery plans: an adorned literal may carry a
# constant at a position its adornment marks free, so the position is not
# part of the answer-index key and must be checked per row.)
_EQL = 8     # batch row: compare against a value stored earlier in the
#              same step (the batch twin of a within-step _EQ)

_CATALOG = term_catalog()


# ----------------------------------------------------------------------
# batch (ID-level) op compilation
#
# Every term-level op set compiles into a parallel ID-level op set used
# by the batch executors: constants are interned once at compile time,
# _STORE targets become indexes into a per-step local-value buffer (so a
# step's output columns are built by list extension, not per-row frame
# writes), and a liveness pass over the whole plan computes which slots
# each step must carry into the next batch.
# ----------------------------------------------------------------------

def _batch_key_ops(key_ops):
    converted = []
    for tag, payload in key_ops:
        if tag == _CONST:
            converted.append((_CONST, _CATALOG.intern(payload)))
        else:  # _SLOT / _EVAL keep their term-level payloads
            converted.append((tag, payload))
    return tuple(converted)


def _batch_row_ops(row_ops):
    """ID-level row ops plus the frame slots this step stores, in
    local-buffer order.  Within-step references (a repeated variable or
    a _MATCH seeded by a value bound earlier in the same literal) are
    rewritten to read the local buffer (_EQL / local pairs) instead of a
    batch column, which does not exist for them."""
    store_slots: List[int] = []
    local_of: Dict[int, int] = {}
    converted = []
    for pos, tag, payload in row_ops:
        if tag == _STORE:
            local = local_of[payload] = len(store_slots)
            store_slots.append(payload)
            converted.append((pos, _STORE, local))
        elif tag == _EQ:
            if payload in local_of:
                converted.append((pos, _EQL, local_of[payload]))
            else:
                converted.append((pos, _EQ, payload))
        elif tag == _EQC:
            converted.append((pos, _EQC, _CATALOG.intern(payload)))
        else:  # _MATCH
            pattern, bound_pairs, free_pairs = payload
            prior = tuple(
                (v, s) for v, s in bound_pairs if s not in local_of
            )
            local = tuple(
                (v, local_of[s]) for v, s in bound_pairs if s in local_of
            )
            frees = []
            for v, s in free_pairs:
                j = local_of[s] = len(store_slots)
                store_slots.append(s)
                frees.append((v, j))
            converted.append(
                (pos, _MATCH, (pattern, prior, local, tuple(frees)))
            )
    return tuple(converted), tuple(store_slots)


def _batch_reads(b_key_ops, b_row_ops):
    """Prior-batch slots a step's ops read."""
    reads: Set[int] = set()
    for tag, payload in b_key_ops:
        if tag == _SLOT:
            reads.add(payload)
        elif tag == _EVAL:
            reads.update(s for _, s in payload[1])
    for _pos, tag, payload in b_row_ops:
        if tag == _EQ:
            reads.add(payload)
        elif tag == _MATCH:
            reads.update(s for _, s in payload[1])
    return reads


def _attach_batch_ops(steps, head_ops):
    """Compile the ID-level twin of a plan's ops onto its steps.

    Returns ``(b_head_ops, b_head_slots, entry_slots)``: ``b_head_slots``
    is the all-slot fast-path tuple (columns zip straight into head
    rows) or None when the head needs per-row work, and ``entry_slots``
    are the slots that must be live *before* the first step (empty for
    bottom-up plans, the entry-op-bound slots a subquery plan's input
    vectors populate).  Sets, per step: ``b_key_ops`` / ``b_row_ops`` /
    ``b_store_slots`` as above, plus the liveness-pruned batch layout --
    ``b_carry_out`` (prior slots still needed downstream) and
    ``b_store_out`` (``(local, slot)`` stores needed downstream).
    """
    b_head_ops = []
    slots_only = True
    needed: Set[int] = set()
    for tag, payload in head_ops:
        if tag == _CONST:
            b_head_ops.append((_CONST, _CATALOG.intern(payload)))
            slots_only = False
        elif tag == _SLOT:
            b_head_ops.append((_SLOT, payload))
            needed.add(payload)
        else:  # _EVAL / _UNBOUND keep their term-level payloads
            if tag == _EVAL:
                needed.update(s for _, s in payload[1])
            b_head_ops.append((tag, payload))
            slots_only = False
    per_step_reads = []
    for step in steps:
        step.b_key_ops = _batch_key_ops(step.key_ops)
        step.b_row_ops, step.b_store_slots = _batch_row_ops(step.row_ops)
        per_step_reads.append(_batch_reads(step.b_key_ops, step.b_row_ops))
    for step, reads in zip(reversed(steps), reversed(per_step_reads)):
        stores = set(step.b_store_slots)
        step.b_store_out = tuple(
            (j, s) for j, s in enumerate(step.b_store_slots) if s in needed
        )
        step.b_carry_out = tuple(sorted(needed - stores))
        needed = (needed - stores) | reads
    head_slots = (
        tuple(s for _tag, s in b_head_ops) if slots_only else None
    )
    return tuple(b_head_ops), head_slots, tuple(sorted(needed))


def _batch_keys(b_key_ops, cols, n, as_tuple, evaluate):
    """Per-frame lookup keys (bare IDs, or ID tuples when ``as_tuple``).

    ``evaluate`` maps a resolved ``_EVAL`` term to an ID: the catalog's
    ``id_of`` for probe-only keys (an unknown term gets -1, which
    matches nothing), ``intern`` when the key outlives the probe (QSQ
    keys double as subquery vectors).
    """
    resolve_id = _CATALOG.resolve
    if len(b_key_ops) == 1 and not as_tuple:
        tag, payload = b_key_ops[0]
        if tag == _SLOT:
            return cols[payload]
        if tag == _CONST:
            return [payload] * n
        term, pairs = payload  # _EVAL
        return [
            evaluate(resolve(
                term,
                {v: resolve_id(cols[s][i]) for v, s in pairs},
            ))
            for i in range(n)
        ]
    keys = []
    for i in range(n):
        key = []
        for tag, payload in b_key_ops:
            if tag == _SLOT:
                key.append(cols[payload][i])
            elif tag == _CONST:
                key.append(payload)
            else:  # _EVAL
                term, pairs = payload
                key.append(evaluate(resolve(
                    term,
                    {v: resolve_id(cols[s][i]) for v, s in pairs},
                )))
        keys.append(tuple(key))
    return keys


def _scan_batch_step(relation, positions, keys, b_row_ops, n_stores,
                     cols, n):
    """Run one positive batch join step over ``n`` frames.

    ``keys`` holds one lookup key per frame (None = full scan for every
    frame).  Returns ``(sel, stores, probes, scanned)``: the surviving
    frame indexes in batch order (one per matched row), the per-store
    value columns aligned with ``sel``, and the probe / row-scan counts
    for stats.

    Each branch fuses grouping and probing: the first frame carrying a
    key pays the index probe, every later frame with the same key reuses
    the memoized result, and frames are emitted in batch order -- the
    same solution multiset as per-frame probing, so the
    solution-counting stats are unchanged.
    """
    resolve_id = _CATALOG.resolve
    intern = _CATALOG.intern
    index = relation.probe_index(positions) if positions else None
    lookup_ids = relation.lookup_ids
    row_cols = relation._columns
    stores: List[List[int]] = [[] for _ in range(n_stores)]
    sel: List[int] = []
    probes = 0
    scanned = 0
    if keys is None:
        # no bound positions: one full scan shared by all frames
        keys = _repeat((), n)
    if not b_row_ops:
        # fully keyed step: each frame survives once per match
        nrows_of: Dict[object, int] = {}
        for i, key in enumerate(keys):
            n_rows = nrows_of.get(key)
            if n_rows is None:
                if index is not None:
                    rows = index.get(key, ())
                else:
                    rows = lookup_ids(positions, key)
                probes += 1
                n_rows = nrows_of[key] = len(rows)
            if n_rows:
                scanned += n_rows
                sel.extend(_repeat(i, n_rows))
    elif len(b_row_ops) == 1 and b_row_ops[0][1] == _STORE:
        # the chain-step fast path (e.g. anc(X,Z) := delta probe on X,
        # store Z): hoist the matched column per key
        pos = b_row_ops[0][0]
        row_col = row_cols[pos]
        store = stores[0]
        vals_of: Dict[object, List[int]] = {}
        for i, key in enumerate(keys):
            values = vals_of.get(key)
            if values is None:
                if index is not None:
                    rows = index.get(key, ())
                else:
                    rows = lookup_ids(positions, key)
                probes += 1
                values = vals_of[key] = [row_col[r] for r in rows]
            n_rows = len(values)
            if n_rows == 1:  # chain joins: almost every bucket
                scanned += 1
                sel.append(i)
                store.append(values[0])
            elif n_rows:
                scanned += n_rows
                sel.extend(_repeat(i, n_rows))
                store.extend(values)
    elif all(tag == _STORE for _, tag, _ in b_row_ops):
        # all-stores step (e.g. a delta scan binding every position):
        # matched rows project straight into the store columns, one
        # list comprehension per column
        pairs = [
            (row_cols[pos], stores[payload])
            for pos, _, payload in b_row_ops
        ]
        cols_of: Dict[object, List[List[int]]] = {}
        for i, key in enumerate(keys):
            entry = cols_of.get(key)
            if entry is None:
                if index is not None:
                    rows = index.get(key, ())
                else:
                    rows = lookup_ids(positions, key)
                probes += 1
                entry = cols_of[key] = [
                    [col[r] for r in rows] for col, _ in pairs
                ]
            n_rows = len(entry[0])
            if n_rows:
                scanned += n_rows
                sel.extend(_repeat(i, n_rows))
                for (_, store), values in zip(pairs, entry):
                    store.extend(values)
    else:
        local = [0] * n_stores
        rows_of: Dict[object, object] = {}
        for i, key in enumerate(keys):
            rows = rows_of.get(key)
            if rows is None:
                if index is not None:
                    rows = index.get(key, ())
                else:
                    rows = lookup_ids(positions, key)
                rows_of[key] = rows
                probes += 1
            n_rows = len(rows)
            if not n_rows:
                continue
            scanned += n_rows
            for row in rows:
                ok = True
                for pos, tag, payload in b_row_ops:
                    value = row_cols[pos][row]
                    if tag == _STORE:
                        local[payload] = value
                    elif tag == _EQ:
                        if cols[payload][i] != value:
                            ok = False
                            break
                    elif tag == _EQL:
                        if local[payload] != value:
                            ok = False
                            break
                    elif tag == _EQC:
                        if payload != value:
                            ok = False
                            break
                    else:  # _MATCH
                        pattern, prior, loc, frees = payload
                        seed = {
                            v: resolve_id(cols[s][i]) for v, s in prior
                        }
                        for v, j in loc:
                            seed[v] = resolve_id(local[j])
                        if not match_into(
                            pattern, resolve_id(value), seed
                        ):
                            ok = False
                            break
                        for v, j in frees:
                            local[j] = intern(seed[v])
                if ok:
                    sel.append(i)
                    for j in range(n_stores):
                        stores[j].append(local[j])
    return sel, stores, probes, scanned


def _key_ops_for(literal, slots, bound):
    """Index positions and key ops for the compile-time-ground arguments.

    A position is indexable when its argument is ground at run time:
    ground at plan time, or built only from variables bound by earlier
    steps.  The index lookup then guarantees equality, so indexed
    positions need no per-row check at all.
    """
    index_positions: List[int] = []
    key_ops = []
    for pos, arg in enumerate(literal.args):
        arg_vars = arg.variables()
        if not arg_vars:
            index_positions.append(pos)
            key_ops.append((_CONST, arg))
        elif isinstance(arg, Variable):
            if arg in bound:
                index_positions.append(pos)
                key_ops.append((_SLOT, slots[arg]))
        elif all(v in bound for v in arg_vars):
            index_positions.append(pos)
            key_ops.append(
                (_EVAL, (arg, tuple((v, slots[v]) for v in arg_vars)))
            )
    return index_positions, key_ops


def _row_ops_for(literal, slots, bound, indexed):
    """Row ops for the non-indexed positions of a literal.

    Mutates ``bound``, adding the variables the step newly binds.
    """
    row_ops = []
    for pos, arg in enumerate(literal.args):
        if pos in indexed:
            continue
        arg_vars = arg.variables()
        if not arg_vars:
            row_ops.append((pos, _EQC, arg))
        elif isinstance(arg, Variable):
            if arg in bound:
                # repeated variable within the literal, e.g. p(X, X)
                row_ops.append((pos, _EQ, slots[arg]))
            else:
                row_ops.append((pos, _STORE, slots[arg]))
                bound.add(arg)
        else:
            # Struct / LinExpr with at least one free variable: fall
            # back to the generic matcher for this position only.
            bound_pairs = tuple(
                (v, slots[v]) for v in arg_vars if v in bound
            )
            free_vars = tuple(v for v in arg_vars if v not in bound)
            free_pairs = tuple((v, slots[v]) for v in free_vars)
            row_ops.append((pos, _MATCH, (arg, bound_pairs, free_pairs)))
            bound.update(free_vars)
    return row_ops


def order_body(rule: Rule, delta_index: Optional[int] = None) -> Tuple[int, ...]:
    """Greedy join order for a rule body (indexes into ``rule.body``).

    The delta occurrence, when given, is forced first (its relation is the
    small one).  Each subsequent pick maximizes the number of argument
    positions that are bound -- ground at plan time, or covered by variables
    bound in earlier steps -- breaking ties toward literals sharing more
    bound variables, then toward the original (SIP) order.

    Negated literals are anti-joins: they bind nothing and are only
    *eligible* once every one of their variables is bound by an earlier
    positive step (safe negation guarantees such an order exists); once
    eligible they are fully bound, so the score naturally schedules them
    as early filters.
    """
    body = rule.body
    if delta_index is not None and body[delta_index].negated:
        raise ValueError(
            f"rule {rule}: the delta occurrence cannot be the negated "
            f"literal {body[delta_index]}"
        )
    remaining = list(range(len(body)))
    order: List[int] = []
    bound: Set[Variable] = set()
    if delta_index is not None:
        order.append(delta_index)
        remaining.remove(delta_index)
        bound.update(body[delta_index].variables())
    while remaining:
        eligible = [
            i for i in remaining
            if not body[i].negated
            or all(v in bound for v in body[i].variables())
        ]
        if not eligible:
            rule.check_safe_negation()  # raises with the offending vars
            raise UnsafeNegationError(
                f"rule {rule}: no join order binds every negated "
                "variable before its anti-join runs",
                rule=rule,
            )

        def score(i: int) -> Tuple[int, int, int]:
            literal = body[i]
            bound_positions = 0
            for arg in literal.args:
                arg_vars = arg.variables()
                if not arg_vars or all(v in bound for v in arg_vars):
                    bound_positions += 1
            shared = sum(1 for v in literal.variables() if v in bound)
            return (bound_positions, shared, -i)

        best = max(eligible, key=score)
        order.append(best)
        remaining.remove(best)
        if not body[best].negated:
            bound.update(body[best].variables())
    return tuple(order)


class JoinStep:
    """One body literal of a compiled plan, with precomputed join ops.

    A ``negated`` step is an anti-join: by construction every argument
    position is part of the lookup key (safe negation plus the eligible
    ordering of :func:`order_body` guarantee the whole tuple is ground
    when the step runs), the probe tests membership in the completed
    lower-stratum relation, and the branch survives only on a *miss*.
    """

    __slots__ = ("literal", "pred_key", "is_delta", "negated",
                 "index_positions", "key_ops", "row_ops",
                 "b_key_ops", "b_row_ops", "b_store_slots",
                 "b_carry_out", "b_store_out")

    def __init__(self, literal, pred_key, is_delta, negated,
                 index_positions, key_ops, row_ops):
        self.literal = literal
        self.pred_key = pred_key
        #: match this occurrence against the delta relation, not the full one
        self.is_delta = is_delta
        #: anti-join: emit on miss, bind nothing
        self.negated = negated
        #: argument positions ground at run time (sorted ascending)
        self.index_positions = index_positions
        self.key_ops = key_ops
        self.row_ops = row_ops
        # ID-level twins, filled in by _attach_batch_ops at plan build
        self.b_key_ops = ()
        self.b_row_ops = ()
        self.b_store_slots = ()
        self.b_carry_out = ()
        self.b_store_out = ()

    def __repr__(self):
        flag = " delta" if self.is_delta else ""
        if self.negated:
            flag += " anti"
        return (
            f"JoinStep({self.literal}{flag}, "
            f"indexed on {self.index_positions})"
        )


class JoinPlan:
    """A compiled rule: ordered join steps plus head-emission ops."""

    __slots__ = ("rule", "delta_index", "order", "steps", "head_ops",
                 "n_slots", "b_head_ops", "b_head_slots")

    def __init__(self, rule, delta_index, order, steps, head_ops, n_slots):
        self.rule = rule
        #: body index matched against the delta relation (None = full plan)
        self.delta_index = delta_index
        #: body indexes in execution order
        self.order = order
        self.steps = steps
        self.head_ops = head_ops
        self.n_slots = n_slots
        self.b_head_ops, self.b_head_slots, _ = _attach_batch_ops(
            steps, head_ops
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        database: Database,
        stats,
        delta_relation: Optional[Relation] = None,
        meter=None,
    ) -> List[FactTuple]:
        """All head instances derivable from this plan.

        ``delta_relation`` replaces the full relation at the step compiled
        as the delta occurrence (other occurrences of the same predicate
        still see the full relation, which includes the delta facts).

        ``meter``, when given, is consulted once at entry (a batch/rule
        boundary for the resource governor) and may abort by raising.
        """
        if meter is not None:
            meter.check_batch(stats.facts_derived, stats.tuples_scanned)
        frame: List[Optional[Term]] = [None] * self.n_slots
        produced: List[FactTuple] = []
        steps = self.steps
        depth_count = len(steps)
        head_ops = self.head_ops
        rule = self.rule

        def emit() -> None:
            args = []
            for tag, payload in head_ops:
                if tag == _SLOT:
                    args.append(frame[payload])
                elif tag == _CONST:
                    args.append(payload)
                elif tag == _EVAL:
                    term, pairs = payload
                    value = resolve(
                        term, {v: frame[s] for v, s in pairs}
                    )
                    if not value.is_ground():
                        raise EvaluationError(
                            f"rule {rule} produced a non-ground head "
                            f"argument {value}; the rule is not "
                            "range-restricted for this database"
                        )
                    args.append(value)
                else:  # _UNBOUND
                    raise EvaluationError(
                        f"rule {rule} produced a non-ground head argument "
                        f"{payload}; the rule is not range-restricted for "
                        "this database"
                    )
            stats.rule_firings += 1
            produced.append(tuple(args))

        def run(depth: int) -> None:
            if depth == depth_count:
                emit()
                return
            step = steps[depth]
            if step.is_delta:
                relation = delta_relation
            else:
                relation = database.get(step.pred_key)
            if step.negated:
                # anti-join: the key covers every position (the tuple is
                # fully ground here), so the probe is a membership test
                # against the completed lower-stratum relation
                if relation is not None and len(relation) > 0:
                    if not step.index_positions:
                        return  # 0-ary atom holds: negation fails
                    key = []
                    for tag, payload in step.key_ops:
                        if tag == _SLOT:
                            key.append(frame[payload])
                        elif tag == _CONST:
                            key.append(payload)
                        else:  # _EVAL
                            term, pairs = payload
                            key.append(
                                resolve(term, {v: frame[s] for v, s in pairs})
                            )
                    stats.join_probes += 1
                    if relation.lookup(step.index_positions, tuple(key)):
                        return
                run(depth + 1)
                return
            if relation is None or len(relation) == 0:
                return
            key = []
            for tag, payload in step.key_ops:
                if tag == _SLOT:
                    key.append(frame[payload])
                elif tag == _CONST:
                    key.append(payload)
                else:  # _EVAL
                    term, pairs = payload
                    key.append(
                        resolve(term, {v: frame[s] for v, s in pairs})
                    )
            stats.join_probes += 1
            rows = relation.lookup(step.index_positions, tuple(key))
            row_ops = step.row_ops
            next_depth = depth + 1
            for row in rows:
                stats.tuples_scanned += 1
                ok = True
                for pos, tag, payload in row_ops:
                    value = row[pos]
                    if tag == _STORE:
                        frame[payload] = value
                    elif tag == _EQ:
                        if frame[payload] != value:
                            ok = False
                            break
                    elif tag == _EQC:
                        if payload != value:
                            ok = False
                            break
                    else:  # _MATCH
                        pattern, bound_pairs, free_pairs = payload
                        seed = {v: frame[s] for v, s in bound_pairs}
                        if not match_into(pattern, value, seed):
                            ok = False
                            break
                        for v, s in free_pairs:
                            frame[s] = seed[v]
                if ok:
                    run(next_depth)

        run(0)
        return produced

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        database: Database,
        stats,
        delta_relation: Optional[Relation] = None,
        meter=None,
    ) -> List[IdTuple]:
        """All head instances derivable from this plan, as ID rows.

        The batch-vectorized twin of :meth:`execute`: partial matches
        travel as parallel columns of term IDs (one list per live frame
        slot), and each step probes its relation's int-ID index once per
        *distinct* key in the batch instead of once per frame, emitting
        the next batch.  Solution multiplicities -- and therefore
        ``rule_firings`` / ``facts_derived`` / ``duplicate_derivations``
        -- are identical to :meth:`execute` by construction (grouping
        only reorders frames within a round); ``join_probes`` counts the
        deduplicated probes, which is the quantity batching shrinks.

        ``meter``, when given, is consulted once at entry (a batch
        boundary for the resource governor) and may abort by raising.
        """
        if meter is not None:
            meter.check_batch(stats.facts_derived, stats.tuples_scanned)
        cols: Dict[int, List[int]] = {}
        n = 1
        rule = self.rule
        resolve_id = _CATALOG.resolve
        id_of = _CATALOG.id_of
        intern = _CATALOG.intern

        for step in self.steps:
            if step.is_delta:
                relation = delta_relation
            else:
                relation = database.get(step.pred_key)
            if step.negated:
                # anti-join: the key covers every position, so it *is*
                # the candidate ID row; membership is one _rowmap probe
                if relation is None or len(relation) == 0:
                    continue  # nothing to refute: all frames survive
                if not step.index_positions:
                    return []  # 0-ary atom holds: negation fails
                keys = _batch_keys(step.b_key_ops, cols, n, True, id_of)
                rowmap = relation._rowmap
                stats.join_probes += n
                sel = [i for i in range(n) if keys[i] not in rowmap]
                if not sel:
                    return []
                cols = {
                    s: [cols[s][i] for i in sel] for s in step.b_carry_out
                }
                n = len(sel)
                continue
            if relation is None or len(relation) == 0:
                return []
            b_key_ops = step.b_key_ops
            if b_key_ops:
                keys = _batch_keys(b_key_ops, cols, n, False, id_of)
            else:
                keys = None
            sel, stores, probes, scanned = _scan_batch_step(
                relation, step.index_positions, keys,
                step.b_row_ops, len(step.b_store_slots), cols, n,
            )
            stats.join_probes += probes
            stats.tuples_scanned += scanned
            if not sel:
                return []
            next_cols: Dict[int, List[int]] = {
                s: [cols[s][i] for i in sel] for s in step.b_carry_out
            }
            for j, s in step.b_store_out:
                next_cols[s] = stores[j]
            cols = next_cols
            n = len(sel)

        head_slots = self.b_head_slots
        if head_slots is not None:
            stats.rule_firings += n
            if not head_slots:
                return [()] * n
            if len(head_slots) == 1:
                return [(value,) for value in cols[head_slots[0]]]
            return list(zip(*(cols[s] for s in head_slots)))
        produced: List[IdTuple] = []
        b_head_ops = self.b_head_ops
        for i in range(n):
            args = []
            for tag, payload in b_head_ops:
                if tag == _SLOT:
                    args.append(cols[payload][i])
                elif tag == _CONST:
                    args.append(payload)
                elif tag == _EVAL:
                    term, pairs = payload
                    value = resolve(
                        term, {v: resolve_id(cols[s][i]) for v, s in pairs}
                    )
                    if not value.is_ground():
                        raise EvaluationError(
                            f"rule {rule} produced a non-ground head "
                            f"argument {value}; the rule is not "
                            "range-restricted for this database"
                        )
                    args.append(intern(value))
                else:  # _UNBOUND
                    raise EvaluationError(
                        f"rule {rule} produced a non-ground head argument "
                        f"{payload}; the rule is not range-restricted for "
                        "this database"
                    )
            stats.rule_firings += 1
            produced.append(tuple(args))
        return produced

    # ------------------------------------------------------------------
    # index registration
    # ------------------------------------------------------------------
    def index_requests(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """(pred_key, positions) pairs this plan probes on the database."""
        return [
            (step.pred_key, step.index_positions)
            for step in self.steps
            if not step.is_delta and step.index_positions
        ]

    def register_indexes(self, database: Database) -> None:
        """Register this plan's indexes on the database's relations."""
        for pred_key, positions in self.index_requests():
            relation = database.get(pred_key)
            if relation is not None:
                relation.register_index(positions)

    def __repr__(self):
        return (
            f"JoinPlan({self.rule}, delta={self.delta_index}, "
            f"order={self.order})"
        )


def compile_rule(rule: Rule, delta_index: Optional[int] = None) -> JoinPlan:
    """Compile one rule (for one delta choice) into a :class:`JoinPlan`.

    Negated body literals compile into anti-join steps; unsafe negation
    (a negated variable no positive literal binds) is rejected here with
    :class:`UnsafeNegationError` before any plan exists.
    """
    if delta_index is not None and not (0 <= delta_index < len(rule.body)):
        raise ValueError(
            f"delta index {delta_index} out of range for rule {rule}"
        )
    if rule.has_negation():
        rule.check_safe_negation()
    slots: Dict[Variable, int] = {
        var: i for i, var in enumerate(rule.variables())
    }
    order = order_body(rule, delta_index)
    bound: Set[Variable] = set()
    steps = []
    for body_idx in order:
        literal = rule.body[body_idx]
        index_positions, key_ops = _key_ops_for(literal, slots, bound)
        if literal.negated:
            if len(index_positions) != literal.arity:
                # cannot happen after check_safe_negation + the eligible
                # ordering, but fail loudly rather than mis-evaluate
                raise UnsafeNegationError(
                    f"rule {rule}: anti-join for {literal} would run with "
                    "unbound argument positions",
                    rule=rule,
                )
            steps.append(
                JoinStep(
                    literal,
                    literal.pred_key,
                    False,
                    True,
                    tuple(index_positions),
                    tuple(key_ops),
                    (),
                )
            )
            continue
        row_ops = _row_ops_for(literal, slots, bound, set(index_positions))
        steps.append(
            JoinStep(
                literal,
                literal.pred_key,
                body_idx == delta_index,
                False,
                tuple(index_positions),
                tuple(key_ops),
                tuple(row_ops),
            )
        )
    head_ops = []
    for arg in rule.head.args:
        arg_vars = arg.variables()
        if not arg_vars:
            head_ops.append((_CONST, arg))
        elif isinstance(arg, Variable):
            if arg in bound:
                head_ops.append((_SLOT, slots[arg]))
            else:
                head_ops.append((_UNBOUND, arg))
        elif all(v in bound for v in arg_vars):
            head_ops.append(
                (_EVAL, (arg, tuple((v, slots[v]) for v in arg_vars)))
            )
        else:
            head_ops.append((_UNBOUND, arg))
    return JoinPlan(
        rule, delta_index, order, tuple(steps), tuple(head_ops), len(slots)
    )


def partition_columns(plan: JoinPlan) -> Optional[Tuple[int, ...]]:
    """Input-row positions to hash-partition a sharded execution on.

    The parallel tier splits a plan's first-step input rows (a delta
    batch, or a full relation treated as one) across workers.  Sharding
    is *correct* for any split -- the solution multiset is partitioned
    exactly because every input row is processed by exactly one worker
    -- but probe locality is not free: :func:`_scan_batch_step` probes
    once per distinct key per batch, so scattering equal join keys
    across workers multiplies probes.  This helper finds the input-row
    positions whose values feed the next probing step's key: hashing on
    them keeps each distinct key's rows on one worker, so the per-shard
    probe sets are disjoint and their union equals the serial probe set.

    Returns None when no downstream step keys on an input column (the
    caller falls back to rule-level parallelism, or to arbitrary
    splitting when the plan has no probing step at all).
    """
    steps = plan.steps
    if not steps or steps[0].negated:
        return None
    first = steps[0]
    # frame slot -> input-row position, for the values step 0 stores
    slot_to_pos: Dict[int, int] = {}
    for pos, tag, payload in first.b_row_ops:
        if tag == _STORE:
            slot_to_pos[first.b_store_slots[payload]] = pos
    if not slot_to_pos:
        return None
    for step in steps[1:]:
        if not step.b_key_ops:
            continue
        positions = [
            slot_to_pos[payload]
            for tag, payload in step.b_key_ops
            if tag == _SLOT and payload in slot_to_pos
        ]
        if positions:
            return tuple(dict.fromkeys(positions))
        # the first probing step keys on something the input does not
        # supply (constants, or values bound by an intermediate step):
        # partitioning the input cannot co-locate its keys
        return None
    return None


def plan_interns_terms(plan: JoinPlan) -> bool:
    """Whether executing the plan can intern *new* catalog terms.

    Batch execution allocates term IDs in exactly two places: ``_MATCH``
    row ops (structural patterns bind sub-terms via ``intern``) and
    ``_EVAL`` / ``_UNBOUND`` head ops (constructed head values).  Key
    ops only ever call ``id_of``, which never allocates.  Process-pool
    workers share the parent's :class:`TermCatalog` by copy-on-write
    fork, so a plan that interns at run time would grow worker-local ID
    spaces that disagree with the parent -- such plans must run
    serially (the parallel tier checks this gate per program).
    """
    for step in plan.steps:
        for _pos, tag, _payload in step.b_row_ops:
            if tag == _MATCH:
                return True
    for tag, _payload in plan.b_head_ops:
        if tag in (_EVAL, _UNBOUND):
            return True
    return False


class CompiledProgram:
    """All plans for a program: one full plan per rule, plus one delta
    plan per *positive* body occurrence of a derived predicate.

    ``strata`` is the stratum partition of the rule indexes (a single
    stratum for positive programs): the engines drive each stratum to
    its fixpoint before the next starts, so anti-join steps always probe
    completed relations.  Compilation therefore rejects non-stratified
    programs (:class:`StratificationError`) and unsafe negation
    (:class:`UnsafeNegationError`) up front.
    """

    __slots__ = ("program", "derived_keys", "strata", "_plans",
                 "_delta_occurrences", "_delta_index_positions")

    def __init__(self, program: Program):
        self.program = program
        self.derived_keys = program.derived_predicates()
        _, self.strata = stratify_rules(program)
        self._plans: Dict[Tuple[int, Optional[int]], JoinPlan] = {}
        self._delta_occurrences: Dict[int, Tuple[int, ...]] = {}
        self._delta_index_positions: Optional[
            Dict[str, Tuple[Tuple[int, ...], ...]]
        ] = None
        for rule_index, rule in enumerate(program.rules):
            self._plans[(rule_index, None)] = compile_rule(rule)
            occurrences = tuple(
                i for i, literal in enumerate(rule.body)
                if literal.pred_key in self.derived_keys
                and not literal.negated
            )
            self._delta_occurrences[rule_index] = occurrences
            for i in occurrences:
                self._plans[(rule_index, i)] = compile_rule(rule, i)

    def plan(
        self, rule_index: int, delta_index: Optional[int] = None
    ) -> JoinPlan:
        return self._plans[(rule_index, delta_index)]

    def delta_occurrences(self, rule_index: int) -> Tuple[int, ...]:
        """Body indexes of derived predicates (candidate delta literals)."""
        return self._delta_occurrences[rule_index]

    def delta_index_positions(self) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
        """Index positions the delta plans probe on delta relations.

        A delta occurrence runs first in its plan, so its only ground
        positions are constants known at plan time (magic seeds and
        the like).  The semi-naive driver registers these on each
        per-round delta :class:`Relation` at creation, so every delta
        probe -- including the round's first, which would otherwise pay
        the lazy index build inside the join -- is a plain hash lookup.
        """
        cached = self._delta_index_positions
        if cached is None:
            gathered: Dict[str, Set[Tuple[int, ...]]] = {}
            for (_, delta_index), plan in self._plans.items():
                if delta_index is None:
                    continue
                step = plan.steps[0]  # the delta occurrence runs first
                if step.index_positions:
                    gathered.setdefault(step.pred_key, set()).add(
                        step.index_positions
                    )
            cached = {
                key: tuple(sorted(values))
                for key, values in gathered.items()
            }
            self._delta_index_positions = cached
        return cached

    def register_indexes(self, database: Database) -> None:
        """Register every plan's index positions on existing relations.

        Relations created later (derived heads) index lazily on first
        probe and stay maintained incrementally thereafter.
        """
        for plan in self._plans.values():
            plan.register_indexes(database)

    def __len__(self):
        return len(self._plans)

    def __repr__(self):
        return (
            f"CompiledProgram({len(self.program)} rules, "
            f"{len(self._plans)} plans)"
        )


# ----------------------------------------------------------------------
# subquery plans (compiled top-down / QSQ execution)
# ----------------------------------------------------------------------

class SubqueryStep:
    """One body literal of a compiled subquery plan.

    Derived steps probe the evaluator's answer store for the literal's
    adorned predicate on its adornment's bound positions (the same key
    the subquery vector is built from); base steps probe the database
    exactly like a :class:`JoinStep`.  Body order is preserved -- the
    sip's total order determines which subqueries exist (the paper's
    ``Q``), so reordering is not sound here.
    """

    __slots__ = ("literal", "pred_key", "is_derived", "self_recursive",
                 "lookup_positions", "key_ops", "row_ops", "maybe_unground",
                 "generic_pairs", "b_key_ops", "b_row_ops", "b_store_slots",
                 "b_carry_out", "b_store_out")

    def __init__(self, literal, pred_key, is_derived, self_recursive,
                 lookup_positions, key_ops, row_ops, maybe_unground,
                 generic_pairs):
        self.literal = literal
        self.pred_key = pred_key
        self.is_derived = is_derived
        #: the step probes the store the plan's own head emits into, so
        #: the executor must snapshot the probed rows (emission would
        #: otherwise extend the index bucket it is iterating)
        self.self_recursive = self_recursive
        #: adornment bound positions (derived) / ground positions (base)
        self.lookup_positions = lookup_positions
        self.key_ops = key_ops
        self.row_ops = row_ops
        #: True when a bound argument's variables are not all guaranteed
        #: bound by earlier steps -- the executor then checks groundness
        #: at run time and falls back to a generic scan when it fails
        self.maybe_unground = maybe_unground
        #: ((var, slot) bound at entry, (var, slot) bound by this step);
        #: only populated for the maybe_unground fallback
        self.generic_pairs = generic_pairs
        # ID-level twins, filled in by _attach_batch_ops at plan build
        self.b_key_ops = ()
        self.b_row_ops = ()
        self.b_store_slots = ()
        self.b_carry_out = ()
        self.b_store_out = ()

    def __repr__(self):
        kind = "derived" if self.is_derived else "base"
        return (
            f"SubqueryStep({self.literal}, {kind}, "
            f"key on {self.lookup_positions})"
        )


class SubqueryPlan:
    """A compiled adorned rule for top-down evaluation.

    ``entry_ops`` match the head's bound arguments against an input
    bound vector (one op per vector position); ``steps`` run the body in
    sip order; ``head_ops`` emit the full head tuple.  Unlike
    :class:`JoinPlan`, non-ground head arguments skip the emission
    instead of raising: the QSQ evaluator mirrors the legacy
    ``_solve_rule``, which silently drops non-ground rows.
    """

    __slots__ = ("rule", "head_key", "entry_ops", "steps", "derived_steps",
                 "head_ops", "n_slots", "b_head_ops", "b_head_slots",
                 "b_entry_slots")

    def __init__(self, rule, head_key, entry_ops, steps, head_ops, n_slots):
        self.rule = rule
        self.head_key = head_key
        self.entry_ops = entry_ops
        self.steps = steps
        #: step depths holding derived literals (candidate answer deltas)
        self.derived_steps = tuple(
            i for i, step in enumerate(steps) if step.is_derived
        )
        self.head_ops = head_ops
        self.n_slots = n_slots
        #: ID-level twins + the slots the entry ops must populate as
        #: batch columns (the liveness frontier before step 0)
        self.b_head_ops, self.b_head_slots, self.b_entry_slots = (
            _attach_batch_ops(steps, head_ops)
        )

    def __repr__(self):
        return f"SubqueryPlan({self.rule})"


def compile_subquery_rule(rule: Rule, derived_keys: Set[str]) -> SubqueryPlan:
    """Compile one adorned rule into a :class:`SubqueryPlan`."""
    if rule.has_negation():
        raise UnsupportedProgramError(
            f"rule {rule}: the QSQ evaluator handles positive programs "
            "only; use method='auto' for stratified programs (it "
            "resolves to the bottom-up magic path)"
        )
    slots: Dict[Variable, int] = {
        var: i for i, var in enumerate(rule.variables())
    }
    head = rule.head
    bound: Set[Variable] = set()
    entry_ops = []
    for pos, arg in enumerate(head.bound_args()):
        arg_vars = arg.variables()
        if not arg_vars:
            entry_ops.append((pos, _CONST, arg))
        elif isinstance(arg, Variable):
            if arg in bound:
                entry_ops.append((pos, _EQ, slots[arg]))
            else:
                entry_ops.append((pos, _STORE, slots[arg]))
                bound.add(arg)
        else:
            bound_pairs = tuple(
                (v, slots[v]) for v in arg_vars if v in bound
            )
            free_vars = tuple(v for v in arg_vars if v not in bound)
            free_pairs = tuple((v, slots[v]) for v in free_vars)
            entry_ops.append((pos, _MATCH, (arg, bound_pairs, free_pairs)))
            bound.update(free_vars)

    steps = []
    for literal in rule.body:
        if literal.pred_key in derived_keys:
            positions = literal.bound_positions()
            key_ops = []
            maybe_unground = False
            for pos in positions:
                arg = literal.args[pos]
                arg_vars = arg.variables()
                if not arg_vars:
                    key_ops.append((_CONST, arg))
                elif isinstance(arg, Variable) and arg in bound:
                    key_ops.append((_SLOT, slots[arg]))
                elif all(v in bound for v in arg_vars):
                    key_ops.append(
                        (_EVAL,
                         (arg, tuple((v, slots[v]) for v in arg_vars)))
                    )
                else:
                    # a bound position the sip did not actually bind --
                    # cannot happen for adorn_program output, but kept
                    # correct: resolve what is bound, check at run time
                    maybe_unground = True
                    key_ops.append(
                        (_EVAL,
                         (arg,
                          tuple((v, slots[v]) for v in arg_vars
                                if v in bound)))
                    )
            generic_pairs = None
            if maybe_unground:
                lit_vars = literal.variables()
                generic_pairs = (
                    tuple((v, slots[v]) for v in lit_vars if v in bound),
                    tuple((v, slots[v]) for v in lit_vars if v not in bound),
                )
            row_ops = _row_ops_for(literal, slots, bound, set(positions))
            # a successful match grounds every variable of the literal
            bound.update(literal.variables())
            steps.append(
                SubqueryStep(
                    literal, literal.pred_key, True,
                    literal.pred_key == head.pred_key, positions,
                    tuple(key_ops), tuple(row_ops), maybe_unground,
                    generic_pairs,
                )
            )
        else:
            index_positions, key_ops = _key_ops_for(literal, slots, bound)
            row_ops = _row_ops_for(
                literal, slots, bound, set(index_positions)
            )
            steps.append(
                SubqueryStep(
                    literal, literal.pred_key, False, False,
                    tuple(index_positions), tuple(key_ops),
                    tuple(row_ops), False, None,
                )
            )

    head_ops = []
    for arg in head.args:
        arg_vars = arg.variables()
        if not arg_vars:
            head_ops.append((_CONST, arg))
        elif isinstance(arg, Variable):
            if arg in bound:
                head_ops.append((_SLOT, slots[arg]))
            else:
                head_ops.append((_UNBOUND, arg))
        elif all(v in bound for v in arg_vars):
            head_ops.append(
                (_EVAL, (arg, tuple((v, slots[v]) for v in arg_vars)))
            )
        else:
            head_ops.append((_UNBOUND, arg))
    return SubqueryPlan(
        rule, head.pred_key, tuple(entry_ops), tuple(steps),
        tuple(head_ops), len(slots),
    )


class SubqueryProgram:
    """All subquery plans for an adorned program, plus per-predicate
    bound-position tuples for the evaluator's answer-store indexes."""

    __slots__ = ("program", "derived_keys", "plans", "plans_by_head",
                 "bound_positions")

    def __init__(self, program: Program):
        self.program = program
        self.derived_keys = program.derived_predicates()
        plans = []
        by_head: Dict[str, List[SubqueryPlan]] = {}
        bound_positions: Dict[str, Tuple[int, ...]] = {}
        for rule in program.rules:
            plan = compile_subquery_rule(rule, self.derived_keys)
            plans.append(plan)
            by_head.setdefault(plan.head_key, []).append(plan)
            if plan.head_key not in bound_positions:
                bound_positions[plan.head_key] = rule.head.bound_positions()
        self.plans = tuple(plans)
        self.plans_by_head = {
            key: tuple(values) for key, values in by_head.items()
        }
        self.bound_positions = bound_positions

    def register_indexes(self, database: Database) -> None:
        """Register every base step's index positions up front."""
        for plan in self.plans:
            for step in plan.steps:
                if not step.is_derived and step.lookup_positions:
                    relation = database.get(step.pred_key)
                    if relation is not None:
                        relation.register_index(step.lookup_positions)

    def __len__(self):
        return len(self.plans)

    def __repr__(self):
        return (
            f"SubqueryProgram({len(self.program)} rules, "
            f"{len(self.plans)} plans)"
        )


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------

class PlanCache:
    """An LRU cache of compiled programs, keyed by program identity.

    Programs hash structurally, so two parses of the same source share
    an entry.  Both execution paths use one cache (the key includes the
    compilation kind), which is what lets benchmark loops and repeated
    CLI queries stop recompiling: ``evaluate*`` and ``qsq_evaluate``
    consult the shared module-level cache by default and report
    hits/misses through their stats objects.
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries", "_lock")

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("PlanCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, Program], object]" = (
            OrderedDict()
        )
        # OrderedDict relinking (move_to_end / insert / popitem) is not
        # atomic under concurrent callers; the server's reader pool
        # shares this cache, so bookkeeping takes a lock.  Compilation
        # itself runs outside it -- duplicate compiles race benignly
        # and the first published entry wins.
        self._lock = threading.Lock()

    def get(self, kind: str, program: Program, factory):
        """The cached compilation for ``(kind, program)``.

        Returns ``(compiled, hit)``; on a miss, ``factory(program)``
        builds the entry (evicting the least recently used one past
        ``maxsize``).
        """
        key = (kind, program)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, True
            self.misses += 1
        compiled = factory(program)
        with self._lock:
            entry = self._entries.setdefault(key, compiled)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return entry, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return (
            f"PlanCache({len(self._entries)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


_SHARED_PLAN_CACHE = PlanCache()


def shared_plan_cache() -> PlanCache:
    """The process-wide default :class:`PlanCache`."""
    return _SHARED_PLAN_CACHE


def compiled_program_for(
    program: Program, plan_cache: Optional[PlanCache] = None
) -> Tuple[CompiledProgram, bool]:
    """A (possibly cached) :class:`CompiledProgram`, plus the hit flag."""
    cache = plan_cache if plan_cache is not None else _SHARED_PLAN_CACHE
    return cache.get("bottom-up", program, CompiledProgram)


def subquery_program_for(
    program: Program, plan_cache: Optional[PlanCache] = None
) -> Tuple[SubqueryProgram, bool]:
    """A (possibly cached) :class:`SubqueryProgram`, plus the hit flag."""
    cache = plan_cache if plan_cache is not None else _SHARED_PLAN_CACHE
    return cache.get("qsq", program, SubqueryProgram)
