"""Incremental view maintenance: delta-propagated materialized programs.

The Session memo makes a *repeated* query cheap, but any intersecting
mutation drops the entry and the next query pays a full cold fixpoint.
This module keeps the derived relations of a stratified program
**materialized** and repairs them in place after mutations, so the
post-mutation cost is proportional to the delta, not the database.

:class:`MaterializedProgram` compiles the program once (the same
:class:`~repro.datalog.planner.CompiledProgram` plans the semi-naive
engine uses), evaluates it once into a private ``working`` database, and
attaches a mutation log to the source database
(:meth:`Database.start_mutation_log`).  Each :meth:`maintain` call
drains the log into a net per-relation delta and repairs the strata in
order:

* **Insertions** propagate through the existing semi-naive delta
  machinery: the added rows seed an
  :class:`~repro.datalog.engine._IdDeltaBatch` and the compiled
  ``JoinPlan`` delta plans run columnar batch rounds against ``working``
  (base-relation delta occurrences, which the semi-naive engine never
  needs, are compiled on demand via
  :func:`~repro.datalog.planner.compile_rule`).
* **Deletions** from *flat* strata (no rule reads a same-stratum head:
  the non-recursive case) use **counting**: a per-derived-row derivation
  count is maintained by exact finite differencing -- for the rule body
  ``B1 .. Bn`` and a delta at position ``j``, positions before ``j``
  join the new state and positions after ``j`` the old state, so every
  (dis)appearing body solution is counted exactly once.  A row is
  removed exactly when its count reaches zero.
* **Deletions** from recursive strata use **DRed** (delete and
  rederive): overdelete every derivation that *may* have depended on a
  deleted fact (joining old states, reconstructed from the recorded
  deltas), remove the overdeleted rows, rederive the ones that are still
  base facts or still one-step derivable (bound-head derivability
  checks, not a stratum re-evaluation), and feed the survivors into the
  insertion rounds, which restore any row they transitively support.
* **Negation** is handled stratum by stratum: an *addition* to a negated
  relation deletes downstream (the anti-join loses solutions) and a
  *removal* inserts downstream, with the negated relation complete --
  its stratum is strictly lower, so it has already been repaired -- by
  the time the dependent stratum runs.

The delta-side joins the compiled plans cannot run (old-state
reconstruction, bound-head derivability) are interpreted over interned
term IDs: bindings map variables to ints, relations are probed through
their int-keyed hash indexes, and no :class:`~repro.datalog.terms.Term`
object is touched until answers are read back out.

Maintenance runs under an optional budget meter; any abort (budget trip,
cancellation, injected fault) leaves the *source* database untouched --
only the private ``working`` copy may hold a half-applied delta, so the
program is marked ``stale`` and the next access rebuilds it cold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .analysis import stratify_rules
from .ast import Literal, Program
from .catalog import term_catalog
from .database import Database, FactTuple, IdTuple, Relation
from .engine import EvaluationStats, _IdDeltaBatch, evaluate_seminaive
from .errors import EvaluationError
from .planner import (
    JoinPlan,
    PlanCache,
    compile_rule,
    compiled_program_for,
)
from .terms import Variable

__all__ = ["MaterializedProgram", "MaintenanceResult"]

_CATALOG = term_catalog()


@dataclass
class MaintenanceResult:
    """Outcome of one :meth:`MaterializedProgram.maintain` call.

    ``action`` is ``"noop"`` (no pending mutations), ``"maintained"``
    (incremental repair), or ``"rebuilt"`` (the view was stale and was
    re-evaluated cold).  ``facts_added``/``facts_removed`` count derived
    rows the repair actually changed in the materialization;
    ``strata_skipped`` counts strata whose inputs the delta never
    touched (the delta-proportionality win).
    """

    action: str
    facts_added: int = 0
    facts_removed: int = 0
    strata_maintained: int = 0
    strata_skipped: int = 0
    rounds: int = 0
    elapsed: float = 0.0
    stats: EvaluationStats = field(default_factory=EvaluationStats)


class _Delta:
    """Net change of one relation during a maintenance pass.

    ``added``/``removed`` are disjoint sets of ID rows: a row
    overdeleted and then rederived within a pass cancels to a net no-op
    before downstream strata see the delta.
    """

    __slots__ = ("added", "removed")

    def __init__(self) -> None:
        self.added: Set[IdTuple] = set()
        self.removed: Set[IdTuple] = set()

    @property
    def empty(self) -> bool:
        return not (self.added or self.removed)


class _LitSpec:
    """One literal lowered to ID-level ops.

    ``ops`` holds one ``(position, is_var, slot_or_id)`` triple per
    argument: constants are pre-interned to their catalog IDs, variables
    mapped to integer slots of the rule's binding list.  Everything the
    maintenance joins do with a literal -- seed matching, index probes,
    head construction, negated membership -- runs on these triples and
    plain ints; a binding is a list indexed by slot, ``None`` = unbound.
    """

    __slots__ = ("pred", "negated", "ops", "nvars")

    def __init__(
        self, literal: Literal, var_slots: Dict[Variable, int]
    ) -> None:
        self.pred = literal.pred_key
        self.negated = literal.negated
        self.nvars = len(var_slots)
        intern = _CATALOG.intern
        self.ops = tuple(
            (pos, True, var_slots[arg])
            if isinstance(arg, Variable)
            else (pos, False, intern(arg))
            for pos, arg in enumerate(literal.args)
        )

    def match(
        self, idrow: IdTuple, subst: Optional[List] = None
    ) -> Optional[List]:
        """Bind this literal against a ground ID row (seed matching)."""
        out = [None] * self.nvars if subst is None else list(subst)
        for pos, is_var, key in self.ops:
            value = idrow[pos]
            if is_var:
                bound = out[key]
                if bound is None:
                    out[key] = value
                elif bound != value:
                    return None
            elif key != value:
                return None
        return out

    def ground(self, subst: List) -> Optional[IdTuple]:
        """The literal's ID row under ``subst`` (None if not ground)."""
        row = []
        for _, is_var, key in self.ops:
            value = subst[key] if is_var else key
            if value is None:
                return None
            row.append(value)
        return tuple(row)

    def probe_parts(self, subst: List):
        """Split the args by ``subst``: (positions, key, unbound pairs).

        ``positions``/``key`` feed :meth:`Relation.lookup_ids`
        (positions arrive sorted by construction); ``unbound`` lists the
        ``(position, slot)`` pairs a matching row must bind.
        """
        positions: List[int] = []
        key: List[int] = []
        unbound: List[Tuple[int, int]] = []
        for pos, is_var, k in self.ops:
            if is_var:
                value = subst[k]
                if value is None:
                    unbound.append((pos, k))
                    continue
                positions.append(pos)
                key.append(value)
            else:
                positions.append(pos)
                key.append(k)
        return tuple(positions), tuple(key), unbound


def _rel_rows(rel: Relation, positions, key) -> List[IdTuple]:
    """ID rows of ``rel`` matching an ID key (index-probed)."""
    if not positions:
        return list(rel.id_rows())
    id_key = key[0] if len(key) == 1 else key
    cols = rel._columns
    return [
        tuple(col[slot] for col in cols)
        for slot in rel.lookup_ids(positions, id_key)
    ]


class _NewView:
    """The current state of one relation (possibly absent)."""

    __slots__ = ("rel",)

    def __init__(self, rel: Optional[Relation]) -> None:
        self.rel = rel

    def rows(
        self, positions, key, stats: EvaluationStats
    ) -> List[IdTuple]:
        rel = self.rel
        if rel is None or not len(rel):
            return []
        stats.join_probes += 1
        return _rel_rows(rel, positions, key)

    def contains(self, idrow: IdTuple) -> bool:
        rel = self.rel
        return rel is not None and rel.has_id_row(idrow)


class _OldView:
    """A relation's *pre-delta* state, reconstructed on the fly.

    The working database already holds the new state; the old state is
    (new minus added) union removed, applied per probe -- the deltas are
    small, so this costs O(|bucket| + |delta|) per probe.
    """

    __slots__ = ("rel", "delta")

    def __init__(self, rel: Optional[Relation], delta: _Delta) -> None:
        self.rel = rel
        self.delta = delta

    def rows(
        self, positions, key, stats: EvaluationStats
    ) -> List[IdTuple]:
        stats.join_probes += 1
        rel = self.rel
        delta = self.delta
        out = (
            _rel_rows(rel, positions, key)
            if rel is not None and len(rel)
            else []
        )
        if delta.added and out:
            added = delta.added
            out = [idrow for idrow in out if idrow not in added]
        for idrow in delta.removed:
            if all(idrow[p] == key[i] for i, p in enumerate(positions)):
                out.append(idrow)
        return out

    def contains(self, idrow: IdTuple) -> bool:
        delta = self.delta
        if idrow in delta.removed:
            return True
        if idrow in delta.added:
            return False
        rel = self.rel
        return rel is not None and rel.has_id_row(idrow)


def _safe_order(
    rule, skip: Optional[int], initial_bound: Iterable
) -> Tuple[int, ...]:
    """Join order over the body positions excluding ``skip``.

    Positive literals keep source order; negated literals defer until
    their variables are bound (by ``initial_bound`` -- the delta or head
    bindings -- or the positive prefix).
    """
    body = rule.body
    order: List[int] = []
    bound = set(initial_bound)
    pending = [
        i for i, lit in enumerate(body) if lit.negated and i != skip
    ]

    def flush() -> None:
        kept = []
        for i in pending:
            if all(v in bound for v in body[i].variables()):
                order.append(i)
            else:
                kept.append(i)
        pending[:] = kept

    flush()
    for i, literal in enumerate(body):
        if i == skip or literal.negated:
            continue
        order.append(i)
        bound.update(literal.variables())
        flush()
    if pending:
        raise EvaluationError(
            f"rule {rule}: no maintenance join order binds every negated "
            "variable (the rule is not safely negated)"
        )
    return tuple(order)


class MaterializedProgram:
    """A stratified program kept materialized against a live database.

    Construction evaluates the program once (compiled semi-naive) into a
    private ``working`` database and attaches a mutation log to the
    source ``database``; :meth:`maintain` then repairs ``working`` in
    place from the logged net delta.  The source database is never
    mutated by maintenance -- an aborted pass can only leave the private
    copy inconsistent, in which case the program marks itself ``stale``
    and the next :meth:`maintain`/:meth:`rebuild` re-evaluates cold.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        plan_cache: Optional[PlanCache] = None,
        meter=None,
    ):
        self.program = program
        self.base = database
        self._plan_cache = plan_cache
        self.derived_keys = program.derived_predicates()
        self.predicate_stratum, self.rule_strata = stratify_rules(program)
        self.compiled, _ = compiled_program_for(program, plan_cache)
        #: per-rule ID-level literal specs: (head_spec, body_specs);
        #: each rule's variables map to slots of one binding list
        self._specs: List[Tuple[_LitSpec, Tuple[_LitSpec, ...]]] = []
        for rule in program.rules:
            var_slots: Dict[Variable, int] = {}
            for literal in (rule.head, *rule.body):
                for var in literal.variables():
                    if var not in var_slots:
                        var_slots[var] = len(var_slots)
            self._specs.append(
                (
                    _LitSpec(rule.head, var_slots),
                    tuple(
                        _LitSpec(lit, var_slots) for lit in rule.body
                    ),
                )
            )
        #: per-stratum head predicates and body inputs
        self._stratum_heads: List[frozenset] = []
        self._stratum_inputs: List[frozenset] = []
        #: True for strata no rule of which reads a same-stratum head
        #: (the non-recursive case: counting deletion applies)
        self._flat: List[bool] = []
        for stratum in self.rule_strata:
            heads = frozenset(
                program.rules[ri].head.pred_key for ri in stratum
            )
            inputs = frozenset(
                lit.pred_key
                for ri in stratum
                for lit in program.rules[ri].body
            )
            self._stratum_heads.append(heads)
            self._stratum_inputs.append(inputs)
            self._flat.append(not (heads & inputs))
        self._rules_by_head: Dict[str, Tuple[int, ...]] = {}
        for ri, rule in enumerate(program.rules):
            key = rule.head.pred_key
            self._rules_by_head[key] = self._rules_by_head.get(key, ()) + (
                ri,
            )
        #: join orders for the interpreted delta joins, keyed by
        #: (rule_index, delta position or None-for-derivability)
        self._orders: Dict[Tuple[int, Optional[int]], Tuple[int, ...]] = {}
        #: delta plans for base-relation occurrences (the semi-naive
        #: engine never compiles those; insertion propagation needs them)
        self._extra_plans: Dict[Tuple[int, int], JoinPlan] = {}
        #: per-stratum view cache for the interpreted joins
        self._views: Dict[Tuple[str, bool], object] = {}
        #: per-head-predicate (head_spec, body_specs, order, n) rows for
        #: the rederive derivability walk
        self._derive_cache: Dict[str, list] = {}
        #: derivation counts for flat-stratum heads (counting deletion);
        #: a row's count is its number of body solutions across the
        #: stratum's rules, plus one if it is also a base fact
        self._counts: Dict[str, Dict[IdTuple, int]] = {}

        self.stale = False
        self.passes = 0
        self.rebuilds = 0
        self.last_elapsed = 0.0
        self.synced_version = database.version
        #: capture starts *before* the initial evaluation: the
        #: evaluation works on a copy (whose own log tuple is empty, so
        #: nothing internal is captured), and no mutation can slip
        #: between log start and materialization
        self.log = database.start_mutation_log()
        result = evaluate_seminaive(
            program,
            database,
            plan_cache=plan_cache,
            meter=meter,
        )
        self.working = result.database
        self.stats = result.stats
        self._init_counts()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> bool:
        """True when mutations are logged but not yet applied."""
        return bool(self.log)

    @property
    def fresh(self) -> bool:
        """True when ``working`` reflects the database exactly."""
        return not self.stale and not self.log

    def close(self) -> None:
        """Detach the mutation log from the source database."""
        self.base.stop_mutation_log(self.log)

    def tuples(self, pred_key: str) -> Set[FactTuple]:
        """The materialized tuples of one predicate."""
        return self.working.tuples(pred_key)

    # ------------------------------------------------------------------
    # maintenance driver
    # ------------------------------------------------------------------
    def maintain(self, meter=None) -> MaintenanceResult:
        """Bring ``working`` up to date with the logged mutations.

        Incremental when possible; a stale program (previous pass
        aborted) rebuilds cold instead.  Any exception out of the
        incremental path (budget trip, cancellation, injected fault)
        marks the program stale before propagating -- the source
        database is untouched either way.
        """
        if self.stale:
            return self.rebuild(meter)
        started = time.perf_counter()
        if not self.log:
            return MaintenanceResult(
                action="noop", elapsed=time.perf_counter() - started
            )
        try:
            result = self._maintain_inner(meter)
        except BaseException:
            # the working copy may hold a half-applied delta; poison it
            # (the log is moot -- a rebuild reads the source database)
            self.stale = True
            del self.log[:]
            raise
        self.passes += 1
        result.elapsed = time.perf_counter() - started
        self.last_elapsed = result.elapsed
        self.synced_version = self.base.version
        return result

    def rebuild(self, meter=None) -> MaintenanceResult:
        """Re-evaluate the program cold and swap the result in.

        On failure (e.g. the meter trips mid-evaluation) the current
        state -- working copy, counts, log, staleness -- is untouched,
        so a later retry still sees a consistent picture.
        """
        started = time.perf_counter()
        result = evaluate_seminaive(
            self.program,
            self.base,
            plan_cache=self._plan_cache,
            meter=meter,
        )
        self.working = result.database
        for plan in self._extra_plans.values():
            plan.register_indexes(self.working)
        del self.log[:]
        self._counts = {}
        self._init_counts()
        self.stale = False
        self.rebuilds += 1
        elapsed = time.perf_counter() - started
        self.last_elapsed = elapsed
        self.synced_version = self.base.version
        return MaintenanceResult(
            action="rebuilt", elapsed=elapsed, stats=result.stats
        )

    # ------------------------------------------------------------------
    # initial derivation counts (counting deletion)
    # ------------------------------------------------------------------
    def _init_counts(self) -> None:
        stats = EvaluationStats()
        for s, stratum in enumerate(self.rule_strata):
            if not self._flat[s]:
                continue
            for ri in stratum:
                rule = self.program.rules[ri]
                # execute_batch returns one ID row per body solution
                # (duplicates included): exactly the multiset the
                # counts need
                rows = self.compiled.plan(ri).execute_batch(
                    self.working, stats
                )
                counts = self._counts.setdefault(rule.head.pred_key, {})
                for idrow in rows:
                    counts[idrow] = counts.get(idrow, 0) + 1
            for pred in self._stratum_heads[s]:
                base_rel = self.base.get(pred)
                if base_rel is not None and len(base_rel):
                    counts = self._counts.setdefault(pred, {})
                    for idrow in base_rel.id_rows():
                        counts[idrow] = counts.get(idrow, 0) + 1

    # ------------------------------------------------------------------
    # the incremental pass
    # ------------------------------------------------------------------
    def _maintain_inner(self, meter) -> MaintenanceResult:
        result = MaintenanceResult(action="maintained")
        stats = result.stats
        # net delta per (pred, idrow): capture only logs actual set
        # changes, so entries for one row alternate sign and the net is
        # always -1, 0, or +1
        net: Dict[Tuple[str, IdTuple], int] = {}
        for pred, idrow, sign in self.log:
            key = (pred, idrow)
            net[key] = net.get(key, 0) + sign
        del self.log[:]

        changed: Dict[str, _Delta] = {}
        external: Dict[str, _Delta] = {}
        for (pred, idrow), sign in net.items():
            if not sign:
                continue
            # asserted/retracted facts under *derived* names are
            # external support, routed through the predicate's stratum;
            # base-relation deltas apply to working directly
            target = external if pred in self.derived_keys else changed
            delta = target.get(pred)
            if delta is None:
                delta = target[pred] = _Delta()
            if sign > 0:
                delta.added.add(idrow)
            else:
                delta.removed.add(idrow)

        for pred, delta in changed.items():
            rel = self.working.relation(pred)
            if delta.added:
                rel.add_id_rows(delta.added)
            if delta.removed:
                rel.discard_id_rows(delta.removed)

        for s, stratum in enumerate(self.rule_strata):
            heads = self._stratum_heads[s]
            ext = {
                pred: external[pred] for pred in heads if pred in external
            }
            inputs_changed = any(
                pred in changed and not changed[pred].empty
                for pred in self._stratum_inputs[s]
            )
            if not ext and not inputs_changed:
                result.strata_skipped += 1
                continue
            result.strata_maintained += 1
            self._views.clear()
            if meter is not None:
                result.rounds += 1
                meter.check_round(
                    stats.facts_derived,
                    stats.tuples_scanned,
                    s,
                    result.rounds,
                    self.working,
                )
            if self._flat[s]:
                added, removed = self._maintain_flat(
                    stratum, changed, ext, stats, meter
                )
            else:
                added, removed, rounds = self._maintain_dred(
                    s, stratum, heads, changed, ext, stats, meter, result
                )
                result.rounds += rounds
            result.facts_added += added
            result.facts_removed += removed
        return result

    # ------------------------------------------------------------------
    # interpreted ID-level delta joins
    # ------------------------------------------------------------------
    def _order(self, ri: int, skip: Optional[int]) -> Tuple[int, ...]:
        key = (ri, skip)
        order = self._orders.get(key)
        if order is None:
            rule = self.program.rules[ri]
            initial = (
                rule.head.variables()
                if skip is None
                else rule.body[skip].variables()
            )
            order = self._orders[key] = _safe_order(rule, skip, initial)
        return order

    def _view_of(self, pred: str, changed, old: bool):
        key = (pred, old)
        view = self._views.get(key)
        if view is not None:
            return view
        rel = self.working.get(pred)
        if old and changed is not None:
            delta = changed.get(pred)
            if delta is not None and not delta.empty:
                view = _OldView(rel, delta)
            else:
                view = _NewView(rel)
        else:
            view = _NewView(rel)
        if rel is not None:
            # a missing relation may spring into existence mid-stratum
            # (first derived row of a predicate); don't cache absence
            self._views[key] = view
        return view

    def _delta_solutions(
        self,
        ri: int,
        skip: Optional[int],
        subst: List,
        changed: Optional[Dict[str, _Delta]],
        stats: EvaluationStats,
        discipline: str,
    ):
        """Complete a body match with position ``skip`` pre-bound.

        ``discipline`` picks the state each remaining position reads:
        ``"counting"`` (positions before the delta read the new state,
        positions after it the old -- the exact finite-differencing
        rule) or ``"new"`` (insertion and derivability).  Negated
        positions become membership checks against the same state.
        Bindings are slot lists of term IDs.
        """
        specs = self._specs[ri][1]
        order = self._order(ri, skip)
        n = len(order)
        counting = discipline == "counting"

        def extend(pos: int, subst: List):
            if pos == n:
                yield subst
                return
            k = order[pos]
            spec = specs[k]
            view = self._view_of(
                spec.pred, changed, counting and k > skip
            )
            if spec.negated:
                idrow = spec.ground(subst)
                if idrow is None or not view.contains(idrow):
                    yield from extend(pos + 1, subst)
                return
            positions, key, unbound = spec.probe_parts(subst)
            if not unbound:
                # fully bound: membership, not enumeration
                stats.join_probes += 1
                if view.contains(tuple(key)):
                    yield from extend(pos + 1, subst)
                return
            for idrow in view.rows(positions, key, stats):
                stats.tuples_scanned += 1
                out = list(subst)
                for p, slot in unbound:
                    value = idrow[p]
                    bound = out[slot]
                    if bound is None:
                        out[slot] = value
                    elif bound != value:
                        out = None
                        break
                if out is not None:
                    yield from extend(pos + 1, out)

        yield from extend(0, subst)

    def _derivable(
        self, pred: str, idrow: IdTuple, stats: EvaluationStats
    ) -> bool:
        """Does any rule derive ``idrow`` one-step from current state?

        The rederive inner loop: same join as :meth:`_delta_solutions`
        with the head pre-bound and all-new views, but returning on the
        first solution without generator machinery.
        """
        working = self.working
        for head_spec, specs, order, n in self._derive_info(pred):
            subst = head_spec.match(idrow)
            if subst is not None and self._derive_rec(
                specs, order, n, 0, subst, working, stats
            ):
                return True
        return False

    def _derive_info(self, pred: str):
        info = self._derive_cache.get(pred)
        if info is None:
            info = [
                (
                    self._specs[ri][0],
                    self._specs[ri][1],
                    self._order(ri, None),
                    len(self._specs[ri][1]),
                )
                for ri in self._rules_by_head.get(pred, ())
            ]
            self._derive_cache[pred] = info
        return info

    def _derive_rec(
        self, specs, order, n, pos, subst, working, stats
    ) -> bool:
        if pos == n:
            return True
        spec = specs[order[pos]]
        rel = working.relation(spec.pred)
        if spec.negated:
            if rel is not None and rel.has_id_row(spec.ground(subst)):
                return False
            return self._derive_rec(
                specs, order, n, pos + 1, subst, working, stats
            )
        if rel is None:
            return False
        positions, key, unbound = spec.probe_parts(subst)
        if not unbound:
            stats.join_probes += 1
            return rel.has_id_row(tuple(key)) and self._derive_rec(
                specs, order, n, pos + 1, subst, working, stats
            )
        for row in _rel_rows(rel, positions, key):
            stats.tuples_scanned += 1
            out = list(subst)
            for p, slot in unbound:
                value = row[p]
                bound = out[slot]
                if bound is None:
                    out[slot] = value
                elif bound != value:
                    out = None
                    break
            if out is not None and self._derive_rec(
                specs, order, n, pos + 1, out, working, stats
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # counting maintenance (flat strata)
    # ------------------------------------------------------------------
    def _maintain_flat(
        self, stratum, changed, ext, stats, meter
    ) -> Tuple[int, int]:
        """Exact count maintenance for a non-recursive stratum.

        For every rule and every body position whose relation changed,
        the signed delta solutions adjust the head row's derivation
        count; rows cross zero exactly when they (dis)appear.  Negated
        positions flip the sign: an added fact under a negated literal
        *removes* solutions, a removed one adds them.
        """
        program = self.program
        deltas: Dict[str, Dict[IdTuple, int]] = {}
        for ri in stratum:
            rule = program.rules[ri]
            head_spec, body_specs = self._specs[ri]
            for j, literal in enumerate(rule.body):
                delta = changed.get(literal.pred_key)
                if delta is None or delta.empty:
                    continue
                if meter is not None:
                    meter.check_batch(
                        stats.facts_derived, stats.tuples_scanned
                    )
                spec = body_specs[j]
                if literal.negated:
                    pairs = ((delta.added, -1), (delta.removed, 1))
                else:
                    pairs = ((delta.added, 1), (delta.removed, -1))
                head_deltas = deltas.setdefault(rule.head.pred_key, {})
                for idrows, sign in pairs:
                    for idrow in idrows:
                        subst = spec.match(idrow)
                        if subst is None:
                            continue
                        for final in self._delta_solutions(
                            ri, j, subst, changed, stats, "counting"
                        ):
                            stats.rule_firings += 1
                            hid = head_spec.ground(final)
                            head_deltas[hid] = (
                                head_deltas.get(hid, 0) + sign
                            )
        for pred, delta in ext.items():
            head_deltas = deltas.setdefault(pred, {})
            for idrow in delta.added:
                head_deltas[idrow] = head_deltas.get(idrow, 0) + 1
            for idrow in delta.removed:
                head_deltas[idrow] = head_deltas.get(idrow, 0) - 1

        added = removed = 0
        for pred, head_deltas in deltas.items():
            counts = self._counts.setdefault(pred, {})
            rel = self.working.relation(pred)
            out = changed.get(pred)
            if out is None:
                out = changed[pred] = _Delta()
            for idrow, dc in head_deltas.items():
                if not dc:
                    continue
                old = counts.get(idrow, 0)
                new = old + dc
                if new > 0:
                    counts[idrow] = new
                else:
                    counts.pop(idrow, None)
                if old <= 0 < new:
                    rel.add_id_row(idrow)
                    out.added.add(idrow)
                    stats.record_facts(pred, 1)
                    added += 1
                elif new <= 0 < old:
                    rel.discard_id_row(idrow)
                    out.removed.add(idrow)
                    removed += 1
        return added, removed

    # ------------------------------------------------------------------
    # DRed maintenance (recursive strata)
    # ------------------------------------------------------------------
    def _insert_plan(self, ri: int, j: int) -> JoinPlan:
        """The delta plan for body position ``j`` of rule ``ri``.

        Derived occurrences come precompiled with the program; base
        occurrences (which semi-naive evaluation never deltas) are
        compiled on first use and cached.
        """
        literal = self.program.rules[ri].body[j]
        if literal.pred_key in self.derived_keys:
            return self.compiled.plan(ri, j)
        plan = self._extra_plans.get((ri, j))
        if plan is None:
            plan = compile_rule(self.program.rules[ri], j)
            plan.register_indexes(self.working)
            self._extra_plans[(ri, j)] = plan
        return plan

    def _flip(self, changed: Dict[str, _Delta], to_old: bool) -> None:
        """Roll ``working`` to the pre-delta state of every changed
        relation (or back).

        Overdeletion must join *old* states everywhere.  Rather than
        wrapping every probe, the recorded deltas are physically undone
        for the duration of phase 1 -- O(|delta|) row flips each way --
        so the compiled batch plans can run against ``working``
        directly.  Same-stratum relations are untouched until phase 2,
        hence already old.
        """
        for pred, delta in changed.items():
            if delta.empty:
                continue
            rel = self.working.relation(pred)
            if to_old:
                if delta.added:
                    rel.discard_id_rows(delta.added)
                if delta.removed:
                    rel.add_id_rows(delta.removed)
            else:
                if delta.removed:
                    rel.discard_id_rows(delta.removed)
                if delta.added:
                    rel.add_id_rows(delta.added)

    def _maintain_dred(
        self, s, stratum, heads, changed, ext, stats, meter, result
    ) -> Tuple[int, int, int]:
        program = self.program
        working = self.working
        rounds = 0

        # ---- phase 1: overdelete.  Every join reads *old* state:
        # working is flipped back to the pre-delta picture (same-stratum
        # relations are untouched until phase 2, so they are already
        # old), which lets the compiled batch delta plans collect every
        # derivation that may have used a deleted fact -- including
        # through several recursive steps.
        od: Dict[str, Set[IdTuple]] = {}
        batches: Dict[str, _IdDeltaBatch] = {}

        def od_push(pred: str, idrows) -> None:
            bucket = od.setdefault(pred, set())
            rel = working.get(pred)
            if rel is None:
                return
            has = rel.has_id_row
            fresh = []
            for idrow in idrows:
                if idrow not in bucket and has(idrow):
                    bucket.add(idrow)
                    fresh.append(idrow)
            if not fresh:
                return
            batch = batches.get(pred)
            if batch is None:
                batch = batches[pred] = _IdDeltaBatch()
            batch.extend(fresh)

        self._flip(changed, True)
        self._views.clear()
        try:
            for pred, delta in ext.items():
                od_push(pred, delta.removed)

            for ri in stratum:
                rule = program.rules[ri]
                head_spec, body_specs = self._specs[ri]
                relation_name = head_spec.pred
                for j, literal in enumerate(rule.body):
                    delta = changed.get(literal.pred_key)
                    if delta is None:
                        continue
                    if meter is not None:
                        meter.check_batch(
                            stats.facts_derived, stats.tuples_scanned
                        )
                    if literal.negated:
                        # an *addition* under a negated literal kills
                        # solutions; interpreted join against the
                        # flipped (old) state
                        if not delta.added:
                            continue
                        spec = body_specs[j]
                        produced = []
                        for idrow in delta.added:
                            subst = spec.match(idrow)
                            if subst is None:
                                continue
                            for final in self._delta_solutions(
                                ri, j, subst, changed, stats, "new"
                            ):
                                produced.append(head_spec.ground(final))
                        od_push(relation_name, produced)
                        continue
                    if not delta.removed:
                        continue
                    seed = _IdDeltaBatch()
                    seed.extend(list(delta.removed))
                    rows = self._insert_plan(ri, j).execute_batch(
                        working, stats, seed, meter=meter
                    )
                    od_push(relation_name, rows)

            while batches:
                rounds += 1
                if meter is not None:
                    meter.check_round(
                        stats.facts_derived,
                        stats.tuples_scanned,
                        s,
                        result.rounds + rounds,
                        working,
                    )
                previous, batches = batches, {}
                for ri in stratum:
                    rule = program.rules[ri]
                    head_key = rule.head.pred_key
                    for j in self.compiled.delta_occurrences(ri):
                        batch = previous.get(rule.body[j].pred_key)
                        if batch is None:
                            continue
                        rows = self.compiled.plan(ri, j).execute_batch(
                            working, stats, batch, meter=meter
                        )
                        od_push(head_key, rows)
        finally:
            self._flip(changed, False)
            self._views.clear()

        # ---- phase 2: remove the overdeleted rows
        for pred, bucket in od.items():
            working.relation(pred).discard_id_rows(bucket)

        removed_final: Dict[str, Set[IdTuple]] = {
            pred: set(bucket) for pred, bucket in od.items()
        }
        added_net: Dict[str, Set[IdTuple]] = {}

        def record_fresh(pred: str, fresh) -> None:
            stats.record_facts(pred, len(fresh))
            out_removed = removed_final.get(pred)
            out_added = added_net.setdefault(pred, set())
            for idrow in fresh:
                if out_removed and idrow in out_removed:
                    out_removed.discard(idrow)
                else:
                    out_added.add(idrow)

        batches: Dict[str, _IdDeltaBatch] = {}

        def push(pred: str, fresh) -> None:
            if not fresh:
                return
            record_fresh(pred, fresh)
            batch = batches.get(pred)
            if batch is None:
                batch = batches[pred] = _IdDeltaBatch()
            batch.extend(fresh)

        # ---- phase 3: rederive.  One sweep of bound-head one-step
        # derivability checks against the deleted state; survivors are
        # pushed into the insertion batches, so anything they (or later
        # insertions) transitively support is restored by the compiled
        # rounds below rather than by repeated sweeps.
        self._views.clear()
        for pred, bucket in od.items():
            if meter is not None:
                meter.check_batch(
                    stats.facts_derived, stats.tuples_scanned
                )
            rel = working.relation(pred)
            base_rel = self.base.get(pred)
            survivors = []
            for idrow in bucket:
                if (
                    base_rel is not None and base_rel.has_id_row(idrow)
                ) or self._derivable(pred, idrow, stats):
                    survivors.append(idrow)
            if survivors:
                for idrow in survivors:
                    rel.add_id_row(idrow)
                push(pred, survivors)

        # ---- phase 4: insertion propagation through the compiled
        # columnar delta plans (the semi-naive batch machinery)
        for pred, delta in ext.items():
            rel = working.relation(pred)
            fresh = [
                idrow for idrow in delta.added if rel.add_id_row(idrow)
            ]
            push(pred, fresh)

        for ri in stratum:
            rule = program.rules[ri]
            head_spec, body_specs = self._specs[ri]
            relation = working.relation(head_spec.pred)
            for j, literal in enumerate(rule.body):
                delta = changed.get(literal.pred_key)
                if delta is None:
                    continue
                if meter is not None:
                    meter.check_batch(
                        stats.facts_derived, stats.tuples_scanned
                    )
                if literal.negated:
                    # a removal under a negated literal enables
                    # solutions; interpreted join, everything-new
                    if not delta.removed:
                        continue
                    spec = body_specs[j]
                    produced: List[IdTuple] = []
                    for idrow in delta.removed:
                        subst = spec.match(idrow)
                        if subst is None:
                            continue
                        for final in self._delta_solutions(
                            ri, j, subst, changed, stats, "new"
                        ):
                            stats.rule_firings += 1
                            produced.append(head_spec.ground(final))
                    if produced:
                        fresh = relation.add_id_rows(produced)
                        stats.duplicate_derivations += len(produced) - len(
                            fresh
                        )
                        push(head_spec.pred, fresh)
                    continue
                if not delta.added:
                    continue
                seed = _IdDeltaBatch()
                seed.extend(list(delta.added))
                rows = self._insert_plan(ri, j).execute_batch(
                    working, stats, seed, meter=meter
                )
                if rows:
                    fresh = relation.add_id_rows(rows)
                    stats.duplicate_derivations += len(rows) - len(fresh)
                    push(head_spec.pred, fresh)

        while batches:
            rounds += 1
            if meter is not None:
                meter.check_round(
                    stats.facts_derived,
                    stats.tuples_scanned,
                    s,
                    result.rounds + rounds,
                    working,
                )
            previous_batches, batches = batches, {}
            for ri in stratum:
                rule = program.rules[ri]
                head_key = rule.head.pred_key
                relation = working.relation(head_key)
                for j in self.compiled.delta_occurrences(ri):
                    batch = previous_batches.get(rule.body[j].pred_key)
                    if batch is None:
                        continue
                    rows = self.compiled.plan(ri, j).execute_batch(
                        working, stats, batch, meter=meter
                    )
                    if not rows:
                        continue
                    fresh = relation.add_id_rows(rows)
                    stats.duplicate_derivations += len(rows) - len(fresh)
                    if fresh:
                        record_fresh(head_key, fresh)
                        nxt = batches.get(head_key)
                        if nxt is None:
                            nxt = batches[head_key] = _IdDeltaBatch()
                        nxt.extend(fresh)

        added = removed = 0
        for pred in heads:
            net_removed = removed_final.get(pred) or set()
            net_added = added_net.get(pred) or set()
            if not net_removed and not net_added:
                continue
            out = changed.get(pred)
            if out is None:
                out = changed[pred] = _Delta()
            out.added |= net_added
            out.removed |= net_removed
            added += len(net_added)
            removed += len(net_removed)
        return added, removed, rounds

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_consistency(self) -> bool:
        """Compare the materialization against a cold evaluation.

        The testing oracle: recompute the program from the source
        database and verify every derived relation matches, and that the
        flat-stratum counts agree with membership.  Raises AssertionError
        on mismatch; returns True (pending mutations are applied first).
        """
        if self.stale or self.log:
            self.maintain()
        cold = evaluate_seminaive(
            self.program, self.base, plan_cache=self._plan_cache
        )
        for pred in self.derived_keys:
            expected = cold.database.tuples(pred)
            actual = self.working.tuples(pred)
            assert actual == expected, (
                f"materialized {pred} diverged: "
                f"{len(actual)} rows vs {len(expected)} cold "
                f"(missing={sorted(map(str, expected - actual))[:5]}, "
                f"extra={sorted(map(str, actual - expected))[:5]})"
            )
        for pred, counts in self._counts.items():
            rel = self.working.get(pred)
            members = set(rel.id_rows()) if rel is not None else set()
            assert set(counts) == members, (
                f"derivation counts for {pred} diverged from membership"
            )
            assert all(c > 0 for c in counts.values()), (
                f"non-positive derivation count recorded for {pred}"
            )
        return True

    def __repr__(self):
        state = (
            "stale"
            if self.stale
            else ("pending" if self.log else "fresh")
        )
        return (
            f"MaterializedProgram({len(self.program.rules)} rules, "
            f"{len(self.rule_strata)} strata, {state}, "
            f"passes={self.passes}, rebuilds={self.rebuilds})"
        )
