"""The deductive-database substrate: terms, rules, storage, evaluation.

This subpackage is a self-contained Datalog-with-function-symbols engine:
it knows nothing about sips or magic sets.  The paper's contribution
(``repro.core``) is implemented as source-to-source transformations over
these data structures, evaluated by this engine.
"""

from .ast import Literal, Program, Query, Rule
from .catalog import TermCatalog, term_catalog
from .database import Database, Relation
from .engine import (
    EvaluationResult,
    EvaluationStats,
    answer_tuples,
    evaluate,
    evaluate_naive,
    evaluate_seminaive,
)
from .errors import (
    AdornmentError,
    ConnectivityError,
    EvaluationError,
    IntegrityError,
    NonTerminationError,
    ParseError,
    ReproError,
    RewriteError,
    SafetyError,
    SipValidationError,
    StratificationError,
    UnsafeNegationError,
    UnsupportedProgramError,
    WellFormednessError,
)
from .parser import (
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
)
from .planner import (
    CompiledProgram,
    JoinPlan,
    JoinStep,
    PlanCache,
    SubqueryPlan,
    SubqueryProgram,
    SubqueryStep,
    compile_rule,
    compile_subquery_rule,
    compiled_program_for,
    order_body,
    shared_plan_cache,
    subquery_program_for,
)
from .terms import (
    Constant,
    EMPTY_LIST,
    LinExpr,
    Struct,
    Term,
    Variable,
    make_list,
    list_elements,
)
from .derivation import DerivationNode, explain, fact_stages
from .topdown import QSQResult, qsq_evaluate

__all__ = [
    "Literal",
    "Program",
    "Query",
    "Rule",
    "Database",
    "Relation",
    "TermCatalog",
    "term_catalog",
    "EvaluationResult",
    "EvaluationStats",
    "answer_tuples",
    "evaluate",
    "evaluate_naive",
    "evaluate_seminaive",
    "CompiledProgram",
    "JoinPlan",
    "JoinStep",
    "PlanCache",
    "SubqueryPlan",
    "SubqueryProgram",
    "SubqueryStep",
    "compile_rule",
    "compile_subquery_rule",
    "compiled_program_for",
    "order_body",
    "shared_plan_cache",
    "subquery_program_for",
    "QSQResult",
    "qsq_evaluate",
    "DerivationNode",
    "explain",
    "fact_stages",
    "Constant",
    "EMPTY_LIST",
    "LinExpr",
    "Struct",
    "Term",
    "Variable",
    "make_list",
    "list_elements",
    "parse_literal",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_term",
    "ReproError",
    "ParseError",
    "WellFormednessError",
    "ConnectivityError",
    "SipValidationError",
    "AdornmentError",
    "EvaluationError",
    "IntegrityError",
    "NonTerminationError",
    "SafetyError",
    "RewriteError",
    "StratificationError",
    "UnsafeNegationError",
    "UnsupportedProgramError",
]
