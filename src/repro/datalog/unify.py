"""Unification and one-way matching over the term language.

Two operations drive the whole system:

* :func:`unify` -- full two-way unification with occurs check, used by the
  top-down (QSQ) evaluator;
* :func:`match` -- one-way matching of a possibly non-ground pattern
  against a ground tuple, used by the bottom-up engine's joins.

Both understand :class:`~repro.datalog.terms.LinExpr` index expressions:
an expression ``c*V + d`` matched against an integer constant ``n`` solves
for ``V`` (failing when ``(n - d)`` is not divisible by ``c``), which is
what lets the numeric mode of the generalized counting method (Section 6)
run under ordinary bottom-up evaluation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .terms import Constant, LinExpr, Struct, Term, Variable

__all__ = [
    "Substitution",
    "unify",
    "unify_sequences",
    "match",
    "match_into",
    "match_sequences",
    "resolve",
    "compose",
]

#: A substitution maps variables to terms.
Substitution = Dict[Variable, Term]


def resolve(term: Term, subst: Substitution) -> Term:
    """Walk a term through a substitution until a fixed point.

    Unlike :meth:`Term.substitute` this follows chains
    (``X -> Y, Y -> c`` resolves ``X`` to ``c``), which is what the
    incremental unifier needs.
    """
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    if isinstance(term, Struct) and term.variables():
        return Struct(term.functor, tuple(resolve(a, subst) for a in term.args))
    if isinstance(term, LinExpr):
        inner = resolve(term.var, subst)
        if inner is not term.var:
            return term.apply_to(inner) if not isinstance(inner, Struct) else term
    return term


def _occurs(var: Variable, term: Term, subst: Substitution) -> bool:
    term = resolve(term, subst)
    if isinstance(term, Variable):
        return term == var
    if isinstance(term, Struct):
        return any(_occurs(var, a, subst) for a in term.args)
    if isinstance(term, LinExpr):
        return _occurs(var, term.var, subst)
    return False


def unify(
    left: Term,
    right: Term,
    subst: Optional[Substitution] = None,
    occurs_check: bool = True,
) -> Optional[Substitution]:
    """Unify two terms; return the extended substitution or None.

    The input substitution is *not* mutated.
    """
    if subst is None:
        subst = {}
    result = dict(subst)
    if _unify_into(left, right, result, occurs_check):
        return result
    return None


def unify_sequences(
    lefts: Sequence[Term],
    rights: Sequence[Term],
    subst: Optional[Substitution] = None,
    occurs_check: bool = True,
) -> Optional[Substitution]:
    """Unify two equal-length sequences of terms."""
    if len(lefts) != len(rights):
        return None
    if subst is None:
        subst = {}
    result = dict(subst)
    for left, right in zip(lefts, rights):
        if not _unify_into(left, right, result, occurs_check):
            return None
    return result


def _unify_into(
    left: Term, right: Term, subst: Substitution, occurs_check: bool
) -> bool:
    left = resolve(left, subst)
    right = resolve(right, subst)
    if left == right:
        return True
    if isinstance(left, Variable):
        if occurs_check and _occurs(left, right, subst):
            return False
        subst[left] = right
        return True
    if isinstance(right, Variable):
        if occurs_check and _occurs(right, left, subst):
            return False
        subst[right] = left
        return True
    if isinstance(left, LinExpr):
        return _unify_linexpr(left, right, subst)
    if isinstance(right, LinExpr):
        return _unify_linexpr(right, left, subst)
    if isinstance(left, Struct) and isinstance(right, Struct):
        if left.functor != right.functor or left.arity != right.arity:
            return False
        for la, ra in zip(left.args, right.args):
            if not _unify_into(la, ra, subst, occurs_check):
                return False
        return True
    return False


def _unify_linexpr(expr: LinExpr, other: Term, subst: Substitution) -> bool:
    """Unify ``c*V + d`` with another (already resolved) term."""
    if isinstance(other, Constant):
        if not isinstance(other.value, int):
            return False
        solution = expr.solve(other.value)
        if solution is None:
            return False
        return _unify_into(expr.var, Constant(solution), subst, False)
    if isinstance(other, LinExpr):
        if other.coeff == expr.coeff and other.offset == expr.offset:
            return _unify_into(expr.var, other.var, subst, False)
        return False
    return False


def match(
    pattern: Term,
    ground: Term,
    subst: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """One-way match: bind the pattern's variables to parts of a ground term.

    The ground side must not gain bindings; used for joining body literals
    against stored facts.
    """
    if subst is None:
        subst = {}
    result = dict(subst)
    if _match_into(pattern, ground, result):
        return result
    return None


def match_into(
    pattern: Term,
    ground: Term,
    subst: Substitution,
) -> bool:
    """Mutating variant of :func:`match` for callers that own ``subst``.

    Extends ``subst`` in place with the pattern's bindings and reports
    success; on failure ``subst`` may hold partial bindings.  The join
    planner's structured-term fallback uses this to avoid a second dict
    copy per candidate row.
    """
    return _match_into(pattern, ground, subst)


def match_sequences(
    patterns: Sequence[Term],
    grounds: Sequence[Term],
    subst: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """Match a sequence of patterns against a ground tuple."""
    if len(patterns) != len(grounds):
        return None
    if subst is None:
        subst = {}
    result = dict(subst)
    for pattern, ground in zip(patterns, grounds):
        if not _match_into(pattern, ground, result):
            return None
    return result


def _match_into(pattern: Term, ground: Term, subst: Substitution) -> bool:
    pattern = resolve(pattern, subst)
    if isinstance(pattern, Variable):
        subst[pattern] = ground
        return True
    if isinstance(pattern, Constant):
        return pattern == ground
    if isinstance(pattern, LinExpr):
        if not isinstance(ground, Constant) or not isinstance(ground.value, int):
            return False
        solution = pattern.solve(ground.value)
        if solution is None:
            return False
        return _match_into(pattern.var, Constant(solution), subst)
    if isinstance(pattern, Struct):
        if (
            not isinstance(ground, Struct)
            or ground.functor != pattern.functor
            or ground.arity != pattern.arity
        ):
            return False
        for parg, garg in zip(pattern.args, ground.args):
            if not _match_into(parg, garg, subst):
                return False
        return True
    return False


def compose(outer: Substitution, inner: Substitution) -> Substitution:
    """Compose substitutions: apply ``outer`` after ``inner``."""
    result: Substitution = {}
    for var, term in inner.items():
        result[var] = term.substitute(outer)
    for var, term in outer.items():
        if var not in result:
            result[var] = term
    return result
