"""Parser for a Prolog-ish Datalog surface syntax.

Grammar (informal)::

    program   := (clause | query | comment)*
    clause    := literal ( ":-" blit ("," blit)* )? "."
    query     := "?-" literal "." | literal "?"
    blit      := ( "not" | "\\+" )? literal
    literal   := NAME ( "(" term ("," term)* ")" )?
    term      := VARIABLE | NAME | NUMBER | STRING
               | NAME "(" term ("," term)* ")"
               | "[" "]" | "[" term ("," term)* ("|" term)? "]"

Conventions follow the paper (Section 1.1): identifiers beginning with an
uppercase letter or underscore are variables; lowercase identifiers and
numerals are constants or predicate/function names.  ``%`` starts a
line comment.  Body literals may be negated (negation as failure,
stratified semantics): ``not p(X)`` or ``\\+ p(X)``; heads and queries
must stay positive.

:func:`parse_program` returns ``(Program, facts, queries)`` so a single
source file can carry rules, ground facts (loaded into a database by the
caller) and queries.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import Literal, Program, Query, Rule
from .errors import ParseError
from .terms import Constant, EMPTY_LIST, Struct, Term, Variable, make_list

__all__ = [
    "parse_program",
    "parse_rule",
    "parse_literal",
    "parse_term",
    "parse_query",
    "ParsedSource",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<implies>:-)
  | (?P<qmark>\?-)
  | (?P<naf>\\\+)
  | (?P<punct>[()\[\],.|?])
  | (?P<number>-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<name>[a-z][A-Za-z0-9_]*)
  | (?P<variable>[A-Z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        kind = m.lastgroup
        text = m.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, m.start() - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = m.start() + text.rfind("\n") + 1
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Optional[_Token]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.text == text

    # ------------------------------------------------------------------
    def parse_term(self) -> Term:
        token = self.next()
        if token.kind == "variable":
            return Variable(token.text)
        if token.kind == "number":
            return Constant(int(token.text))
        if token.kind == "string":
            return Constant(token.text[1:-1].replace('\\"', '"'))
        if token.kind == "name":
            if self.at("("):
                self.next()
                args = [self.parse_term()]
                while self.at(","):
                    self.next()
                    args.append(self.parse_term())
                self.expect(")")
                return Struct(token.text, tuple(args))
            return Constant(token.text)
        if token.text == "[":
            return self._parse_list()
        raise ParseError(
            f"unexpected token {token.text!r} while parsing a term",
            line=token.line,
            column=token.column,
        )

    def _parse_list(self) -> Term:
        if self.at("]"):
            self.next()
            return EMPTY_LIST
        items = [self.parse_term()]
        while self.at(","):
            self.next()
            items.append(self.parse_term())
        tail: Term = EMPTY_LIST
        if self.at("|"):
            self.next()
            tail = self.parse_term()
        self.expect("]")
        return make_list(items, tail)

    def parse_literal(self) -> Literal:
        token = self.next()
        if token.kind != "name":
            raise ParseError(
                f"expected a predicate name, found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        args: List[Term] = []
        if self.at("("):
            self.next()
            args.append(self.parse_term())
            while self.at(","):
                self.next()
                args.append(self.parse_term())
            self.expect(")")
        return Literal(token.text, tuple(args))

    def parse_body_literal(self) -> Literal:
        """A body literal, optionally negated (``not p(X)`` / ``\\+ p(X)``).

        ``not`` is an ordinary lowercase name, so it only reads as the
        negation keyword when another predicate name follows it --
        ``not(X)`` stays a literal of the predicate ``not``.
        """
        token = self.peek()
        if token is not None and token.kind == "naf":
            self.next()
            return self.parse_literal().negate()
        if (
            token is not None
            and token.kind == "name"
            and token.text == "not"
            and self.pos + 1 < len(self.tokens)
            and self.tokens[self.pos + 1].kind == "name"
        ):
            self.next()
            return self.parse_literal().negate()
        return self.parse_literal()

    def parse_clause(self):
        """Parse one clause; returns ('query', Query) / ('rule', Rule)."""
        if self.at("?-"):
            self.next()
            literal = self.parse_literal()
            self.expect(".")
            return ("query", Query(literal))
        head = self.parse_literal()
        if self.at("?"):
            self.next()
            if self.at("."):
                self.next()
            return ("query", Query(head))
        body: List[Literal] = []
        if self.at(":-"):
            self.next()
            body.append(self.parse_body_literal())
            while self.at(","):
                self.next()
                body.append(self.parse_body_literal())
        self.expect(".")
        return ("rule", Rule(head, tuple(body)))


class ParsedSource:
    """Result of :func:`parse_program`: rules, ground facts, queries."""

    __slots__ = ("program", "facts", "queries")

    def __init__(
        self,
        program: Program,
        facts: Tuple[Literal, ...],
        queries: Tuple[Query, ...],
    ):
        self.program = program
        self.facts = facts
        self.queries = queries

    def __iter__(self):
        return iter((self.program, self.facts, self.queries))


def parse_program(source: str) -> ParsedSource:
    """Parse a full source text into rules, facts, and queries.

    Clauses with an empty body whose head is ground are treated as facts
    (Section 1.1: facts are part of the database); non-ground empty-body
    clauses are kept as unit rules of the program (the paper's
    list-reverse example relies on this).
    """
    parser = _Parser(source)
    rules: List[Rule] = []
    facts: List[Literal] = []
    queries: List[Query] = []
    while parser.peek() is not None:
        kind, payload = parser.parse_clause()
        if kind == "query":
            queries.append(payload)
            continue
        rule = payload
        if rule.is_fact() and rule.head.is_ground():
            facts.append(rule.head)
        else:
            rules.append(rule)
    program = Program(tuple(rules))
    return ParsedSource(program, tuple(facts), tuple(queries))


def parse_rule(source: str) -> Rule:
    """Parse a single rule, e.g. ``"anc(X,Y) :- par(X,Y)."``."""
    parser = _Parser(source)
    kind, payload = parser.parse_clause()
    if kind != "rule":
        raise ParseError("expected a rule, found a query")
    if parser.peek() is not None:
        token = parser.peek()
        raise ParseError(
            f"trailing input after rule: {token.text!r}",
            line=token.line,
            column=token.column,
        )
    return payload


def parse_literal(source: str) -> Literal:
    """Parse a single literal, e.g. ``"anc(john, Y)"``."""
    parser = _Parser(source)
    literal = parser.parse_literal()
    if parser.peek() is not None:
        token = parser.peek()
        raise ParseError(
            f"trailing input after literal: {token.text!r}",
            line=token.line,
            column=token.column,
        )
    return literal


def parse_term(source: str) -> Term:
    """Parse a single term, e.g. ``"[a, b | T]"``."""
    parser = _Parser(source)
    term = parser.parse_term()
    if parser.peek() is not None:
        token = parser.peek()
        raise ParseError(
            f"trailing input after term: {token.text!r}",
            line=token.line,
            column=token.column,
        )
    return term


def parse_query(source: str) -> Query:
    """Parse a query, e.g. ``"anc(john, Y)?"`` or ``"?- anc(john, Y)."``."""
    parser = _Parser(source)
    kind, payload = parser.parse_clause()
    if kind != "query":
        raise ParseError("expected a query")
    return payload
