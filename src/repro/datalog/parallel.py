"""Parallel bottom-up evaluation: a sharded worker pool over columns.

Within one semi-naive round, rule firings are independent given the
previous delta: every batch (one compiled :class:`JoinPlan` against one
delta or one full relation) computes a solution multiset that depends
only on the database state at the start of the round's current *group*
(below).  This module exploits that by fanning each round's batches out
to a persistent pool of workers and merging the derived ID rows back
through the existing dedup/rowmap path in the parent -- the fact set
and the solution counters (``facts_derived`` / ``rule_firings`` /
``duplicate_derivations`` / ``iterations``) are identical to the serial
engine *by construction*, because sharding partitions each batch's
input rows exactly and merging replays the serial batch order.

Two backends share one driver:

* **fork** (default on CPython with the GIL): worker processes are
  forked *after* the working copy, the compiled plans, and all
  compile-time constants exist, so the EDB columns, the plan objects,
  and the :class:`~repro.datalog.catalog.TermCatalog` prefix reach every
  worker by copy-on-write at zero serialization cost (this subsumes an
  explicit ``shared_memory`` export of the big EDB relations; the
  catalog's pinned prefix is the one-shot export --
  :meth:`TermCatalog.export_state` is the spawn-ready equivalent).  Per
  round, the parent broadcasts only the *fresh* rows of each merge as
  flat ``array('q')`` buffers (pickled as raw bytes) so worker replicas
  stay in lockstep, and workers return candidate-fresh rows the same
  way, pre-deduplicated against their replica to cut return traffic.
  Workers never intern: plans that allocate term IDs at run time
  (:func:`~repro.datalog.planner.plan_interns_terms`) would grow
  worker-local ID spaces that disagree with the parent, so such
  programs fall back to the thread backend.
* **thread** (auto-selected on free-threaded builds, and the fallback
  wherever fork is unavailable or unsafe): workers execute against the
  *shared* working database between merge barriers -- no replicas, no
  broadcasts; real parallelism arrives when the GIL is off.

Work splitting per batch, chosen by the join planner
(:func:`~repro.datalog.planner.partition_columns`):

* **hash**: the input rows are hash-partitioned on the column(s) that
  feed the next step's probe key, so each distinct join key lands on
  exactly one worker and the per-shard probe sets stay disjoint;
* **chunk**: no downstream probe keys on an input column (copy rules,
  pure filters) -- any split is equally good, so rows round-robin;
* **solo**: a downstream step probes on keys the input does not supply
  (partitioning cannot co-locate them) -- the whole batch goes to one
  worker and parallelism comes from running *rules* side by side.

Visibility groups keep the serial semantics exact: the serial engine
merges each batch before the next batch runs, so a batch that probes a
relation an *earlier* batch of the same round writes must observe that
merge.  Batches are therefore grouped greedily -- a batch joins the
current group unless it reads a head some earlier group member writes
-- and the parent merges (and, on fork, broadcasts) at each group
boundary.  Linear recursions parallelize whole rounds; non-linear ones
degrade to per-batch barriers, never to wrong answers.

The budget regime stays in the parent: ``meter.check_round`` /
``check_batch`` run at exactly the serial boundaries (one batch check
per batch, before dispatch), the wall-clock deadline is shipped to
workers with every ``exec`` message (they abort between work items),
and any abort -- budget trip, cancellation, injected fault, worker
death -- unwinds through a ``finally`` that tears the pool down while
the caller's database, never touched, stays integral.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from itertools import islice
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from concurrent.futures import ThreadPoolExecutor

from .ast import Program
from .catalog import term_catalog
from .database import Database, IdTuple
from .engine import (
    EvaluationResult,
    EvaluationStats,
    _check_budget,
    _compiled_for,
    _IdDeltaBatch,
)
from .errors import EvaluationError
from .planner import (
    CompiledProgram,
    JoinPlan,
    PlanCache,
    compile_rule,
    partition_columns,
    plan_interns_terms,
)

__all__ = ["evaluate_parallel", "resolve_backend"]

from array import array

_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def resolve_backend(backend: str = "auto") -> str:
    """Resolve ``"auto"`` to a concrete pool backend for this build.

    Threads when the GIL is disabled (free-threaded CPython) or fork is
    unavailable; forked processes otherwise.
    """
    if backend in ("fork", "thread"):
        return backend
    if backend != "auto":
        raise ValueError(f"unknown parallel backend {backend!r}")
    gil_enabled = getattr(sys, "_is_gil_enabled", None)
    if gil_enabled is not None and not gil_enabled():
        return "thread"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "thread"
    return "fork"


# ----------------------------------------------------------------------
# row shipping and sharding
# ----------------------------------------------------------------------

def _flatten(rows: List[IdTuple]) -> array:
    buf = array("q")
    for row in rows:
        buf.extend(row)
    return buf


def _unflatten(buf: array, arity: int, count: int) -> List[IdTuple]:
    if arity == 0:
        return [()] * count
    it = iter(buf)
    return list(zip(*([it] * arity)))


def _shard_index(row: IdTuple, pcols: Tuple[int, ...], workers: int) -> int:
    h = 0
    for p in pcols:
        h = ((h ^ row[p]) * _MIX) & _MASK
    return (h >> 32) % workers


def _hash_filter(rows, pcols, workers: int, w: int) -> List[IdTuple]:
    """The shard of ``rows`` worker ``w`` owns under hash partitioning.

    Term IDs are small dense ints, so the raw value mod ``workers``
    would stripe structured workloads badly; a Fibonacci-style mix of
    the partition columns spreads them.
    """
    if len(pcols) == 1:
        (p,) = pcols
        return [
            r for r in rows
            if (((r[p] * _MIX) & _MASK) >> 32) % workers == w
        ]
    return [
        r for r in rows if _shard_index(r, pcols, workers) == w
    ]


def _hash_shards(rows, pcols, workers: int) -> List[List[IdTuple]]:
    """All workers' hash shards at once (the parent-side splitter)."""
    shards: List[List[IdTuple]] = [[] for _ in range(workers)]
    if len(pcols) == 1:
        (p,) = pcols
        for r in rows:
            shards[(((r[p] * _MIX) & _MASK) >> 32) % workers].append(r)
    else:
        for r in rows:
            shards[_shard_index(r, pcols, workers)].append(r)
    return shards


def _rows_batch(rows: List[IdTuple]) -> _IdDeltaBatch:
    batch = _IdDeltaBatch()
    batch.rows = rows
    return batch


# ----------------------------------------------------------------------
# per-program shard planning
# ----------------------------------------------------------------------

def _shard_mode(plan: JoinPlan) -> Tuple[str, Optional[Tuple[int, ...]]]:
    """How to split this plan's input rows across workers."""
    if not plan.steps or plan.steps[0].negated:
        return ("solo", None)
    pcols = partition_columns(plan)
    if pcols is not None:
        return ("hash", pcols)
    for step in plan.steps[1:]:
        if not step.negated and step.b_key_ops:
            # a probing step keys on values the input rows do not carry:
            # splitting would re-probe the same keys on every worker
            return ("solo", None)
    return ("chunk", None)


class _ProgramShards:
    """Shard plans and split modes for one compiled program.

    ``shard_plans[rule_index]`` re-compiles the rule with its first
    *positive* body literal (in plan order) as the delta occurrence, so
    a full-relation batch -- round one, and every naive round -- can be
    executed as N disjoint input shards; solution multisets are
    join-order independent, so the per-rule counters stay exact.  Built
    in the parent before the pool forks: plan compilation interns its
    constant terms, and those IDs must exist in every worker's
    inherited catalog prefix.
    """

    __slots__ = ("shard_plans", "full_pivot", "full_modes", "delta_modes")

    def __init__(self, program: Program, compiled: CompiledProgram):
        self.shard_plans: Dict[int, JoinPlan] = {}
        self.full_pivot: Dict[int, Optional[int]] = {}
        self.full_modes: Dict[int, Tuple[str, Optional[Tuple[int, ...]]]] = {}
        self.delta_modes: Dict[
            Tuple[int, int], Tuple[str, Optional[Tuple[int, ...]]]
        ] = {}
        for rule_index, rule in enumerate(program.rules):
            plan = compiled.plan(rule_index)
            pivot = next(
                (i for i in plan.order if not rule.body[i].negated), None
            )
            self.full_pivot[rule_index] = pivot
            if pivot is None:
                self.full_modes[rule_index] = ("solo", None)
            else:
                try:
                    shard_plan = compiled.plan(rule_index, pivot)
                except KeyError:
                    shard_plan = compile_rule(rule, pivot)
                self.shard_plans[rule_index] = shard_plan
                self.full_modes[rule_index] = _shard_mode(shard_plan)
            for occ in compiled.delta_occurrences(rule_index):
                self.delta_modes[(rule_index, occ)] = _shard_mode(
                    compiled.plan(rule_index, occ)
                )

    def all_plans(self, program: Program, compiled: CompiledProgram):
        for rule_index in range(len(program.rules)):
            yield compiled.plan(rule_index)
            for occ in compiled.delta_occurrences(rule_index):
                yield compiled.plan(rule_index, occ)
        yield from self.shard_plans.values()


def _replica_preds(
    program: Program, compiled: CompiledProgram, shards: _ProgramShards
) -> FrozenSet[str]:
    """Derived predicates fork workers must maintain as real relations.

    A worker replica needs columns/rowmap/indexes only for derived
    predicates some plan *probes* (non-delta steps, anti-joins, or the
    shard pivot a full batch reads its input rows from); everything
    else -- e.g. the closure predicate of a linear recursion -- is only
    needed for result pre-deduplication, which a plain shadow set of
    rows covers at a fraction of the apply cost.
    """
    probed: Set[str] = set()
    for plan in shards.all_plans(program, compiled):
        for step in plan.steps:
            if not step.is_delta:
                probed.add(step.pred_key)
    for rule_index, pivot in shards.full_pivot.items():
        if pivot is not None:
            probed.add(program.rules[rule_index].body[pivot].pred_key)
    return frozenset(probed & compiled.derived_keys)


# ----------------------------------------------------------------------
# work items
# ----------------------------------------------------------------------

class _BatchTask:
    """One batch of one round: a rule (full) or rule/delta work item."""

    __slots__ = ("task_id", "rule_index", "delta_index", "head_key",
                 "kind", "input_pred", "mode", "pcols", "solo", "reads")

    def __init__(self, task_id, rule_index, delta_index, head_key, kind,
                 input_pred, mode, pcols, solo, reads):
        self.task_id = task_id
        self.rule_index = rule_index
        self.delta_index = delta_index
        self.head_key = head_key
        #: "full" (input = the pivot relation) or "delta" (= the delta)
        self.kind = kind
        self.input_pred = input_pred
        #: "hash" / "chunk" / "solo" (see module docstring)
        self.mode = mode
        self.pcols = pcols
        #: worker index owning the batch when mode == "solo"
        self.solo = solo
        #: same-stratum heads this batch probes as full relations; the
        #: grouping uses it to replay serial within-round visibility
        self.reads = reads

    def descriptor(self):
        return (self.task_id, self.rule_index, self.delta_index, self.kind,
                self.input_pred, self.mode, self.pcols, self.solo)


def _full_task(task_id, rule_index, program, shards, stratum_heads, workers):
    rule = program.rules[rule_index]
    mode, pcols = shards.full_modes[rule_index]
    pivot = shards.full_pivot[rule_index]
    input_pred = rule.body[pivot].pred_key if pivot is not None else None
    reads = frozenset(
        literal.pred_key for literal in rule.body if not literal.negated
    ) & stratum_heads
    return _BatchTask(
        task_id, rule_index, None, rule.head.pred_key, "full", input_pred,
        mode, pcols, task_id % workers, reads,
    )


def _delta_task(task_id, rule_index, occ, program, compiled, shards,
                stratum_heads, workers):
    rule = program.rules[rule_index]
    plan = compiled.plan(rule_index, occ)
    mode, pcols = shards.delta_modes[(rule_index, occ)]
    reads = frozenset(
        step.pred_key for step in plan.steps
        if not step.is_delta and not step.negated
    ) & stratum_heads
    return _BatchTask(
        task_id, rule_index, occ, rule.head.pred_key, "delta",
        rule.body[occ].pred_key, mode, pcols, task_id % workers, reads,
    )


def _visibility_groups(tasks: List[_BatchTask]) -> List[List[_BatchTask]]:
    """Split a round's batches into serial-order barrier groups.

    A batch joins the current group unless it reads (as a full
    relation) a head some earlier member writes; the serial engine
    would have merged that head before this batch ran, so the group
    flushes first.  Within a group nothing is merged, so every member
    sees exactly the group-start state -- the state the serial engine
    shows it too.
    """
    groups: List[List[_BatchTask]] = []
    current: List[_BatchTask] = []
    heads: Set[str] = set()
    for task in tasks:
        if current and (task.reads & heads):
            groups.append(current)
            current = []
            heads = set()
        current.append(task)
        heads.add(task.head_key)
    if current:
        groups.append(current)
    return groups


# ----------------------------------------------------------------------
# shard execution (shared by both backends; runs inside workers)
# ----------------------------------------------------------------------

def _execute_shard(plan, database, rows, deadline):
    """Run one plan over one input shard; returns (rows, probes, scanned).

    ``rows is None`` executes the plan as a plain full batch (the solo
    path for rules with no shardable pivot).  Returns None when the
    deadline already passed -- the caller reports the abort and the
    parent's meter turns it into the structured budget error.
    """
    if deadline is not None and time.monotonic() > deadline:
        return None
    lstats = EvaluationStats()
    if rows is None:
        out = plan.execute_batch(database, lstats)
    else:
        if not rows:
            return ([], 0, 0)
        out = plan.execute_batch(database, lstats, _rows_batch(rows))
    return (out, lstats.join_probes, lstats.tuples_scanned)


# ----------------------------------------------------------------------
# thread backend
# ----------------------------------------------------------------------

class _ThreadBackend:
    """Workers as threads over the *shared* working database.

    Correct on any build (group barriers mean workers only read while
    the parent only writes between groups; concurrent lazy index builds
    are value-idempotent); actually parallel on free-threaded CPython.
    """

    kind = "thread"

    def __init__(self, working, compiled, shards, workers):
        self.working = working
        self.compiled = compiled
        self.shards = shards
        self.workers = workers
        self.deltas: Dict[str, List[IdTuple]] = {}
        self.pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-parallel"
        )

    def roll_round(self, deltas: Dict[str, List[IdTuple]]) -> None:
        self.deltas = deltas

    def apply_fresh(self, updates, stats) -> None:
        pass  # shared memory: the parent's merge is already visible

    def _plan_and_rows(self, task):
        if task.kind == "full":
            if task.mode == "solo":
                return self.compiled.plan(task.rule_index), None
            relation = self.working.get(task.input_pred)
            rows = list(relation.id_rows()) if relation is not None else []
            return self.shards.shard_plans[task.rule_index], rows
        plan = self.compiled.plan(task.rule_index, task.delta_index)
        return plan, self.deltas.get(task.input_pred, [])

    def run_group(self, group, stats, deadline):
        submit = self.pool.submit
        pending = []
        for task in group:
            plan, rows = self._plan_and_rows(task)
            if rows is None or task.mode == "solo":
                pending.append((task, task.solo, submit(
                    _execute_shard, plan, self.working, rows, deadline,
                )))
                continue
            if task.mode == "hash":
                per_worker = _hash_shards(rows, task.pcols, self.workers)
            else:
                per_worker = [
                    rows[w::self.workers] for w in range(self.workers)
                ]
            for w, shard in enumerate(per_worker):
                if shard:
                    pending.append((task, w, submit(
                        _execute_shard, plan, self.working, shard, deadline,
                    )))
        results = {task.task_id: (0, []) for task in group}
        aborted = False
        for task, w, future in pending:
            out = future.result()
            if out is None:
                aborted = True
                continue
            rows_out, probes, scanned = out
            n_emitted, merged = results[task.task_id]
            merged.extend(rows_out)
            results[task.task_id] = (n_emitted + len(rows_out), merged)
            stats.rule_firings += len(rows_out)
            stats.join_probes += probes
            stats.tuples_scanned += scanned
            stats.parallel_tasks += 1
            stats.parallel_rows_shipped += len(rows_out)
            stats.parallel_worker_rows[w] = (
                stats.parallel_worker_rows.get(w, 0) + len(rows_out)
            )
        return results, aborted

    def close(self) -> None:
        self.pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# fork backend
# ----------------------------------------------------------------------

class _WorkerState:
    """Everything a forked worker inherits by copy-on-write."""

    __slots__ = ("working", "compiled", "shards", "replica_preds",
                 "workers", "catalog_pin")

    def __init__(self, working, compiled, shards, replica_preds, workers,
                 catalog_pin):
        self.working = working
        self.compiled = compiled
        self.shards = shards
        self.replica_preds = replica_preds
        self.workers = workers
        #: catalog length at the export point; workers assert their
        #: inherited prefix covers it and never intern past it
        self.catalog_pin = catalog_pin


def _worker_run_task(descriptor, state, deltas, shadow, w):
    (task_id, rule_index, delta_index, kind, input_pred, mode, pcols,
     solo) = descriptor
    working = state.working
    rows_in: Optional[List[IdTuple]]
    if kind == "full" and mode == "solo":
        if w != solo:
            return None
        plan = state.compiled.plan(rule_index)
        rows_in = None
    else:
        if kind == "full":
            plan = state.shards.shard_plans[rule_index]
            relation = working.get(input_pred)
            all_rows = relation.id_rows() if relation is not None else ()
        else:
            plan = state.compiled.plan(rule_index, delta_index)
            all_rows = deltas.get(input_pred, ())
        if mode == "solo":
            if w != solo:
                return None
            rows_in = list(all_rows)
        elif mode == "hash":
            rows_in = _hash_filter(all_rows, pcols, state.workers, w)
        else:
            rows_in = list(islice(iter(all_rows), w, None, state.workers))
        if not rows_in:
            return None
    out = _execute_shard(plan, working, rows_in, None)
    rows_out, probes, scanned = out
    # pre-dedup against the replica's group-start state (plus this
    # task's own emissions) so only candidate-fresh rows cross the
    # pipe; the parent's rowmap merge stays the single source of truth
    # for freshness, so the counters cannot drift
    head_key = plan.rule.head.pred_key
    relation = working.get(head_key)
    if head_key in state.replica_preds and relation is not None:
        known = relation._rowmap
    else:
        known = shadow.get(head_key, ())
    fresh: List[IdTuple] = []
    seen: Set[IdTuple] = set()
    for row in rows_out:
        if row in seen or row in known:
            continue
        seen.add(row)
        fresh.append(row)
    arity = len(fresh[0]) if fresh else 0
    return (task_id, len(rows_out), probes, scanned, len(fresh), arity,
            _flatten(fresh))


def _worker_main(conn, state: _WorkerState, w: int) -> None:
    catalog = term_catalog()
    if len(catalog) < state.catalog_pin:
        conn.send(("error", RuntimeError(
            f"worker {w}: inherited catalog shorter than the export pin"
        )))
        return
    shadow: Dict[str, Set[IdTuple]] = {}
    deltas: Dict[str, List[IdTuple]] = {}
    next_deltas: Dict[str, List[IdTuple]] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "stop":
            break
        if tag == "roll":
            deltas = next_deltas
            next_deltas = {}
            continue
        if tag == "apply":
            for pred, count, arity, buf in msg[1]:
                rows = _unflatten(buf, arity, count)
                next_deltas.setdefault(pred, []).extend(rows)
                if pred in state.replica_preds:
                    state.working.relation(pred).add_id_rows(rows)
                else:
                    shadow.setdefault(pred, set()).update(rows)
            continue
        # ("exec", deadline, descriptors)
        _tag, deadline, descriptors = msg
        entries = []
        aborted = False
        try:
            for descriptor in descriptors:
                if deadline is not None and time.monotonic() > deadline:
                    aborted = True
                    break
                entry = _worker_run_task(descriptor, state, deltas, shadow, w)
                if entry is not None:
                    entries.append(entry)
        except BaseException as exc:
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(("error", repr(exc)))
            continue
        conn.send(("done", aborted, entries))


class _ForkBackend:
    """Workers as forked processes with copy-on-write replicas."""

    kind = "fork"

    def __init__(self, working, compiled, shards, replica_preds, workers):
        self.workers = workers
        ctx = multiprocessing.get_context("fork")
        state = _WorkerState(
            working, compiled, shards, replica_preds, workers,
            len(term_catalog()),
        )
        self._conns = []
        self._procs = []
        for w in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, state, w),
                daemon=True, name=f"repro-parallel-{w}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def roll_round(self, deltas) -> None:
        for conn in self._conns:
            conn.send(("roll",))

    def apply_fresh(self, updates, stats) -> None:
        if not updates:
            return
        t0 = time.perf_counter()
        payload = []
        total = 0
        for pred, rows in updates:
            arity = len(rows[0]) if rows else 0
            payload.append((pred, len(rows), arity, _flatten(rows)))
            total += len(rows)
        msg = ("apply", payload)
        for conn in self._conns:
            conn.send(msg)
        stats.parallel_rows_shipped += total * len(self._conns)
        stats.parallel_ship_seconds += time.perf_counter() - t0

    def run_group(self, group, stats, deadline):
        descriptors = [task.descriptor() for task in group]
        msg = ("exec", deadline, descriptors)
        for conn in self._conns:
            conn.send(msg)
        results = {task.task_id: (0, []) for task in group}
        aborted = False
        for w, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                raise EvaluationError(
                    f"parallel worker {w} exited unexpectedly"
                )
            if reply[0] == "error":
                detail = reply[1]
                if isinstance(detail, BaseException):
                    raise detail
                raise EvaluationError(f"parallel worker {w}: {detail}")
            _tag, worker_aborted, entries = reply
            aborted = aborted or worker_aborted
            t0 = time.perf_counter()
            for (task_id, n_emitted, probes, scanned, count, arity,
                 buf) in entries:
                rows = _unflatten(buf, arity, count)
                total, merged = results[task_id]
                merged.extend(rows)
                results[task_id] = (total + n_emitted, merged)
                stats.rule_firings += n_emitted
                stats.join_probes += probes
                stats.tuples_scanned += scanned
                stats.parallel_tasks += 1
                stats.parallel_rows_shipped += count
                stats.parallel_worker_rows[w] = (
                    stats.parallel_worker_rows.get(w, 0) + n_emitted
                )
            stats.parallel_ship_seconds += time.perf_counter() - t0
        return results, aborted

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass


# ----------------------------------------------------------------------
# the parallel fixpoint drivers
# ----------------------------------------------------------------------

def _run_groups(tasks, working, stats, meter, backend, sink) -> bool:
    """One round's batches: group, dispatch, merge, broadcast.

    ``sink(head_key, fresh)`` collects the round's new rows (the next
    delta for semi-naive; ignored by naive).  Returns whether any batch
    derived a new fact.
    """
    changed = False
    deadline = getattr(meter, "deadline", None) if meter is not None else None
    for group in _visibility_groups(tasks):
        if meter is not None:
            # one check per batch, at the same cadence the serial
            # executor checks inside execute_batch
            for _task in group:
                meter.check_batch(stats.facts_derived, stats.tuples_scanned)
        results, aborted = backend.run_group(group, stats, deadline)
        if aborted:
            # workers hit the wall-clock deadline between work items;
            # the meter raises the same structured error the serial
            # path would (the deadline that stopped them has passed)
            if meter is not None:
                meter.check_batch(stats.facts_derived, stats.tuples_scanned)
            raise EvaluationError(
                "parallel workers aborted on a deadline no meter owns"
            )
        stats.parallel_batches += len(group)
        updates = []
        for task in group:
            n_emitted, rows = results[task.task_id]
            if not n_emitted:
                continue
            relation = working.relation(task.head_key)
            fresh = relation.add_id_rows(rows) if rows else []
            n_fresh = len(fresh)
            stats.duplicate_derivations += n_emitted - n_fresh
            if n_fresh:
                stats.record_facts(task.head_key, n_fresh)
                sink(task.head_key, fresh)
                updates.append((task.head_key, fresh))
                changed = True
        backend.apply_fresh(updates, stats)
    return changed


def _run_seminaive(program, working, compiled, shards, stats, backend,
                   max_iterations, max_facts, meter) -> None:
    task_id = 0
    for stratum_index, stratum in enumerate(compiled.strata):
        stratum_heads = frozenset(
            program.rules[i].head.pred_key for i in stratum
        )
        deltas: Dict[str, List[IdTuple]] = {}

        def sink(head_key, fresh, _deltas=deltas):
            _deltas.setdefault(head_key, []).extend(fresh)

        stats.iterations += 1
        round_in_stratum = 1
        if meter is not None:
            meter.check_round(
                stats.facts_derived, stats.tuples_scanned,
                stratum_index, round_in_stratum, working,
            )
        tasks = []
        for rule_index in stratum:
            tasks.append(_full_task(
                task_id, rule_index, program, shards, stratum_heads,
                backend.workers,
            ))
            task_id += 1
        _run_groups(tasks, working, stats, meter, backend, sink)

        while deltas:
            stats.iterations += 1
            round_in_stratum += 1
            _check_budget(
                stats, stats.facts_derived, max_iterations, max_facts
            )
            if meter is not None:
                meter.check_round(
                    stats.facts_derived, stats.tuples_scanned,
                    stratum_index, round_in_stratum, working,
                )
            backend.roll_round(deltas)
            new_deltas: Dict[str, List[IdTuple]] = {}

            def sink(head_key, fresh, _deltas=new_deltas):
                _deltas.setdefault(head_key, []).extend(fresh)

            tasks = []
            for rule_index in stratum:
                rule = program.rules[rule_index]
                for occ in compiled.delta_occurrences(rule_index):
                    if rule.body[occ].pred_key not in deltas:
                        continue
                    tasks.append(_delta_task(
                        task_id, rule_index, occ, program, compiled,
                        shards, stratum_heads, backend.workers,
                    ))
                    task_id += 1
            _run_groups(tasks, working, stats, meter, backend, sink)
            deltas = new_deltas
            if max_facts is not None and stats.facts_derived > max_facts:
                _check_budget(stats, stats.facts_derived, None, max_facts)


def _run_naive(program, working, compiled, shards, stats, backend,
               max_iterations, max_facts, meter) -> None:
    task_id = 0

    def sink(head_key, fresh):
        pass

    for stratum_index, stratum in enumerate(compiled.strata):
        stratum_heads = frozenset(
            program.rules[i].head.pred_key for i in stratum
        )
        changed = True
        round_in_stratum = 0
        while changed:
            stats.iterations += 1
            round_in_stratum += 1
            _check_budget(
                stats, stats.facts_derived, max_iterations, max_facts
            )
            if meter is not None:
                meter.check_round(
                    stats.facts_derived, stats.tuples_scanned,
                    stratum_index, round_in_stratum, working,
                )
            backend.roll_round({})
            tasks = []
            for rule_index in stratum:
                tasks.append(_full_task(
                    task_id, rule_index, program, shards, stratum_heads,
                    backend.workers,
                ))
                task_id += 1
            changed = _run_groups(
                tasks, working, stats, meter, backend, sink
            )
            if max_facts is not None and stats.facts_derived > max_facts:
                _check_budget(stats, stats.facts_derived, None, max_facts)


def evaluate_parallel(
    program: Program,
    database: Database,
    method: str = "seminaive",
    workers: int = 2,
    backend: str = "auto",
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
    meter=None,
) -> EvaluationResult:
    """Bottom-up evaluation on the worker pool.

    Called through ``evaluate*(..., workers=N)`` -- the engine routes
    here when N > 1 and the batch planner path is active.  Fact sets
    and solution counters match the serial engine exactly; the parallel
    counters (``parallel_*`` on :class:`EvaluationStats`) record the
    pool's shape and traffic.  The pool lives for exactly one
    evaluation -- "persistent" across all its rounds, torn down in a
    ``finally`` so budget trips, cancellations, injected faults, and
    worker crashes leave only the untouched caller database behind.
    """
    if method not in ("naive", "seminaive"):
        raise ValueError(f"unknown evaluation method {method!r}")
    workers = int(workers)
    if workers < 2:
        raise ValueError("evaluate_parallel needs workers >= 2")
    working = database.copy()
    stats = EvaluationStats()
    derived_keys = program.derived_predicates()
    compiled = _compiled_for(program, working, stats, plan_cache)
    shards = _ProgramShards(program, compiled)
    resolved = resolve_backend(backend)
    if resolved == "fork" and any(
        plan_interns_terms(plan)
        for plan in shards.all_plans(program, compiled)
    ):
        # run-time interning would grow worker-local ID spaces that
        # disagree with the parent's; threads share one catalog
        resolved = "thread"
        stats.parallel_fallback = "plans intern terms: thread backend"
    stats.parallel_workers = workers
    stats.parallel_backend = resolved
    if resolved == "fork":
        pool = _ForkBackend(
            working, compiled, shards,
            _replica_preds(program, compiled, shards), workers,
        )
    else:
        pool = _ThreadBackend(working, compiled, shards, workers)
    try:
        if method == "naive":
            _run_naive(program, working, compiled, shards, stats, pool,
                       max_iterations, max_facts, meter)
        else:
            _run_seminaive(program, working, compiled, shards, stats, pool,
                           max_iterations, max_facts, meter)
    finally:
        pool.close()
    return EvaluationResult(working, derived_keys, stats)
