"""Horn-clause abstract syntax: literals, rules, programs, queries.

Terminology follows Section 1.1 of the paper:

* a *rule* is ``p(x) :- p1(x1), ..., pn(xn)`` (head, body);
* a *program* is a finite set of rules containing no facts -- all facts
  live in the database (``repro.datalog.database``);
* *base* predicates name database relations, all others are *derived*;
* a *query* is a single predicate occurrence, some arguments bound to
  constants (written ``q(c, X)?``).

Adornments (Section 3) are first-class here: a :class:`Literal` optionally
carries an adornment string over ``{'b', 'f'}``, and the pair
``(pred, adornment)`` -- exposed as :attr:`Literal.pred_key` -- is the
predicate identity used by the evaluation engine.  The magic / counting /
supplementary predicates introduced by the rewriting algorithms are plain
literals with generated names (see ``repro.core.naming``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .errors import (
    AdornmentError,
    ConnectivityError,
    UnsafeNegationError,
    WellFormednessError,
)
from .terms import LinExpr, Struct, Term, Variable, term_variables

__all__ = [
    "Literal",
    "Rule",
    "Program",
    "Query",
    "ALL_FREE",
    "adornment_for_args",
    "validate_adornment",
]


def validate_adornment(adornment: str, arity: int) -> None:
    """Check that an adornment string matches an arity.

    Raises :class:`AdornmentError` when it does not.
    """
    if len(adornment) != arity:
        raise AdornmentError(
            f"adornment {adornment!r} has length {len(adornment)}, "
            f"expected {arity}"
        )
    bad = set(adornment) - {"b", "f"}
    if bad:
        raise AdornmentError(
            f"adornment {adornment!r} contains characters {sorted(bad)}; "
            "only 'b' and 'f' are allowed"
        )


def ALL_FREE(arity: int) -> str:
    """The all-free adornment of a given arity."""
    return "f" * arity


def adornment_for_args(args: Sequence[Term], bound_vars: Iterable[Variable]) -> str:
    """Compute an adornment from a set of bound variables.

    Following Section 3: an argument is *bound* only if **all** the
    variables appearing in it are bound (a constant argument, having no
    variables, is vacuously bound).
    """
    bound = set(bound_vars)
    letters = []
    for arg in args:
        arg_vars = arg.variables()
        if all(v in bound for v in arg_vars):
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


class Literal:
    """A predicate occurrence: name, argument terms, optional adornment.

    ``negated`` marks a negation-as-failure body occurrence (written
    ``not p(X)`` or ``\\+ p(X)`` in the surface syntax).  Negation is a
    *body* annotation: rule heads and queries must be positive, and the
    predicate identity (:attr:`pred_key`) is unaffected -- ``p`` and
    ``not p`` refer to the same relation.
    """

    __slots__ = ("pred", "args", "adornment", "negated", "_vars")

    def __init__(
        self,
        pred: str,
        args: Iterable[Term] = (),
        adornment: Optional[str] = None,
        negated: bool = False,
    ):
        args = tuple(args)
        if not pred:
            raise ValueError("predicate name must be non-empty")
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"literal argument {arg!r} is not a Term")
        if adornment is not None:
            validate_adornment(adornment, len(args))
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "adornment", adornment)
        object.__setattr__(self, "negated", bool(negated))
        object.__setattr__(self, "_vars", None)

    def __setattr__(self, key, value):
        raise AttributeError("Literal is immutable")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def pred_key(self) -> str:
        """The predicate identity used by the engine: ``name^adornment``."""
        if self.adornment is None:
            return self.pred
        return f"{self.pred}^{self.adornment}"

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def variables(self) -> Tuple[Variable, ...]:
        cached = self._vars
        if cached is None:
            cached = term_variables(self.args)
            object.__setattr__(self, "_vars", cached)
        return cached

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, subst) -> "Literal":
        if not self.variables():
            return self
        return Literal(
            self.pred,
            tuple(a.substitute(subst) for a in self.args),
            self.adornment,
            self.negated,
        )

    # ------------------------------------------------------------------
    # polarity helpers
    # ------------------------------------------------------------------
    def negate(self) -> "Literal":
        """The negation-as-failure version of this literal."""
        if self.negated:
            return self
        return Literal(self.pred, self.args, self.adornment, True)

    def as_positive(self) -> "Literal":
        """This literal with the negation stripped."""
        if not self.negated:
            return self
        return Literal(self.pred, self.args, self.adornment, False)

    # ------------------------------------------------------------------
    # adornment helpers
    # ------------------------------------------------------------------
    def with_adornment(self, adornment: Optional[str]) -> "Literal":
        return Literal(self.pred, self.args, adornment, self.negated)

    def bound_args(self) -> Tuple[Term, ...]:
        """Arguments at positions marked 'b' (the paper's ``x^b``)."""
        if self.adornment is None:
            return ()
        return tuple(
            arg for arg, a in zip(self.args, self.adornment) if a == "b"
        )

    def free_args(self) -> Tuple[Term, ...]:
        """Arguments at positions marked 'f' (the paper's ``x^f``)."""
        if self.adornment is None:
            return self.args
        return tuple(
            arg for arg, a in zip(self.args, self.adornment) if a == "f"
        )

    def bound_positions(self) -> Tuple[int, ...]:
        if self.adornment is None:
            return ()
        return tuple(i for i, a in enumerate(self.adornment) if a == "b")

    def free_positions(self) -> Tuple[int, ...]:
        if self.adornment is None:
            return tuple(range(len(self.args)))
        return tuple(i for i, a in enumerate(self.adornment) if a == "f")

    def bound_variables(self) -> Tuple[Variable, ...]:
        """Variables appearing in bound argument positions."""
        return term_variables(self.bound_args())

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and other.pred == self.pred
            and other.args == self.args
            and other.adornment == self.adornment
            and other.negated == self.negated
        )

    def __hash__(self):
        return hash((self.pred, self.args, self.adornment, self.negated))

    def __repr__(self):
        prefix = "not " if self.negated else ""
        return f"Literal({prefix}{self.pred_key}, {self.args!r})"

    def __str__(self):
        name = self.pred_key
        prefix = "not " if self.negated else ""
        if not self.args:
            return f"{prefix}{name}"
        inner = ", ".join(str(a) for a in self.args)
        return f"{prefix}{name}({inner})"


class Rule:
    """A Horn clause ``head :- body``.

    An empty body denotes a fact (Section 1.1); programs built through
    :class:`Program` reject facts -- facts belong in the database.
    """

    __slots__ = ("head", "body", "_vars")

    def __init__(self, head: Literal, body: Iterable[Literal] = ()):
        body = tuple(body)
        if not isinstance(head, Literal):
            raise TypeError("rule head must be a Literal")
        if head.negated:
            raise ValueError(
                f"rule head {head} is negated; negation is only allowed "
                "in rule bodies"
            )
        for lit in body:
            if not isinstance(lit, Literal):
                raise TypeError(f"rule body element {lit!r} is not a Literal")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_vars", None)

    def __setattr__(self, key, value):
        raise AttributeError("Rule is immutable")

    def is_fact(self) -> bool:
        return not self.body

    # ------------------------------------------------------------------
    # negation helpers
    # ------------------------------------------------------------------
    def has_negation(self) -> bool:
        return any(lit.negated for lit in self.body)

    def positive_body(self) -> Tuple[Literal, ...]:
        return tuple(lit for lit in self.body if not lit.negated)

    def negated_body(self) -> Tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.negated)

    def unsafe_negated_variables(self) -> Tuple[Variable, ...]:
        """Variables of negated body literals not bound positively.

        Safe negation (the range-restriction rule for negation-as-
        failure) requires every variable appearing in a negated body
        literal to also appear in some *positive* body literal; the
        returned tuple is empty exactly when the rule is safe.
        """
        positive_vars: Set[Variable] = set()
        for lit in self.body:
            if not lit.negated:
                positive_vars.update(lit.variables())
        unsafe: List[Variable] = []
        for lit in self.body:
            if not lit.negated:
                continue
            for var in lit.variables():
                if var not in positive_vars and var not in unsafe:
                    unsafe.append(var)
        return tuple(unsafe)

    def check_safe_negation(self) -> None:
        """Raise :class:`UnsafeNegationError` unless negation is safe.

        Safe negation: every variable of a negated body literal also
        appears in a positive body literal (otherwise ``not p(X)``
        ranges over the infinite complement of ``p``).
        """
        unsafe = self.unsafe_negated_variables()
        if unsafe:
            names = ", ".join(v.name for v in unsafe)
            offenders = ", ".join(
                str(lit)
                for lit in self.negated_body()
                if any(v in unsafe for v in lit.variables())
            )
            raise UnsafeNegationError(
                f"rule {self}: unsafe negation -- variable(s) {{{names}}} "
                f"of {offenders} are not bound by any positive body "
                "literal; add a positive literal (e.g. a domain "
                "predicate) that binds them first",
                rule=self,
                variables=unsafe,
            )

    def variables(self) -> Tuple[Variable, ...]:
        cached = self._vars
        if cached is None:
            seen = list(self.head.variables())
            for lit in self.body:
                for var in lit.variables():
                    if var not in seen:
                        seen.append(var)
            cached = tuple(seen)
            object.__setattr__(self, "_vars", cached)
        return cached

    def substitute(self, subst) -> "Rule":
        return Rule(
            self.head.substitute(subst),
            tuple(lit.substitute(subst) for lit in self.body),
        )

    def rename_apart(self, suffix: str) -> "Rule":
        """Rename every variable by appending ``suffix`` (standardize apart)."""
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(mapping)

    # ------------------------------------------------------------------
    # well-formedness conditions of Section 1.1
    # ------------------------------------------------------------------
    def check_well_formed(self) -> None:
        """Condition (WF): head variables must appear in the body.

        Unit rules (empty body) are exempt: the paper's own list-reverse
        example (Appendix A.1) uses the non-ground unit rule
        ``append(V, [], [V])``, which the rewrites guard with magic
        literals.  Plain bottom-up evaluation of an unguarded non-ground
        unit rule fails at run time instead (it is not range-restricted).
        """
        if not self.body:
            return
        # only positive literals bind values; a variable occurring solely
        # under negation never receives a binding
        body_vars = set()
        for lit in self.body:
            if not lit.negated:
                body_vars.update(lit.variables())
        missing = [v for v in self.head.variables() if v not in body_vars]
        if missing:
            names = ", ".join(v.name for v in missing)
            raise WellFormednessError(
                f"rule {self}: head variables {{{names}}} do not appear in "
                "the body (condition WF)"
            )

    def connected_components(self) -> List[FrozenSet[int]]:
        """Connected components of body literal positions (Section 1.1).

        Two body occurrences are connected when they are linked through a
        chain of shared variables.  Literals without variables form
        singleton components.
        """
        n = len(self.body)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        by_var: Dict[Variable, int] = {}
        for idx, lit in enumerate(self.body):
            for var in lit.variables():
                if var in by_var:
                    union(by_var[var], idx)
                else:
                    by_var[var] = idx
        groups: Dict[int, Set[int]] = {}
        for idx in range(n):
            groups.setdefault(find(idx), set()).add(idx)
        return [frozenset(g) for g in groups.values()]

    def check_connected(self) -> None:
        """Condition (C): the body must form a single connected component.

        The component containing the head (through head variables) must
        cover every body literal.  Rules whose body is empty or a single
        literal are trivially connected.
        """
        components = self.connected_components()
        if len(components) <= 1:
            return
        head_vars = set(self.head.variables())
        head_component: Set[int] = set()
        for component in components:
            for idx in component:
                if head_vars & set(self.body[idx].variables()):
                    head_component |= set(component)
        outside = [
            str(self.body[i])
            for comp in components
            for i in comp
            if i not in head_component
        ]
        if not outside:
            # several variable-components, but each one touches the head
            # (e.g. linked only through constants): information can flow
            return
        raise ConnectivityError(
            f"rule {self}: body literals {outside} are not connected to the "
            "head (condition C); solve such existential subqueries "
            "separately before rewriting"
        )

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self):
        return hash((self.head, self.body))

    def __repr__(self):
        return f"Rule({self.head!r}, {self.body!r})"

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        inner = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {inner}."


class Program:
    """A finite set (ordered list) of rules.

    Rule order is preserved because the counting transformations number
    rules.  Ground facts belong in the database (Section 1.1: "without
    loss of generality, P contains no facts"), but *unit rules* -- empty
    bodies, possibly with variables, like the paper's
    ``append(V, [], [V])`` -- are permitted: the rewrites turn them into
    guarded rules.
    """

    __slots__ = ("rules", "_hash")

    def __init__(self, rules: Iterable[Rule]):
        rules = tuple(rules)
        for rule in rules:
            if not isinstance(rule, Rule):
                raise TypeError(f"{rule!r} is not a Rule")
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key, value):
        raise AttributeError("Program is immutable")

    def has_negation(self) -> bool:
        """True when any rule body contains a negated literal."""
        return any(rule.has_negation() for rule in self.rules)

    # ------------------------------------------------------------------
    # predicate classification
    # ------------------------------------------------------------------
    def derived_predicates(self) -> Set[str]:
        """Predicate keys appearing as rule heads."""
        return {rule.head.pred_key for rule in self.rules}

    def base_predicates(self) -> Set[str]:
        """Predicate keys appearing only in bodies."""
        derived = self.derived_predicates()
        base = set()
        for rule in self.rules:
            for lit in rule.body:
                if lit.pred_key not in derived:
                    base.add(lit.pred_key)
        return base

    def predicates(self) -> Set[str]:
        return self.derived_predicates() | self.base_predicates()

    def is_derived(self, literal: Literal) -> bool:
        return literal.pred_key in self.derived_predicates()

    def rules_for(self, pred_key: str) -> Tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head.pred_key == pred_key)

    def rules_for_pred_name(self, pred: str) -> Tuple[Rule, ...]:
        """All rules whose head has the given *unadorned* name."""
        return tuple(r for r in self.rules if r.head.pred == pred)

    # ------------------------------------------------------------------
    # validation and classification
    # ------------------------------------------------------------------
    def validate(
        self,
        require_connected: bool = False,
        require_well_formed: bool = True,
    ) -> None:
        """Check conditions (WF) and optionally (C) on every rule.

        (WF) can be waived: the paper's list-reverse example has a head
        variable (``W`` in ``append(V, [W|X], [W|Y]) :- append(V, X, Y)``)
        that appears only in bound head arguments, where unification with
        the call supplies its value; the rewrites guard such rules.
        """
        for rule in self.rules:
            if require_well_formed:
                rule.check_well_formed()
            if require_connected:
                rule.check_connected()

    def is_datalog(self) -> bool:
        """True when no rule uses function terms (Section 9/10 distinction)."""
        for rule in self.rules:
            for lit in (rule.head, *rule.body):
                for arg in lit.args:
                    if _contains_struct(arg):
                        return False
        return True

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __eq__(self, other):
        return isinstance(other, Program) and other.rules == self.rules

    def __hash__(self):
        # Programs are immutable, so the structural hash is computed once
        # and cached: PlanCache keys every lookup on the Program, and
        # re-walking hundreds of rewritten rules per query would dominate
        # the hit path.
        cached = self._hash
        if cached is None:
            cached = hash(self.rules)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self):
        return f"Program({list(self.rules)!r})"

    def __str__(self):
        return "\n".join(str(rule) for rule in self.rules)


def _contains_struct(term: Term) -> bool:
    if isinstance(term, Struct):
        return True
    if isinstance(term, LinExpr):
        return True
    return False


class Query:
    """A query ``q(c, X)?``: one predicate occurrence, constants = bound.

    The adornment of the query (Section 3: "precisely the positions bound
    in the query are designated as bound") is derived from the arguments:
    a position is bound iff its term is ground.
    """

    __slots__ = ("literal",)

    def __init__(self, literal: Literal):
        if not isinstance(literal, Literal):
            raise TypeError("query must wrap a Literal")
        if literal.negated:
            raise ValueError(
                f"query {literal} is negated; ask the positive query and "
                "test for emptiness instead"
            )
        seen: Set[Variable] = set()
        for arg in literal.args:
            for var in arg.variables():
                if var in seen:
                    raise ValueError(
                        f"query {literal} repeats variable {var}; free "
                        "positions must use distinct variables"
                    )
                seen.add(var)
        object.__setattr__(self, "literal", literal)

    def __setattr__(self, key, value):
        raise AttributeError("Query is immutable")

    @property
    def pred(self) -> str:
        return self.literal.pred

    @property
    def args(self) -> Tuple[Term, ...]:
        return self.literal.args

    @property
    def adornment(self) -> str:
        """Bound where the argument is ground, free otherwise."""
        return "".join(
            "b" if arg.is_ground() else "f" for arg in self.literal.args
        )

    def bound_constants(self) -> Tuple[Term, ...]:
        return tuple(arg for arg in self.literal.args if arg.is_ground())

    def free_variables(self) -> Tuple[Variable, ...]:
        return term_variables(
            arg for arg in self.literal.args if not arg.is_ground()
        )

    def adorned_literal(self) -> Literal:
        return self.literal.with_adornment(self.adornment)

    def __eq__(self, other):
        return isinstance(other, Query) and other.literal == self.literal

    def __hash__(self):
        return hash(("query", self.literal))

    def __repr__(self):
        return f"Query({self.literal!r})"

    def __str__(self):
        return f"{self.literal}?"
