"""Safety of the rewritten programs -- Section 10.

Does bottom-up evaluation of the rewritten rules terminate after
computing all answers?  The paper's tools, all implemented here:

* **Binding graph + term lengths (Theorem 10.1).**  Nodes are adorned
  predicates; an arc ``[r_i, j]`` runs from the head of adorned rule
  ``r_i`` to its ``j``-th body occurrence.  The *arc length* is the total
  length of the head's bound arguments minus that of the body
  occurrence's bound arguments, where ``|t|`` is 1 for a constant and
  ``1 + sum |t_i|`` for a function term; variable lengths are unknowns
  ``>= 1`` (callers may supply tighter bounds from knowledge of the base
  relations, as Sacca & Zaniolo suggest).  If every cycle has positive
  length, the generalized magic and counting rewrites terminate: each
  round of subquery generation strictly shrinks the bound arguments.
* **Datalog (Theorem 10.2).**  The magic-sets strategies are always safe
  on Datalog: only finitely many facts exist over the given constants.
* **Argument graph (Theorem 10.3).**  For Datalog, counting diverges
  whenever the query's reachable argument graph is cyclic: the same
  binding is re-derived at ever-growing index values (the nonlinear
  ancestor program of Appendix A.5.2 is the canonical example).

Cycle-positivity over per-arc lower bounds is decided exactly by
Bellman-Ford on scaled weights (a cycle of total length <= 0 exists iff
the scaled graph has a negative cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..datalog.ast import Literal, Program, Rule
from ..datalog.errors import UnsafeNegationError
from ..datalog.terms import Constant, LinExpr, Struct, Term, Variable
from .adornment import AdornedProgram

__all__ = [
    "LengthPolynomial",
    "term_length_polynomial",
    "BindingArc",
    "BindingGraph",
    "binding_graph",
    "all_cycles_positive",
    "argument_graph",
    "argument_graph_cyclic",
    "SafetyReport",
    "magic_safety",
    "counting_safety",
    "check_safe_negation",
    "negation_safety",
]


@dataclass(frozen=True)
class LengthPolynomial:
    """A linear polynomial ``const + sum coeff_v * |v|`` over variable
    lengths (Section 10's symbolic term lengths)."""

    const: int = 0
    coeffs: Tuple[Tuple[str, int], ...] = ()

    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def __add__(self, other: "LengthPolynomial") -> "LengthPolynomial":
        coeffs = self.coeff_map()
        for name, coeff in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + coeff
        return LengthPolynomial(
            self.const + other.const,
            tuple(sorted((n, c) for n, c in coeffs.items() if c != 0)),
        )

    def __sub__(self, other: "LengthPolynomial") -> "LengthPolynomial":
        negated = LengthPolynomial(
            -other.const, tuple((n, -c) for n, c in other.coeffs)
        )
        return self + negated

    def lower_bound(
        self, var_bounds: Optional[Mapping[str, Tuple[int, Optional[int]]]] = None
    ) -> Optional[int]:
        """Smallest possible value; None when unbounded below.

        ``var_bounds`` maps variable names to ``(lower, upper)`` length
        bounds; the default is ``(1, None)`` (every term has length >= 1).
        """
        total = self.const
        for name, coeff in self.coeffs:
            lower, upper = (1, None)
            if var_bounds and name in var_bounds:
                lower, upper = var_bounds[name]
            if coeff > 0:
                total += coeff * lower
            else:
                if upper is None:
                    return None
                total += coeff * upper
        return total

    def __str__(self):
        parts = [str(self.const)] if self.const or not self.coeffs else []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(f"|{name}|")
            else:
                parts.append(f"{coeff}*|{name}|")
        return " + ".join(parts) if parts else "0"


def term_length_polynomial(term: Term) -> LengthPolynomial:
    """The symbolic length ``|t|`` of a term (Section 10)."""
    if isinstance(term, Constant):
        return LengthPolynomial(1)
    if isinstance(term, Variable):
        return LengthPolynomial(0, ((term.name, 1),))
    if isinstance(term, Struct):
        total = LengthPolynomial(1)
        for argument in term.args:
            total = total + term_length_polynomial(argument)
        return total
    if isinstance(term, LinExpr):
        # index expressions denote integers; treat as unit length
        return LengthPolynomial(1)
    raise TypeError(f"cannot measure term {term!r}")


def _bound_args_length(literal: Literal) -> LengthPolynomial:
    total = LengthPolynomial(0)
    for argument in literal.bound_args():
        total = total + term_length_polynomial(argument)
    return total


@dataclass(frozen=True)
class BindingArc:
    """An arc ``[rule, position]`` of the binding graph with its length."""

    source: str  # adorned predicate key of the rule head
    target: str  # adorned predicate key of the body occurrence
    rule_index: int
    position: int
    length: LengthPolynomial


@dataclass
class BindingGraph:
    """The binding graph of a query (Section 10)."""

    root: str
    arcs: List[BindingArc] = field(default_factory=list)

    def nodes(self) -> Set[str]:
        out = {self.root}
        for arc in self.arcs:
            out.add(arc.source)
            out.add(arc.target)
        return out

    def successors(self, node: str) -> List[BindingArc]:
        return [arc for arc in self.arcs if arc.source == node]


def binding_graph(adorned: AdornedProgram) -> BindingGraph:
    """Build the binding graph of the adorned program's query."""
    graph = BindingGraph(root=adorned.query_literal.pred_key)
    for rule_index, adorned_rule in enumerate(adorned.rules):
        head = adorned_rule.head
        head_length = _bound_args_length(head)
        for position, literal in enumerate(adorned_rule.body):
            if literal.adornment is None:
                continue
            arc_length = head_length - _bound_args_length(literal)
            graph.arcs.append(
                BindingArc(
                    source=head.pred_key,
                    target=literal.pred_key,
                    rule_index=rule_index,
                    position=position,
                    length=arc_length,
                )
            )
    return graph


def all_cycles_positive(
    graph: BindingGraph,
    var_bounds: Optional[Mapping[str, Tuple[int, Optional[int]]]] = None,
) -> Optional[bool]:
    """Certify that every binding-graph cycle has positive length.

    Returns True when certified (Theorem 10.1 applies), None when some
    arc's length is unbounded below (cannot certify), False when a cycle
    of total lower-bound <= 0 exists (no certificate; the program may or
    may not terminate).
    """
    weights: Dict[Tuple[str, str], int] = {}
    for arc in graph.arcs:
        lower = arc.length.lower_bound(var_bounds)
        if lower is None:
            # an unbounded arc only matters when it can lie on a cycle,
            # i.e. its target reaches back to its source
            if arc.source in _reachable(graph, arc.target):
                return None
            continue
        key = (arc.source, arc.target)
        if key not in weights or lower < weights[key]:
            weights[key] = lower

    # a cycle of total weight <= 0 exists iff the scaled graph
    # (w -> w * K - 1, K > number of edges) has a negative cycle
    edges = list(weights.items())
    if not edges:
        return True
    scale = len(edges) + 1
    nodes = sorted({n for (src, dst) in weights for n in (src, dst)})
    distance = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for (src, dst), weight in edges:
            scaled = weight * scale - 1
            if distance[src] + scaled < distance[dst]:
                distance[dst] = distance[src] + scaled
                changed = True
        if not changed:
            return True
    for (src, dst), weight in edges:
        scaled = weight * scale - 1
        if distance[src] + scaled < distance[dst]:
            return False
    return True


def _reachable(graph: BindingGraph, root: str) -> Set[str]:
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for arc in graph.successors(node):
            if arc.target not in seen:
                seen.add(arc.target)
                frontier.append(arc.target)
    return seen


# ----------------------------------------------------------------------
# argument graph (Theorem 10.3)
# ----------------------------------------------------------------------

ArgNode = Tuple[str, int]


def argument_graph(adorned: AdornedProgram) -> Dict[ArgNode, Set[ArgNode]]:
    """The argument graph of a Datalog query (Section 10).

    Nodes are ``(adorned predicate key, bound argument position)``; an
    arc connects a head's bound position to a body occurrence's bound
    position when they share a variable.
    """
    graph: Dict[ArgNode, Set[ArgNode]] = {}
    for adorned_rule in adorned.rules:
        head = adorned_rule.head
        if head.adornment is None:
            continue
        head_positions = [
            (m, set(head.args[m].variables()))
            for m in head.bound_positions()
        ]
        for literal in adorned_rule.body:
            if literal.adornment is None:
                continue
            for n in literal.bound_positions():
                body_vars = set(literal.args[n].variables())
                for m, head_vars in head_positions:
                    if head_vars & body_vars:
                        graph.setdefault((head.pred_key, m), set()).add(
                            (literal.pred_key, n)
                        )
    return graph


def argument_graph_cyclic(adorned: AdornedProgram) -> bool:
    """True when the query's reachable argument graph has a cycle."""
    graph = argument_graph(adorned)
    query = adorned.query_literal
    roots = [
        (query.pred_key, m)
        for m, letter in enumerate(query.adornment)
        if letter == "b"
    ]
    # restrict to nodes reachable from the query's bound positions
    reachable: Set[ArgNode] = set()
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(graph.get(node, ()))
    # cycle detection by coloring
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in reachable}

    def has_cycle(start: ArgNode) -> bool:
        stack = [(start, iter(sorted(graph.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in reachable:
                    continue
                if color[succ] == GRAY:
                    return True
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
        return False

    for node in sorted(reachable):
        if color[node] == WHITE and has_cycle(node):
            return True
    return False


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SafetyReport:
    """A safety verdict: ``safe`` is True (certified terminating), False
    (certified non-terminating), or None (no certificate either way)."""

    safe: Optional[bool]
    theorem: str
    reason: str

    def __bool__(self):
        return bool(self.safe)


def magic_safety(
    adorned: AdornedProgram,
    var_bounds: Optional[Mapping[str, Tuple[int, Optional[int]]]] = None,
) -> SafetyReport:
    """Safety of the magic-sets rewrites (Theorems 10.1 / 10.2)."""
    if adorned.original.is_datalog():
        return SafetyReport(
            safe=True,
            theorem="10.2",
            reason="Datalog program: finitely many facts over the given "
            "constants, so the magic-sets strategies are safe",
        )
    verdict = all_cycles_positive(binding_graph(adorned), var_bounds)
    if verdict is True:
        return SafetyReport(
            safe=True,
            theorem="10.1",
            reason="every binding-graph cycle has positive length: bound "
            "arguments strictly shrink along every recursive call",
        )
    if verdict is None:
        return SafetyReport(
            safe=None,
            theorem="10.1",
            reason="some arc length is unbounded below (supply variable "
            "length bounds from the base relations to tighten)",
        )
    return SafetyReport(
        safe=None,
        theorem="10.1",
        reason="a binding-graph cycle of non-positive length exists; no "
        "termination certificate (the program may still terminate on "
        "specific databases)",
    )


# ----------------------------------------------------------------------
# safe negation (range restriction for negation-as-failure)
# ----------------------------------------------------------------------

def check_safe_negation(rule: Rule) -> None:
    """Enforce the safe-negation rule on one rule.

    Every variable of a negated body literal must also appear in a
    positive body literal of the same rule: a free variable under
    negation would quantify over the infinite complement of a relation,
    so no evaluation strategy could enumerate its bindings.  Raises
    :class:`UnsafeNegationError` naming the unbound variables.
    """
    rule.check_safe_negation()


def negation_safety(program: Program) -> SafetyReport:
    """A :class:`SafetyReport` for a program's use of negation.

    ``safe=True`` when every rule passes :func:`check_safe_negation`
    (vacuously for positive programs); ``safe=False`` with the first
    offending rule in the reason otherwise.
    """
    for rule in program.rules:
        try:
            check_safe_negation(rule)
        except UnsafeNegationError as exc:
            return SafetyReport(
                safe=False,
                theorem="safe negation",
                reason=str(exc),
            )
    if program.has_negation():
        reason = (
            "every negated literal is range-restricted by positive "
            "literals of its rule"
        )
    else:
        reason = "positive program: no negation to restrict"
    return SafetyReport(safe=True, theorem="safe negation", reason=reason)


def counting_safety(
    adorned: AdornedProgram,
    var_bounds: Optional[Mapping[str, Tuple[int, Optional[int]]]] = None,
    assume_acyclic_data: bool = False,
) -> SafetyReport:
    """Safety of the counting rewrites (Theorems 10.1 / 10.3)."""
    if adorned.original.is_datalog():
        if argument_graph_cyclic(adorned):
            return SafetyReport(
                safe=False,
                theorem="10.3",
                reason="the query's reachable argument graph is cyclic: "
                "the seed binding is re-derived at ever-growing indices, "
                "so the counting strategies do not terminate (for any "
                "database making the cycle reachable)",
            )
        if assume_acyclic_data:
            return SafetyReport(
                safe=True,
                theorem="10.3",
                reason="acyclic argument graph and (assumed) acyclic "
                "data: index depth is bounded by the data's depth",
            )
        return SafetyReport(
            safe=None,
            theorem="10.3",
            reason="acyclic argument graph, but cyclic *data* can still "
            "make the counting indices grow forever; pass "
            "assume_acyclic_data=True if the database is known acyclic",
        )
    verdict = all_cycles_positive(binding_graph(adorned), var_bounds)
    if verdict is True:
        return SafetyReport(
            safe=True,
            theorem="10.1",
            reason="every binding-graph cycle has positive length, which "
            "bounds the recursion depth and hence the index growth",
        )
    return SafetyReport(
        safe=None,
        theorem="10.1",
        reason="no positive-cycle certificate for this non-Datalog "
        "program; counting may diverge",
    )
