"""Sideways information passing strategies (sips) -- Section 2.

A sip for a rule (under a head adornment) is a labeled graph.  Nodes are
the special head node ``p_h`` (the head predicate restricted to its bound
arguments) and the body literal *positions* of the rule.  An arc
``N -> q`` with label ``chi`` states: evaluate/join the predicates in
``N``, project on the variables ``chi``, and pass those values to
restrict the computation of the body occurrence ``q``.

The three validity conditions of Section 2 are enforced:

(2i)   every label variable appears in the tail;
(2ii)  every tail member is connected -- through variables of the tail
       join -- to a label variable;
(2iii) labels bind whole arguments: every label variable appears in some
       argument of the target all of whose variables are labeled.
(3)    the induced precedence relation is acyclic.

Builders are provided for the two sip families used throughout the paper:

* :func:`build_full_sip` -- the *left-to-right full compressed* sip
  (Example 1, sips (I)/(III)/(IV)): each arc's tail carries the head and
  every earlier literal, so all information gathered so far is passed on;
* :func:`build_chain_sip` -- the *no-memory partial* sip (Example 1,
  sips (II)/(V)): each arc's tail carries only the nearest preceding
  derived-or-head node plus the base literals after it, so "past"
  information is forgotten.

Both accept an evaluation ``order`` (a permutation of body positions), so
right-to-left or optimizer-chosen orders are sips too.

Negated body literals (stratified programs) are *consumers only*: an
anti-join receives bindings but produces none, so a negated occurrence
may be the target of an arc (the label records the variables the
positive part binds for it) but never joins a tail and never
contributes variables to later arcs.  Validation rejects hand-built
arcs whose tail contains a negated position.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..datalog.ast import Literal, Rule, validate_adornment
from ..datalog.errors import SipValidationError
from ..datalog.terms import Variable

__all__ = [
    "HEAD",
    "SipNode",
    "SipArc",
    "Sip",
    "SipBuilder",
    "build_full_sip",
    "build_chain_sip",
    "build_right_to_left_sip",
    "build_empty_sip",
    "sip_builder_with_order",
    "greedy_order",
]

#: The special head node ``p_h`` of Section 2.
HEAD = "ph"

SipNode = Union[int, str]
IsDerived = Callable[[Literal], bool]


class SipArc:
    """A labeled sip arc ``N -> target`` with label ``chi``."""

    __slots__ = ("tail", "target", "label")

    def __init__(
        self,
        tail: Iterable[SipNode],
        target: int,
        label: Iterable[Variable],
    ):
        tail = frozenset(tail)
        label = frozenset(label)
        if not isinstance(target, int):
            raise TypeError("sip arc target must be a body position (int)")
        for node in tail:
            if node != HEAD and not isinstance(node, int):
                raise TypeError(f"sip arc tail node {node!r} is invalid")
        if target in tail:
            raise SipValidationError(
                f"sip arc into position {target} includes the target in its "
                "own tail"
            )
        object.__setattr__(self, "tail", tail)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "label", label)

    def __setattr__(self, key, value):
        raise AttributeError("SipArc is immutable")

    def tail_positions(self) -> Tuple[int, ...]:
        """Body positions in the tail, ascending (HEAD excluded)."""
        return tuple(sorted(n for n in self.tail if isinstance(n, int)))

    def has_head(self) -> bool:
        return HEAD in self.tail

    def __eq__(self, other):
        return (
            isinstance(other, SipArc)
            and other.tail == self.tail
            and other.target == self.target
            and other.label == self.label
        )

    def __hash__(self):
        return hash((self.tail, self.target, self.label))

    def __repr__(self):
        tail = sorted(self.tail, key=lambda n: (-1, "") if n == HEAD else (n, ""))
        label = sorted(v.name for v in self.label)
        return f"SipArc({tail} -> {self.target} : {label})"


class Sip:
    """A validated sip graph for one rule under one head adornment."""

    __slots__ = ("rule", "adornment", "arcs", "_order")

    def __init__(self, rule: Rule, adornment: str, arcs: Iterable[SipArc]):
        validate_adornment(adornment, rule.head.arity)
        arcs = tuple(arcs)
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "adornment", adornment)
        object.__setattr__(self, "arcs", arcs)
        object.__setattr__(self, "_order", None)
        self._validate()

    def __setattr__(self, key, value):
        raise AttributeError("Sip is immutable")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def bound_head_variables(self) -> FrozenSet[Variable]:
        """Variables of the head's bound arguments (the arguments of p_h)."""
        head = self.rule.head
        bound = set()
        for arg, letter in zip(head.args, self.adornment):
            if letter == "b":
                bound.update(arg.variables())
        return frozenset(bound)

    def has_head_node(self) -> bool:
        """False when no head argument is bound (p_h does not exist)."""
        return "b" in self.adornment

    def arcs_into(self, position: int) -> Tuple[SipArc, ...]:
        return tuple(arc for arc in self.arcs if arc.target == position)

    def incoming_label(self, position: int) -> FrozenSet[Variable]:
        """Union of labels of arcs entering a position (chi_i, Section 3)."""
        label: Set[Variable] = set()
        for arc in self.arcs_into(position):
            label.update(arc.label)
        return frozenset(label)

    def node_variables(self, node: SipNode) -> FrozenSet[Variable]:
        if node == HEAD:
            return self.bound_head_variables()
        return frozenset(self.rule.body[node].variables())

    # ------------------------------------------------------------------
    # validation: conditions (1)-(3) of Section 2
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = len(self.rule.body)
        for arc in self.arcs:
            if not (0 <= arc.target < n):
                raise SipValidationError(
                    f"arc target {arc.target} out of range for rule "
                    f"{self.rule}"
                )
            for node in arc.tail:
                if node == HEAD:
                    if not self.has_head_node():
                        raise SipValidationError(
                            "arc tail refers to p_h but no head argument is "
                            f"bound in adornment {self.adornment!r}"
                        )
                    continue
                if not (0 <= node < n):
                    raise SipValidationError(
                        f"arc tail position {node} out of range"
                    )
                if self.rule.body[node].negated:
                    raise SipValidationError(
                        f"arc tail includes the negated literal "
                        f"{self.rule.body[node]}: negated occurrences "
                        "bind nothing (consumers only)"
                    )
            self._check_arc_conditions(arc)
        self._check_acyclic()

    def _check_arc_conditions(self, arc: SipArc) -> None:
        # (2i): each label variable appears in the tail
        tail_vars: Set[Variable] = set()
        for node in arc.tail:
            tail_vars.update(self.node_variables(node))
        missing = arc.label - tail_vars
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise SipValidationError(
                f"arc into position {arc.target}: label variables "
                f"{{{names}}} do not appear in the tail (condition 2i)"
            )
        # (2ii): each tail member is connected to a label variable through
        # the variables of the tail join
        connected = self._label_connected_nodes(arc.tail, arc.label)
        disconnected = arc.tail - connected
        if disconnected and arc.label:
            raise SipValidationError(
                f"arc into position {arc.target}: tail members "
                f"{sorted(map(str, disconnected))} are not connected to any "
                "label variable (condition 2ii)"
            )
        # (2iii): the label binds whole arguments of the target
        target_literal = self.rule.body[arc.target]
        covered_vars: Set[Variable] = set()
        for argument in target_literal.args:
            arg_vars = set(argument.variables())
            if arg_vars and arg_vars <= arc.label:
                covered_vars.update(arg_vars)
        uncovered = arc.label - covered_vars
        if uncovered:
            names = ", ".join(sorted(v.name for v in uncovered))
            raise SipValidationError(
                f"arc into position {arc.target}: label variables "
                f"{{{names}}} do not fully cover any argument of the target "
                "(condition 2iii)"
            )
        if arc.label and not covered_vars:
            raise SipValidationError(
                f"arc into position {arc.target}: no target argument is "
                "fully covered by the label (condition 2iii)"
            )

    def _label_connected_nodes(
        self, tail: FrozenSet[SipNode], label: FrozenSet[Variable]
    ) -> Set[SipNode]:
        """Tail members connected to a label variable within the tail join."""
        connected: Set[SipNode] = set()
        reached_vars: Set[Variable] = set(label)
        changed = True
        while changed:
            changed = False
            for node in tail:
                if node in connected:
                    continue
                node_vars = self.node_variables(node)
                if node_vars & reached_vars:
                    connected.add(node)
                    new_vars = node_vars - reached_vars
                    if new_vars:
                        reached_vars.update(new_vars)
                    changed = True
        return connected

    def _precedence_edges(self) -> List[Tuple[SipNode, SipNode]]:
        edges: List[Tuple[SipNode, SipNode]] = []
        for arc in self.arcs:
            for node in arc.tail:
                edges.append((node, arc.target))
        return edges

    def _check_acyclic(self) -> None:
        # condition (3): the precedence relation must be a partial order
        order = self._topological_order()
        if order is None:
            raise SipValidationError(
                f"sip for rule {self.rule} induces a cyclic precedence "
                "relation (condition 3)"
            )

    def _topological_order(self) -> Optional[Tuple[int, ...]]:
        n = len(self.rule.body)
        in_sip: Set[int] = set()
        for arc in self.arcs:
            in_sip.add(arc.target)
            in_sip.update(p for p in arc.tail if isinstance(p, int))
        successors: Dict[int, Set[int]] = {i: set() for i in range(n)}
        indegree = {i: 0 for i in range(n)}
        for arc in self.arcs:
            for node in arc.tail:
                if isinstance(node, int) and arc.target not in successors[node]:
                    successors[node].add(arc.target)
                    indegree[arc.target] += 1
        # Kahn's algorithm; ties broken by (not-in-sip last, position)
        order: List[int] = []
        available = [
            i for i in range(n) if indegree[i] == 0
        ]
        while available:
            available.sort(key=lambda i: (i not in in_sip, i))
            node = available.pop(0)
            order.append(node)
            for succ in sorted(successors[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    available.append(succ)
        if len(order) != n:
            return None
        return tuple(order)

    # ------------------------------------------------------------------
    # derived information
    # ------------------------------------------------------------------
    def total_order(self) -> Tuple[int, ...]:
        """A total order of body positions per condition (3').

        p_h is implicitly first; positions not in the sip come last; ties
        are broken by original position, so the order is deterministic.
        """
        cached = self._order
        if cached is None:
            cached = self._topological_order()
            object.__setattr__(self, "_order", cached)
        return cached

    def precedes(self) -> Dict[SipNode, Set[SipNode]]:
        """The transitive ``=>`` relation of Proposition 4.2.

        ``p => q`` when the sip has an arc ``N -> q`` with ``p`` in ``N``,
        closed transitively.
        """
        direct: Dict[SipNode, Set[SipNode]] = {}
        for arc in self.arcs:
            for node in arc.tail:
                direct.setdefault(node, set()).add(arc.target)
        closure: Dict[SipNode, Set[SipNode]] = {}

        def reach(node: SipNode) -> Set[SipNode]:
            if node in closure:
                return closure[node]
            seen: Set[SipNode] = set()
            frontier = list(direct.get(node, ()))
            while frontier:
                nxt = frontier.pop()
                if nxt in seen:
                    continue
                seen.add(nxt)
                frontier.extend(direct.get(nxt, ()))
            closure[node] = seen
            return seen

        for node in list(direct) + [HEAD]:
            reach(node)
        return closure

    # ------------------------------------------------------------------
    # containment and fullness (Section 2.1)
    # ------------------------------------------------------------------
    def contained_in(self, other: "Sip") -> bool:
        """Sip containment: G <= G' per Section 2.1.

        For each arc ``N -> q`` (label chi) of self there must be an arc
        ``N' -> q`` (label chi') of ``other`` with ``N <= N'`` and
        ``chi <= chi'``.
        """
        for arc in self.arcs:
            found = False
            for candidate in other.arcs_into(arc.target):
                if arc.tail <= candidate.tail and arc.label <= candidate.label:
                    found = True
                    break
            if not found:
                return False
        return True

    def properly_contained_in(self, other: "Sip") -> bool:
        return self.contained_in(other) and not other.contained_in(self)

    def is_full_for_order(self, is_derived: IsDerived) -> bool:
        """True when this sip equals the full sip built on its own order."""
        order = self.total_order()
        full = build_full_sip(
            self.rule, self.adornment, is_derived, order=order
        )
        return self.contained_in(full) and full.contained_in(self)

    def remapped(self, position_map: Dict[int, int], new_rule: Rule) -> "Sip":
        """Rebuild the sip after body reordering.

        ``position_map`` maps old positions to new ones.
        """
        new_arcs = []
        for arc in self.arcs:
            tail = frozenset(
                HEAD if node == HEAD else position_map[node]
                for node in arc.tail
            )
            new_arcs.append(SipArc(tail, position_map[arc.target], arc.label))
        return Sip(new_rule, self.adornment, tuple(new_arcs))

    def __repr__(self):
        return (
            f"Sip({self.rule.head.pred}^{self.adornment}, "
            f"{len(self.arcs)} arcs)"
        )

    def __str__(self):
        lines = [f"sip for {self.rule.head.pred}^{self.adornment}:"]
        for arc in self.arcs:
            tail_names = []
            for node in sorted(
                arc.tail, key=lambda n: (-1 if n == HEAD else n)
            ):
                if node == HEAD:
                    tail_names.append(f"{self.rule.head.pred}_h")
                else:
                    tail_names.append(str(self.rule.body[node]))
            label = ",".join(sorted(v.name for v in arc.label))
            target = self.rule.body[arc.target]
            lines.append(
                "  {" + ", ".join(tail_names) + "} --" + label + f"--> {target}"
            )
        return "\n".join(lines)


SipBuilder = Callable[[Rule, str, IsDerived], Sip]


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------

def _covered_label(
    literal: Literal, available: Set[Variable]
) -> FrozenSet[Variable]:
    """Label variables passable to a literal per condition (2iii).

    The union of variables of the literal's arguments that are fully
    covered by the available variables.
    """
    label: Set[Variable] = set()
    for argument in literal.args:
        arg_vars = set(argument.variables())
        if arg_vars and arg_vars <= available:
            label.update(arg_vars)
    return frozenset(label)


def _trim_tail(
    sip_nodes: Iterable[SipNode],
    label: FrozenSet[Variable],
    node_vars: Callable[[SipNode], FrozenSet[Variable]],
) -> FrozenSet[SipNode]:
    """Drop tail members not connected to the label (condition 2ii)."""
    tail = set(sip_nodes)
    connected: Set[SipNode] = set()
    reached: Set[Variable] = set(label)
    changed = True
    while changed:
        changed = False
        for node in tail:
            if node in connected:
                continue
            variables = node_vars(node)
            if variables & reached:
                connected.add(node)
                reached.update(variables)
                changed = True
    return frozenset(connected)


def _default_order(rule: Rule, order: Optional[Sequence[int]]) -> Tuple[int, ...]:
    if order is None:
        return tuple(range(len(rule.body)))
    order = tuple(order)
    if sorted(order) != list(range(len(rule.body))):
        raise ValueError(
            f"order {order} is not a permutation of the body positions of "
            f"{rule}"
        )
    return order


def build_full_sip(
    rule: Rule,
    adornment: str,
    is_derived: IsDerived,
    order: Optional[Sequence[int]] = None,
) -> Sip:
    """The left-to-right full compressed sip (Example 1, (I)/(IV)).

    Processing body literals in ``order``, each literal receives an arc
    whose tail is the head node plus every earlier literal (trimmed per
    condition 2ii) and whose label is every variable that covers one of
    its arguments.  All available information is passed -- this is what
    PROLOG's left-to-right evaluation does, and the paper's default.
    """
    validate_adornment(adornment, rule.head.arity)
    order = _default_order(rule, order)
    head_bound: Set[Variable] = set()
    for arg, letter in zip(rule.head.args, adornment):
        if letter == "b":
            head_bound.update(arg.variables())

    def node_vars(node: SipNode) -> FrozenSet[Variable]:
        if node == HEAD:
            return frozenset(head_bound)
        return frozenset(rule.body[node].variables())

    arcs: List[SipArc] = []
    available: Set[Variable] = set(head_bound)
    seen_nodes: List[SipNode] = []
    if head_bound:
        seen_nodes.append(HEAD)
    for position in order:
        literal = rule.body[position]
        label = _covered_label(literal, available)
        if label and seen_nodes:
            tail = _trim_tail(seen_nodes, label, node_vars)
            if tail:
                arcs.append(SipArc(tail, position, label))
        if literal.negated:
            # consumer only: an anti-join binds nothing, so later
            # literals cannot draw information from it
            continue
        seen_nodes.append(position)
        available.update(literal.variables())
    return Sip(rule, adornment, tuple(arcs))


def build_chain_sip(
    rule: Rule,
    adornment: str,
    is_derived: IsDerived,
    order: Optional[Sequence[int]] = None,
) -> Sip:
    """The no-memory partial sip (Example 1, (II)/(V)).

    Each literal's arc carries only the *nearest preceding derived-or-head
    node* together with the base literals between that node and the
    target (the ``N1; N2`` generalized notation of Section 2): past
    information is not remembered, so the sip is partial.
    """
    validate_adornment(adornment, rule.head.arity)
    order = _default_order(rule, order)
    head_bound: Set[Variable] = set()
    for arg, letter in zip(rule.head.args, adornment):
        if letter == "b":
            head_bound.update(arg.variables())

    def node_vars(node: SipNode) -> FrozenSet[Variable]:
        if node == HEAD:
            return frozenset(head_bound)
        return frozenset(rule.body[node].variables())

    arcs: List[SipArc] = []
    # the chain of nodes processed so far, most recent last
    processed: List[SipNode] = []
    if head_bound:
        processed.append(HEAD)
    for position in order:
        literal = rule.body[position]
        # N = nearest preceding derived-or-head node, plus the base
        # literals after it
        tail_nodes: List[SipNode] = []
        for node in reversed(processed):
            tail_nodes.append(node)
            if node == HEAD:
                break
            if is_derived(rule.body[node]):
                break
        tail_vars: Set[Variable] = set()
        for node in tail_nodes:
            tail_vars.update(node_vars(node))
        label = _covered_label(literal, tail_vars)
        if label and tail_nodes:
            tail = _trim_tail(tail_nodes, label, node_vars)
            if tail:
                arcs.append(SipArc(tail, position, label))
        if literal.negated:
            # consumer only: never part of the remembered chain
            continue
        processed.append(position)
    return Sip(rule, adornment, tuple(arcs))


def build_right_to_left_sip(
    rule: Rule,
    adornment: str,
    is_derived: IsDerived,
) -> Sip:
    """A full compressed sip over the reversed body order.

    Useful when the query binds arguments that the *last* body literals
    consume (e.g. ``anc(X, constant)?``); see also :func:`greedy_order`
    for a data-independent heuristic.
    """
    order = tuple(reversed(range(len(rule.body))))
    return build_full_sip(rule, adornment, is_derived, order=order)


def build_empty_sip(
    rule: Rule,
    adornment: str,
    is_derived: IsDerived,
    order: Optional[Sequence[int]] = None,
) -> Sip:
    """A sip with no arcs: no information passing at all.

    Rewriting with this sip degenerates to plain bottom-up evaluation of
    the whole program (every derived predicate stays all-free), which is
    the Section 1 strawman and a useful baseline.
    """
    validate_adornment(adornment, rule.head.arity)
    return Sip(rule, adornment, ())


def sip_builder_with_order(
    base: Callable[..., Sip],
    order_fn: Callable[[Rule, str], Sequence[int]],
) -> SipBuilder:
    """Wrap a builder with a rule-specific body order function."""

    def builder(rule: Rule, adornment: str, is_derived: IsDerived) -> Sip:
        return base(rule, adornment, is_derived, order=order_fn(rule, adornment))

    return builder


def greedy_order(rule: Rule, adornment: str) -> Tuple[int, ...]:
    """A binding-maximizing evaluation order heuristic.

    Repeatedly choose the unprocessed literal with the most fully bound
    arguments under the variables available so far; ties prefer base-like
    small positions (original order).  With head bindings this mimics
    what a simple optimizer would pick.
    """
    available: Set[Variable] = set()
    for arg, letter in zip(rule.head.args, adornment):
        if letter == "b":
            available.update(arg.variables())
    remaining = list(range(len(rule.body)))
    order: List[int] = []
    while remaining:
        def score(position: int) -> Tuple[int, int]:
            literal = rule.body[position]
            bound_args = 0
            for argument in literal.args:
                arg_vars = set(argument.variables())
                if arg_vars and arg_vars <= available:
                    bound_args += 1
            return (-bound_args, position)

        remaining.sort(key=score)
        chosen = remaining.pop(0)
        order.append(chosen)
        if not rule.body[chosen].negated:
            # anti-joins consume bindings but produce none
            available.update(rule.body[chosen].variables())
    return tuple(order)
