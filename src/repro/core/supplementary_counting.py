"""Generalized supplementary counting (GSC) -- Section 7.

The counting analogue of GSMS: intermediate joins are stored in
*supplementary counting predicates* ``supcntR_J(I, K, H, phi_J)`` so that
counting rules and the modified rule project from them instead of
re-evaluating prefixes.  The index fields ride along the supplementary
chain unchanged ("running indices").

As in GSMS:

* ``supcntR_1`` is not materialized -- occurrences are replaced by
  ``cnt_p_ind(I, K, H, x^b)``;
* each ``phi_j`` keeps only variables still needed later;
* all-free head rules fall back to the plain counting transformation for
  that rule (no counting seed exists to anchor the chain).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datalog.ast import Literal, Rule
from ..datalog.terms import Variable
from .adornment import AdornedProgram, AdornedRule
from .counting import (
    IndexScheme,
    NumericIndexScheme,
    StructuralIndexScheme,
    _check_range_restricted,
    _counting_literal,
    _counting_rules_for,
    _indexed_literal,
    _is_bound_adorned,
    _modified_rule_for,
    _reject_negation,
)
from .naming import counting_name, indexed_name, supplementary_counting_name
from .provenance import (
    BodyOrigin,
    RewrittenProgram,
    RewrittenRule,
    RuleProvenance,
)
from .supplementary import needed_variables

__all__ = ["supplementary_counting_rewrite"]

_SCHEMES = {
    "numeric": NumericIndexScheme,
    "structural": StructuralIndexScheme,
}


def supplementary_counting_rewrite(
    adorned: AdornedProgram,
    mode: str = "numeric",
    optimize: bool = True,
) -> RewrittenProgram:
    """Rewrite an adorned program by generalized supplementary counting."""
    _reject_negation(adorned, "supplementary counting")
    if mode not in _SCHEMES:
        raise ValueError(
            f"unknown index mode {mode!r}; expected one of {sorted(_SCHEMES)}"
        )
    scheme_cls = _SCHEMES[mode]
    rule_count = len(adorned.rules)
    max_body = adorned.max_body_length()

    registry: Dict[str, Tuple[str, str, str]] = {}
    rewritten: List[RewrittenRule] = []
    for rule_index, adorned_rule in enumerate(adorned.rules):
        scheme = scheme_cls(rule_count, max_body, adorned_rule.rule.variables())
        rewritten.extend(
            _rewrite_rule(adorned_rule, rule_index, scheme, registry, optimize)
        )
    for rewritten_rule in rewritten:
        _check_range_restricted(rewritten_rule.rule)

    query_literal = adorned.query_literal
    index_arity = scheme_cls.arity
    if "b" in query_literal.adornment:
        seed = Literal(
            counting_name(query_literal.pred, query_literal.adornment),
            scheme_cls.seed_args() + query_literal.bound_args(),
        )
        seeds: Tuple[Literal, ...] = (seed,)
        answer_key = indexed_name(query_literal.pred, query_literal.adornment)
        offset = index_arity
    else:
        seeds = ()
        answer_key = query_literal.pred_key
        offset = 0

    selection = tuple(
        (offset + i, arg)
        for i, arg in enumerate(query_literal.args)
        if arg.is_ground()
    )
    projection = tuple(
        offset + i
        for i, arg in enumerate(query_literal.args)
        if not arg.is_ground()
    )
    return RewrittenProgram(
        method="supplementary_counting",
        rules=rewritten,
        seed_facts=seeds,
        query=adorned.query,
        answer_pred_key=answer_key,
        answer_selection=selection,
        answer_projection=projection,
        adorned=adorned,
        index_arity=index_arity,
        registry=registry,
    )


def _last_arc_position(adorned_rule: AdornedRule) -> Optional[int]:
    last = None
    for position, literal in enumerate(adorned_rule.body):
        if _is_bound_adorned(literal) and adorned_rule.sip.arcs_into(position):
            last = position
    return last


def _rewrite_rule(
    adorned_rule: AdornedRule,
    rule_index: int,
    scheme: IndexScheme,
    registry: Dict,
    optimize: bool,
) -> List[RewrittenRule]:
    head_literal = adorned_rule.head
    rule_number = rule_index + 1
    if not _is_bound_adorned(head_literal):
        # no counting seed to anchor the chain: plain counting fallback
        out = _counting_rules_for(
            adorned_rule, rule_index, scheme, registry, optimize
        )
        out.append(
            _modified_rule_for(
                adorned_rule, rule_index, scheme, registry, optimize
            )
        )
        return out

    out: List[RewrittenRule] = []
    last = _last_arc_position(adorned_rule)
    guard = _counting_literal(head_literal, scheme.head_args(), registry)

    def ordered_phi(position: int) -> Tuple[Variable, ...]:
        available: Set[Variable] = set()
        for argument in head_literal.bound_args():
            available.update(argument.variables())
        for literal in adorned_rule.body[:position]:
            available.update(literal.variables())
        kept = available & needed_variables(adorned_rule, position)
        return tuple(
            v for v in adorned_rule.rule.variables() if v in kept
        )

    def sup_literal(position: int) -> Literal:
        if position == 0:
            return guard
        name = supplementary_counting_name(rule_number, position + 1)
        registry[name] = ("sup", head_literal.pred, head_literal.adornment)
        return Literal(name, scheme.head_args() + ordered_phi(position))

    def body_literal_at(position: int) -> Tuple[Literal, BodyOrigin]:
        literal = adorned_rule.body[position]
        if _is_bound_adorned(literal):
            child = scheme.child_args(rule_number, position + 1)
            return (
                _indexed_literal(literal, child, registry),
                BodyOrigin("literal", position),
            )
        return literal, BodyOrigin("literal", position)

    # supplementary counting rules sup_j :- sup_{j-1}, body[j-1]
    if last is not None:
        for position in range(1, last + 1):
            previous = sup_literal(position - 1)
            consumed, consumed_origin = body_literal_at(position - 1)
            origins = (
                BodyOrigin(
                    "guard" if position - 1 == 0 else "supplementary",
                    position - 1,
                ),
                consumed_origin,
            )
            out.append(
                RewrittenRule(
                    Rule(sup_literal(position), (previous, consumed)),
                    RuleProvenance(
                        role="supplementary_counting",
                        source_rule=rule_index,
                        target_position=position,
                        body_origins=origins,
                    ),
                )
            )

    # counting rules: cnt_q(child-index, theta^b) :- sup_j
    for position, literal in enumerate(adorned_rule.body):
        if not _is_bound_adorned(literal):
            continue
        if not adorned_rule.sip.arcs_into(position):
            continue
        child = scheme.child_args(rule_number, position + 1)
        head = _counting_literal(literal, child, registry)
        body = (sup_literal(position),)
        rule = Rule(head, body)
        out.append(
            RewrittenRule(
                rule,
                RuleProvenance(
                    role="counting",
                    source_rule=rule_index,
                    target_position=position,
                    body_origins=(
                        BodyOrigin(
                            "guard" if position == 0 else "supplementary",
                            position,
                        ),
                    ),
                ),
            )
        )

    # modified rule: p_ind(I,K,H,chi) :- sup_last, body[last..] (indexed)
    anchor = 0 if last is None else last
    head = _indexed_literal(head_literal, scheme.head_args(), registry)
    body_literals: List[Literal] = [sup_literal(anchor)]
    origins_list: List[BodyOrigin] = [
        BodyOrigin("guard" if anchor == 0 else "supplementary", anchor)
    ]
    for position in range(anchor, len(adorned_rule.body)):
        literal, origin = body_literal_at(position)
        body_literals.append(literal)
        origins_list.append(origin)
    out.append(
        RewrittenRule(
            Rule(head, tuple(body_literals)),
            RuleProvenance(
                role="modified",
                source_rule=rule_index,
                body_origins=tuple(origins_list),
            ),
        )
    )
    return out
