"""The paper's contribution: sips, adornment, and the four rewrites.

Import surface::

    from repro.core import (
        adorn_program, build_full_sip, build_chain_sip,
        magic_rewrite, supplementary_magic_rewrite,
        counting_rewrite, supplementary_counting_rewrite,
        semijoin_optimize, rewrite, answer_query,
    )
"""

from .adornment import AdornedProgram, AdornedRule, adorn_program
from .counting import counting_rewrite
from .magic import magic_literal_for, magic_rewrite
from .optimality import (
    OptimalityReport,
    SipComparison,
    check_optimality,
    compare_sips,
)
from .limits import (
    BudgetExceeded,
    BudgetMeter,
    CancellationToken,
    EvaluationBudget,
    EvaluationCancelled,
    FaultPlan,
    InjectedFault,
)
from .pipeline import (
    QueryAnswer,
    REWRITE_METHODS,
    answer_query,
    bottom_up_answer,
    rewrite,
    unwrap_values,
)
from .provenance import (
    BodyOrigin,
    RewrittenProgram,
    RewrittenRule,
    RuleProvenance,
)
from .safety import (
    BindingGraph,
    SafetyReport,
    all_cycles_positive,
    argument_graph,
    argument_graph_cyclic,
    binding_graph,
    check_safe_negation,
    counting_safety,
    magic_safety,
    negation_safety,
    term_length_polynomial,
)
from .stratify import (
    Stratification,
    check_stratified,
    is_stratified,
    stratify,
    stratify_or_raise,
)
from .semijoin import lemma_8_1_prune, lemma_8_2_anonymize, semijoin_optimize
from .sips import (
    HEAD,
    Sip,
    SipArc,
    build_chain_sip,
    build_empty_sip,
    build_full_sip,
    build_right_to_left_sip,
    greedy_order,
    sip_builder_with_order,
)
from .supplementary import supplementary_magic_rewrite
from .supplementary_counting import supplementary_counting_rewrite

__all__ = [
    "AdornedProgram",
    "AdornedRule",
    "adorn_program",
    "counting_rewrite",
    "magic_literal_for",
    "magic_rewrite",
    "OptimalityReport",
    "SipComparison",
    "check_optimality",
    "compare_sips",
    "BudgetExceeded",
    "BudgetMeter",
    "CancellationToken",
    "EvaluationBudget",
    "EvaluationCancelled",
    "FaultPlan",
    "InjectedFault",
    "QueryAnswer",
    "REWRITE_METHODS",
    "answer_query",
    "bottom_up_answer",
    "rewrite",
    "unwrap_values",
    "BodyOrigin",
    "RewrittenProgram",
    "RewrittenRule",
    "RuleProvenance",
    "BindingGraph",
    "SafetyReport",
    "all_cycles_positive",
    "argument_graph",
    "argument_graph_cyclic",
    "binding_graph",
    "check_safe_negation",
    "counting_safety",
    "magic_safety",
    "negation_safety",
    "term_length_polynomial",
    "Stratification",
    "check_stratified",
    "is_stratified",
    "stratify",
    "stratify_or_raise",
    "lemma_8_1_prune",
    "lemma_8_2_anonymize",
    "semijoin_optimize",
    "HEAD",
    "Sip",
    "SipArc",
    "build_chain_sip",
    "build_empty_sip",
    "build_full_sip",
    "build_right_to_left_sip",
    "greedy_order",
    "sip_builder_with_order",
    "supplementary_magic_rewrite",
    "supplementary_counting_rewrite",
]
