"""The semijoin optimization of the counting methods -- Section 8.

Counting indices encode the derivation path of every fact, so joins on
*data* columns can often be replaced by joins on *index* columns:

* **Lemma 8.1** -- in a counting or modified rule, the literals of an arc
  tail ``N`` (with their counting predicates) may be deleted when their
  variables reach the rest of the rule only through the bound arguments
  of the indexed target ``q_ind``: the counting rule for ``q`` already
  performed that join, and the index fields identify its results.
* **Lemma 8.2** -- a bound argument of an indexed occurrence whose
  variables appear nowhere else is a don't-care: the indices alone
  select the right tuples.
* **Theorem 8.3** -- when, over a whole block of mutually recursive
  indexed predicates, every bound argument is supported only circularly
  (bound arguments feeding bound arguments), the bound argument
  *positions* can be dropped program-wide, shrinking both the number of
  joins and the width of every fact.

:func:`semijoin_optimize` implements the Theorem 8.3 fixpoint (which
subsumes applications of the two lemmas); :func:`lemma_8_1_prune` and
:func:`lemma_8_2_anonymize` are the standalone lemma-level passes, kept
for the ablation benchmarks.

The analysis runs over the provenance metadata the counting rewriters
attach to every rule (``repro.core.provenance``): for each body literal
we know which adorned-rule position it came from, hence which sip arc
tail ``N`` feeds each indexed occurrence.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from ..datalog.ast import Literal, Rule
from ..datalog.errors import RewriteError
from ..datalog.terms import Variable
from .adornment import AdornedProgram
from .provenance import BodyOrigin, RewrittenProgram, RewrittenRule
from .sips import HEAD

__all__ = ["semijoin_optimize", "lemma_8_1_prune", "lemma_8_2_anonymize"]


# ----------------------------------------------------------------------
# shape helpers
# ----------------------------------------------------------------------

class _Shape:
    """Registry-driven classification of rewritten-program literals."""

    def __init__(self, rewritten: RewrittenProgram):
        if not rewritten.method.startswith(
            ("counting", "supplementary_counting")
        ):
            raise RewriteError(
                "the semijoin optimization applies to the counting methods "
                f"only (got method {rewritten.method!r}); see Section 8"
            )
        self.registry = rewritten.registry
        self.index_arity = rewritten.index_arity
        self.adorned: AdornedProgram = rewritten.adorned

    def kind(self, literal: Literal) -> Optional[str]:
        entry = self.registry.get(literal.pred)
        if entry is None:
            return None
        return entry[0]

    def adornment_of(self, literal: Literal) -> Optional[str]:
        entry = self.registry.get(literal.pred)
        if entry is None:
            return None
        return entry[2]

    def is_indexed(self, literal: Literal) -> bool:
        return self.kind(literal) == "indexed"

    def is_sup(self, literal: Literal) -> bool:
        return self.kind(literal) == "sup"

    def has_index_fields(self, literal: Literal) -> bool:
        return self.kind(literal) in ("indexed", "counting", "sup")

    def bound_positions(self, literal: Literal) -> Tuple[int, ...]:
        """Absolute positions of bound non-index arguments."""
        adornment = self.adornment_of(literal)
        if adornment is None or self.kind(literal) != "indexed":
            return ()
        return tuple(
            self.index_arity + i
            for i, letter in enumerate(adornment)
            if letter == "b"
        )

    def nonindex_positions(self, literal: Literal) -> Tuple[int, ...]:
        start = self.index_arity if self.has_index_fields(literal) else 0
        return tuple(range(start, len(literal.args)))

    def nonindex_variables(self, literal: Literal) -> Set[Variable]:
        out: Set[Variable] = set()
        for position in self.nonindex_positions(literal):
            out.update(literal.args[position].variables())
        return out


# variable occurrence: (body index or -1 for head, argument position)
_Occurrence = Tuple[int, int]


def _variable_occurrences(rule: Rule) -> Dict[Variable, List[_Occurrence]]:
    """Every (literal, argument-position) occurrence of every variable."""
    occurrences: Dict[Variable, List[_Occurrence]] = {}
    for arg_position, argument in enumerate(rule.head.args):
        for var in argument.variables():
            occurrences.setdefault(var, []).append((-1, arg_position))
    for body_index, literal in enumerate(rule.body):
        for arg_position, argument in enumerate(literal.args):
            for var in argument.variables():
                occurrences.setdefault(var, []).append(
                    (body_index, arg_position)
                )
    return occurrences


# ----------------------------------------------------------------------
# the Theorem 8.3 fixpoint
# ----------------------------------------------------------------------

class _Analysis:
    """Joint fixpoint state: which indexed predicates can drop their
    bound argument positions, and which supplementary positions are dead."""

    def __init__(self, rewritten: RewrittenProgram):
        self.rewritten = rewritten
        self.shape = _Shape(rewritten)
        # optimistic start: every indexed predicate drops, every sup
        # non-index position is dead; violations shrink the sets
        self.dropping: Set[str] = set()
        self.dead_sup: Set[Tuple[str, int]] = set()
        for rr in rewritten.rules:
            for literal in (rr.rule.head, *rr.rule.body):
                if self.shape.is_indexed(literal):
                    if self.shape.bound_positions(literal):
                        self.dropping.add(literal.pred)
                elif self.shape.is_sup(literal):
                    for position in self.shape.nonindex_positions(literal):
                        self.dead_sup.add((literal.pred, position))

    # ------------------------------------------------------------------
    def run(self) -> None:
        changed = True
        while changed:
            changed = False
            for rr in self.rewritten.rules:
                if self._analyze_rule(rr):
                    changed = True

    # ------------------------------------------------------------------
    def deletable_tails(self, rr: RewrittenRule) -> Set[int]:
        """Body indices deletable by Lemma 8.1 under the current state."""
        deleted: Set[int] = set()
        for occ_index, target_position in self._indexed_occurrences(rr):
            tail = self._tail_indices(rr, occ_index, target_position)
            if tail is None:
                continue
            if self._tail_vars_confined(rr, occ_index, tail):
                deleted |= tail
        return deleted

    def _indexed_occurrences(self, rr: RewrittenRule):
        """(body index, source adorned position) of indexed occurrences."""
        out = []
        for body_index, (literal, origin) in enumerate(
            zip(rr.rule.body, rr.provenance.body_origins)
        ):
            if origin.kind == "literal" and self.shape.is_indexed(literal):
                out.append((body_index, origin.position))
        return out

    def _tail_indices(
        self, rr: RewrittenRule, occ_index: int, target_position: int
    ) -> Optional[Set[int]]:
        """Body indices of the rule covering the occurrence's arc tail N.

        Returns None when the tail is not fully represented in the rule
        (so Lemma 8.1 cannot fire for this occurrence).
        """
        source_rule = rr.provenance.source_rule
        if source_rule is None or target_position is None:
            return None
        adorned_rule = self.shape.adorned.rules[source_rule]
        arcs = adorned_rule.sip.arcs_into(target_position)
        if len(arcs) != 1:
            return None
        arc = arcs[0]
        tail_nodes: Set = set(arc.tail)
        covered: Set = set()
        indices: Set[int] = set()
        for body_index, origin in enumerate(rr.provenance.body_origins):
            if body_index == occ_index:
                continue
            if origin.kind == "guard" and HEAD in tail_nodes:
                indices.add(body_index)
                covered.add(HEAD)
            elif origin.kind in ("literal", "magic") and (
                origin.position in tail_nodes
            ):
                indices.add(body_index)
                covered.add(origin.position)
            elif origin.kind == "supplementary":
                # a supplementary literal materializes the join of the
                # head bindings with all positions before origin.position
                sup_covers = {HEAD} | set(range(origin.position))
                if tail_nodes <= sup_covers:
                    indices.add(body_index)
                    covered |= tail_nodes
        if covered >= tail_nodes:
            return indices
        return None

    # ------------------------------------------------------------------
    # the two variable-confinement conditions of Theorem 8.3
    # ------------------------------------------------------------------
    def _allowed(
        self,
        rr: RewrittenRule,
        occurrence: _Occurrence,
        deleted: Set[int],
        home: Set[int],
    ) -> bool:
        """Is a variable occurrence in an 'allowed' place?

        Allowed places (Theorem 8.3): inside the literals scheduled for
        deletion; bound arguments of dropping indexed literals (head or
        body); dead supplementary positions; the home literals
        themselves.
        """
        body_index, arg_position = occurrence
        if body_index in home:
            return True
        if body_index >= 0 and body_index in deleted:
            return True
        literal = (
            rr.rule.head if body_index == -1 else rr.rule.body[body_index]
        )
        if self.shape.is_indexed(literal) and literal.pred in self.dropping:
            if arg_position in self.shape.bound_positions(literal):
                return True
        if self.shape.is_sup(literal):
            if (literal.pred, arg_position) in self.dead_sup:
                return True
        if self.shape.has_index_fields(literal) and (
            arg_position < self.shape.index_arity
        ):
            return True
        return False

    def _tail_vars_confined(
        self, rr: RewrittenRule, occ_index: int, tail: Set[int]
    ) -> bool:
        """Lemma 8.1 condition: tail variables reach the rest of the rule
        only through allowed places or the target's bound arguments."""
        occurrences = _variable_occurrences(rr.rule)
        target = rr.rule.body[occ_index]
        target_bound = set(self.shape.bound_positions(target))
        tail_vars: Set[Variable] = set()
        for body_index in tail:
            tail_vars |= self.shape.nonindex_variables(rr.rule.body[body_index])
        for var in tail_vars:
            for occurrence in occurrences.get(var, ()):
                body_index, arg_position = occurrence
                if body_index in tail:
                    continue
                if body_index == occ_index and arg_position in target_bound:
                    continue
                if not self._allowed(rr, occurrence, tail, home=set()):
                    return False
        return True

    # ------------------------------------------------------------------
    def _analyze_rule(self, rr: RewrittenRule) -> bool:
        """Check conditions in one rule; shrink the state on violations."""
        changed = False
        deleted = self.deletable_tails(rr)
        occurrences = _variable_occurrences(rr.rule)

        # condition (1): bound-argument variables of dropping occurrences
        for occ_index, _ in self._indexed_occurrences(rr):
            if occ_index in deleted:
                continue
            literal = rr.rule.body[occ_index]
            if literal.pred not in self.dropping:
                continue
            bound_positions = set(self.shape.bound_positions(literal))
            bound_vars: Set[Variable] = set()
            for position in bound_positions:
                bound_vars.update(literal.args[position].variables())
            for var in bound_vars:
                for occurrence in occurrences.get(var, ()):
                    body_index, arg_position = occurrence
                    if body_index == occ_index and arg_position in bound_positions:
                        continue
                    if not self._allowed(rr, occurrence, deleted, set()):
                        self.dropping.discard(literal.pred)
                        changed = True
                        break
                if literal.pred not in self.dropping:
                    break

        # dead supplementary positions: consumers must not use them
        for body_index, literal in enumerate(rr.rule.body):
            if body_index in deleted or not self.shape.is_sup(literal):
                continue
            for position in self.shape.nonindex_positions(literal):
                if (literal.pred, position) not in self.dead_sup:
                    continue
                for var in literal.args[position].variables():
                    for occurrence in occurrences.get(var, ()):
                        occ_body, occ_arg = occurrence
                        if occ_body == body_index and occ_arg == position:
                            continue
                        if not self._allowed(rr, occurrence, deleted, set()):
                            self.dead_sup.discard((literal.pred, position))
                            changed = True
                            break
                    if (literal.pred, position) not in self.dead_sup:
                        break
        return changed


def semijoin_optimize(rewritten: RewrittenProgram) -> RewrittenProgram:
    """Apply the full semijoin optimization (Theorem 8.3).

    Runs the joint fixpoint deciding which indexed predicates drop their
    bound argument positions and which supplementary positions die, then
    rebuilds every rule: deletable arc tails are removed (Lemma 8.1),
    dropped/dead positions disappear program-wide, and the answer
    extraction metadata is rewritten to select on the seed's index fields
    instead of the dropped bound arguments.
    """
    analysis = _Analysis(rewritten)
    analysis.run()
    return _rebuild(rewritten, analysis)


def _rebuild(
    rewritten: RewrittenProgram, analysis: _Analysis
) -> RewrittenProgram:
    shape = analysis.shape

    def transform(literal: Literal) -> Literal:
        if shape.is_indexed(literal) and literal.pred in analysis.dropping:
            drop = set(shape.bound_positions(literal))
            args = tuple(
                arg
                for position, arg in enumerate(literal.args)
                if position not in drop
            )
            return Literal(literal.pred, args, literal.adornment)
        if shape.is_sup(literal):
            args = tuple(
                arg
                for position, arg in enumerate(literal.args)
                if (literal.pred, position) not in analysis.dead_sup
            )
            return Literal(literal.pred, args, literal.adornment)
        return literal

    new_rules: List[RewrittenRule] = []
    for rr in rewritten.rules:
        deleted = analysis.deletable_tails(rr)
        new_body: List[Literal] = []
        new_origins: List[BodyOrigin] = []
        for body_index, (literal, origin) in enumerate(
            zip(rr.rule.body, rr.provenance.body_origins)
        ):
            if body_index in deleted:
                continue
            new_body.append(transform(literal))
            new_origins.append(origin)
        new_head = transform(rr.rule.head)
        candidate = Rule(new_head, tuple(new_body))
        if new_body and _range_restricted(candidate):
            new_rules.append(rr.with_rule(candidate, new_origins))
        else:
            # deletion would break range restriction; keep the tails and
            # only apply the argument drops
            kept_body = tuple(transform(lit) for lit in rr.rule.body)
            new_rules.append(
                rr.with_rule(Rule(new_head, kept_body), rr.provenance.body_origins)
            )

    # answer metadata: when the query predicate dropped its bound
    # arguments, select on the seed's index fields instead
    answer_key = rewritten.answer_pred_key
    selection = rewritten.answer_selection
    projection = rewritten.answer_projection
    if answer_key in analysis.dropping and rewritten.seed_facts:
        seed = rewritten.seed_facts[0]
        index_args = seed.args[: rewritten.index_arity]
        selection = tuple(
            (position, value) for position, value in enumerate(index_args)
        )
        free_rank = 0
        new_projection: List[int] = []
        query_literal = rewritten.adorned.query_literal
        for arg in query_literal.args:
            if not arg.is_ground():
                new_projection.append(rewritten.index_arity + free_rank)
            if not arg.is_ground():
                free_rank += 1
        projection = tuple(new_projection)

    return RewrittenProgram(
        method=rewritten.method + "_semijoin",
        rules=new_rules,
        seed_facts=rewritten.seed_facts,
        query=rewritten.query,
        answer_pred_key=answer_key,
        answer_selection=selection,
        answer_projection=projection,
        adorned=rewritten.adorned,
        index_arity=rewritten.index_arity,
        registry=dict(rewritten.registry),
    )


def _range_restricted(rule: Rule) -> bool:
    body_vars: Set[Variable] = set()
    for literal in rule.body:
        body_vars.update(literal.variables())
    return all(var in body_vars for var in rule.head.variables())


# ----------------------------------------------------------------------
# standalone lemma passes (for ablations)
# ----------------------------------------------------------------------

def lemma_8_1_prune(rewritten: RewrittenProgram) -> RewrittenProgram:
    """Apply only Lemma 8.1: delete confined arc tails, keep all columns."""
    analysis = _Analysis(rewritten)
    # disable dropping and dead positions: pure Lemma 8.1
    analysis.dropping = set()
    analysis.dead_sup = set()
    new_rules: List[RewrittenRule] = []
    for rr in rewritten.rules:
        deleted = analysis.deletable_tails(rr)
        if not deleted:
            new_rules.append(rr)
            continue
        new_body = []
        new_origins = []
        for body_index, (literal, origin) in enumerate(
            zip(rr.rule.body, rr.provenance.body_origins)
        ):
            if body_index in deleted:
                continue
            new_body.append(literal)
            new_origins.append(origin)
        candidate = Rule(rr.rule.head, tuple(new_body))
        if new_body and _range_restricted(candidate):
            new_rules.append(rr.with_rule(candidate, new_origins))
        else:
            new_rules.append(rr)
    return replace(
        rewritten,
        method=rewritten.method + "_lemma81",
        rules=new_rules,
        registry=dict(rewritten.registry),
    )


def lemma_8_2_anonymize(rewritten: RewrittenProgram) -> RewrittenProgram:
    """Apply only Lemma 8.2: anonymize don't-care bound arguments.

    A bound argument of an indexed body occurrence whose variables appear
    nowhere else in the rule is replaced by a fresh anonymous variable.
    (The relation keeps its width; only the join disappears.)
    """
    shape = _Shape(rewritten)
    counter = itertools.count()
    new_rules: List[RewrittenRule] = []
    for rr in rewritten.rules:
        occurrences = _variable_occurrences(rr.rule)
        new_body: List[Literal] = []
        for body_index, literal in enumerate(rr.rule.body):
            if not shape.is_indexed(literal):
                new_body.append(literal)
                continue
            bound_positions = set(shape.bound_positions(literal))
            new_args = list(literal.args)
            for position in bound_positions:
                argument = literal.args[position]
                lonely = all(
                    occ == (body_index, position)
                    or (occ[0] == body_index and occ[1] in bound_positions)
                    for var in argument.variables()
                    for occ in occurrences.get(var, ())
                )
                if argument.variables() and lonely:
                    new_args[position] = Variable(f"_sj{next(counter)}")
            new_body.append(
                Literal(literal.pred, tuple(new_args), literal.adornment)
            )
        new_rules.append(
            rr.with_rule(
                Rule(rr.rule.head, tuple(new_body)),
                rr.provenance.body_origins,
            )
        )
    return replace(
        rewritten,
        method=rewritten.method + "_lemma82",
        rules=new_rules,
        registry=dict(rewritten.registry),
    )
