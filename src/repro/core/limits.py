"""Resource governance for evaluation: budgets, cancellation, fault injection.

The ROADMAP's serving and parallelism items assume evaluations can be
bounded, cancelled, and aborted without corrupting shared state.  This
module supplies the vocabulary:

* :class:`EvaluationBudget` -- an immutable description of limits
  (wall-clock deadline, max derived facts, max tuples scanned, max
  memory estimate) plus an optional :class:`CancellationToken` and
  :class:`FaultPlan`.
* :class:`BudgetMeter` -- the stateful runtime companion created by
  ``budget.start()``.  Engines call ``meter.check_round(...)`` at
  fixpoint-round boundaries and ``meter.check_batch(...)`` at batch/rule
  boundaries; both raise :class:`BudgetExceeded` or
  :class:`EvaluationCancelled` carrying structured progress.
* :class:`FaultPlan` -- a deterministic fault injector that raises
  :class:`InjectedFault` at a chosen round/batch/install boundary, used
  by the atomicity property tests (and the ``REPRO_FAULT_INJECT`` env
  knob) to prove aborts leave the database untouched.

The engines in ``repro.datalog`` never import this module (that would
create an import cycle through ``repro.core``); they accept any object
with ``check_round``/``check_batch`` methods.  Evaluation is staged on a
``database.copy()`` throughout the codebase, so an exception raised here
aborts cleanly: nothing is installed, no version counter moves.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..datalog.errors import EvaluationError, NonTerminationError, ReproError

__all__ = [
    "BudgetExceeded",
    "BudgetMeter",
    "CancellationToken",
    "EvaluationBudget",
    "EvaluationCancelled",
    "FaultPlan",
    "InjectedFault",
    "FAULT_ENV_VAR",
]

FAULT_ENV_VAR = "REPRO_FAULT_INJECT"

_FAULT_KINDS = ("round", "batch", "install")


def _progress_phrase(facts, stratum, round_):
    phrase = f"after {facts} facts"
    if stratum is not None:
        phrase += f", stratum {stratum}"
    if round_ is not None:
        phrase += f" round {round_}" if stratum is not None else f", round {round_}"
    return phrase


class BudgetExceeded(NonTerminationError):
    """A resource limit tripped; carries structured progress.

    Subclasses :class:`NonTerminationError` so existing callers that
    guard fixpoint loops with ``except NonTerminationError`` keep
    working when the limit arrives via a budget instead of the legacy
    ``max_iterations``/``max_facts`` engine arguments.

    Attributes: ``limit`` (``"wall_clock"``/``"max_facts"``/
    ``"max_tuples_scanned"``/``"max_memory"``), ``facts``, ``stratum``,
    ``round``, ``elapsed`` seconds, and ``method`` (filled in by the
    Session so degradation policy can tell which strategy tripped).
    """

    def __init__(self, limit, facts=0, stratum=None, round_=None, elapsed=None):
        message = f"budget exceeded: {limit} " + _progress_phrase(
            facts, stratum, round_
        )
        super().__init__(message, iterations=round_, facts=facts)
        self.limit = limit
        self.stratum = stratum
        self.round = round_
        self.elapsed = elapsed
        self.method = None


class EvaluationCancelled(EvaluationError):
    """The cooperative :class:`CancellationToken` was triggered.

    Deliberately *not* a :class:`BudgetExceeded`: cancellation is a
    caller decision, so the Session never degrades it into a fallback
    evaluation -- it propagates.
    """

    def __init__(self, facts=0, stratum=None, round_=None, elapsed=None):
        message = "evaluation cancelled " + _progress_phrase(facts, stratum, round_)
        super().__init__(message)
        self.facts = facts
        self.stratum = stratum
        self.round = round_
        self.elapsed = elapsed


class InjectedFault(ReproError):
    """Raised by :class:`FaultPlan` at a planned abort point (tests only)."""

    def __init__(self, message, boundary=None, count=None):
        super().__init__(message)
        self.boundary = boundary
        self.count = count


class CancellationToken:
    """Thread-safe cooperative cancellation flag.

    Hand the token to :class:`EvaluationBudget`; flip it from any thread
    with :meth:`cancel`.  Evaluation notices at the next round/batch
    boundary and aborts with :class:`EvaluationCancelled`, leaving the
    database untouched.  Cancelling twice is a no-op.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self):
        self._event.set()

    @property
    def cancelled(self):
        return self._event.is_set()

    def __repr__(self):
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"


class FaultPlan:
    """Deterministic fault injector for the atomicity property tests.

    Raises :class:`InjectedFault` the ``after``-th time a boundary of
    the planned ``boundary`` kind (``"round"``, ``"batch"``,
    ``"install"``, or ``"any"``) is crossed, then disarms.  A plan whose
    ``after`` exceeds the number of boundaries the evaluation crosses
    simply never fires -- property tests rely on that to also exercise
    the fault-free path.
    """

    __slots__ = ("boundary", "after", "fired", "counts")

    def __init__(self, boundary="any", after=1):
        if boundary != "any" and boundary not in _FAULT_KINDS:
            raise ValueError(f"unknown fault boundary: {boundary!r}")
        if after < 1:
            raise ValueError("fault plan 'after' must be >= 1")
        self.boundary = boundary
        self.after = after
        self.fired = False
        self.counts = {kind: 0 for kind in _FAULT_KINDS}

    def tick(self, kind):
        self.counts[kind] += 1
        if self.fired:
            return
        if self.boundary != "any" and self.boundary != kind:
            return
        hits = (
            sum(self.counts.values())
            if self.boundary == "any"
            else self.counts[kind]
        )
        if hits >= self.after:
            self.fired = True
            raise InjectedFault(
                f"injected fault at {kind} boundary "
                f"(plan {self.boundary}:{self.after})",
                boundary=kind,
                count=self.counts[kind],
            )

    @classmethod
    def randomized(cls, seed, max_after=8):
        """A reproducible random plan: seed fixes boundary kind and count."""
        rng = random.Random(seed)
        return cls(rng.choice(_FAULT_KINDS), rng.randint(1, max_after))

    @classmethod
    def from_env(cls, environ=None):
        """Parse ``REPRO_FAULT_INJECT`` -- ``round:3``, ``install:1``,
        ``any:5``, or ``random:SEED``.  Returns ``None`` when unset."""
        spec = (environ if environ is not None else os.environ).get(FAULT_ENV_VAR)
        if not spec:
            return None
        kind, _, arg = spec.partition(":")
        if kind == "random":
            return cls.randomized(int(arg or 0))
        return cls(kind or "any", int(arg or 1))

    def __repr__(self):
        state = "fired" if self.fired else "armed"
        return f"FaultPlan({self.boundary}:{self.after}, {state})"


@dataclass(frozen=True)
class EvaluationBudget:
    """Immutable resource limits for one evaluation.

    ``None`` fields are unlimited.  ``max_memory_bytes`` is compared
    against ``Database.estimated_bytes()`` -- a coarse columnar-storage
    estimate, checked only at round boundaries.  Call :meth:`start` to
    obtain the stateful :class:`BudgetMeter` that evaluation threads
    through its loops; a meter may be shared across a degradation retry
    so the wall-clock deadline stays absolute while per-attempt fact and
    tuple counters restart with the attempt's fresh statistics.
    """

    timeout: Optional[float] = None
    max_facts: Optional[int] = None
    max_tuples_scanned: Optional[int] = None
    max_memory_bytes: Optional[int] = None
    token: Optional[CancellationToken] = None
    fault_plan: Optional[FaultPlan] = None

    def is_bounded(self):
        return any(
            value is not None
            for value in (
                self.timeout,
                self.max_facts,
                self.max_tuples_scanned,
                self.max_memory_bytes,
                self.token,
                self.fault_plan,
            )
        )

    @classmethod
    def from_options(
        cls,
        budget=None,
        timeout=None,
        max_facts=None,
        cancellation=None,
    ):
        """Resolve one budget from per-call convenience options.

        ``budget=`` wins and is mutually exclusive with the scalar
        options; otherwise a budget is assembled from ``timeout`` /
        ``max_facts`` / ``cancellation`` plus any ``REPRO_FAULT_INJECT``
        fault plan in the environment.  Returns ``None`` when every
        input is unset -- the caller runs ungoverned.  This is the one
        assembly point shared by ``Session.query`` and the incremental
        maintenance passes, so fault injection reaches both.
        """
        if budget is not None:
            if (
                timeout is not None
                or max_facts is not None
                or cancellation is not None
            ):
                raise ValueError(
                    "pass budget=... or the individual timeout/max_facts/"
                    "cancellation options, not both"
                )
            return budget
        fault_plan = FaultPlan.from_env()
        if (
            timeout is None
            and max_facts is None
            and cancellation is None
            and fault_plan is None
        ):
            return None
        return cls(
            timeout=timeout,
            max_facts=max_facts,
            token=cancellation,
            fault_plan=fault_plan,
        )

    def start(self):
        return BudgetMeter(self)


class BudgetMeter:
    """Runtime state for one governed evaluation (plus retries).

    The checks are ordered cheapest-first and each is skipped when the
    corresponding limit is unset, so an all-``None`` budget costs a few
    attribute loads and comparisons per round/batch -- the ≤3% overhead
    gate in ``bench_guardrails.py`` holds the line.
    """

    __slots__ = (
        "budget",
        "started",
        "deadline",
        "facts",
        "tuples",
        "stratum",
        "round",
    )

    def __init__(self, budget):
        self.budget = budget
        self.started = time.monotonic()
        self.deadline = (
            None if budget.timeout is None else self.started + budget.timeout
        )
        self.facts = 0
        self.tuples = 0
        self.stratum = None
        self.round = None

    # -- boundary checks -------------------------------------------------

    def check_round(self, facts, tuples=0, stratum=None, round_=None, database=None):
        """Full check at a fixpoint-round boundary (may estimate memory)."""
        self.facts = facts
        self.tuples = tuples
        self.stratum = stratum
        self.round = round_
        budget = self.budget
        token = budget.token
        if token is not None and token.cancelled:
            raise EvaluationCancelled(facts, stratum, round_, self.elapsed())
        if budget.max_facts is not None and facts > budget.max_facts:
            self._trip("max_facts")
        if (
            budget.max_tuples_scanned is not None
            and tuples > budget.max_tuples_scanned
        ):
            self._trip("max_tuples_scanned")
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._trip("wall_clock")
        if (
            budget.max_memory_bytes is not None
            and database is not None
            and database.estimated_bytes() > budget.max_memory_bytes
        ):
            self._trip("max_memory")
        if budget.fault_plan is not None:
            budget.fault_plan.tick("round")

    def check_batch(self, facts, tuples=0):
        """Cheap check at a batch/rule boundary (no memory estimate).

        Progress markers (stratum/round) persist from the enclosing
        round check so a mid-round trip still reports its position.
        """
        self.facts = facts
        self.tuples = tuples
        budget = self.budget
        token = budget.token
        if token is not None and token.cancelled:
            raise EvaluationCancelled(
                facts, self.stratum, self.round, self.elapsed()
            )
        if budget.max_facts is not None and facts > budget.max_facts:
            self._trip("max_facts")
        if (
            budget.max_tuples_scanned is not None
            and tuples > budget.max_tuples_scanned
        ):
            self._trip("max_tuples_scanned")
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._trip("wall_clock")
        if budget.fault_plan is not None:
            budget.fault_plan.tick("batch")

    def tick_install(self):
        """Fault boundary crossed just before results are installed
        (memo write / answer publication).  Only the fault plan fires
        here; resource limits no longer apply once evaluation is done."""
        plan = self.budget.fault_plan
        if plan is not None:
            plan.tick("install")

    # -- accounting ------------------------------------------------------

    def elapsed(self):
        return time.monotonic() - self.started

    def remaining_time(self):
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def spent(self):
        """Structured snapshot for ``QueryResult.budget_spent``."""
        return {
            "elapsed": self.elapsed(),
            "facts": self.facts,
            "tuples_scanned": self.tuples,
            "stratum": self.stratum,
            "round": self.round,
        }

    def _trip(self, limit):
        raise BudgetExceeded(
            limit,
            facts=self.facts,
            stratum=self.stratum,
            round_=self.round,
            elapsed=self.elapsed(),
        )
