"""Provenance records and the common result type of the rewriters.

Every rule a rewriting algorithm emits carries a :class:`RuleProvenance`
describing where it came from: which adorned rule, which body occurrence,
which sip arc, and the *origin* of every body literal.  The semijoin
optimization (Section 8) and the appendix-comparison benchmarks are
written against this metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from ..datalog.ast import Literal, Program, Query, Rule
from ..datalog.database import Database
from ..datalog.engine import EvaluationResult
from ..datalog.terms import Term

__all__ = [
    "BodyOrigin",
    "RuleProvenance",
    "RewrittenRule",
    "RewrittenProgram",
]


@dataclass(frozen=True)
class BodyOrigin:
    """Origin of one body literal of a rewritten rule.

    ``kind`` is one of:

    * ``"guard"``        -- the magic/counting literal of the rule head (p_h);
    * ``"magic"``        -- a magic/counting literal guarding body position
                            ``position``;
    * ``"literal"``      -- the (possibly indexed) copy of body position
                            ``position`` of the source adorned rule;
    * ``"supplementary"``-- a supplementary predicate covering body
                            positions ``< position``;
    * ``"label"``        -- a label literal (multi-arc targets).
    """

    kind: str
    position: Optional[int] = None


@dataclass(frozen=True)
class RuleProvenance:
    """Where a rewritten rule came from.

    ``role`` is one of ``"magic"``, ``"modified"``, ``"supplementary"``,
    ``"counting"``, ``"supplementary_counting"``, ``"label"``.
    ``source_rule`` is the index of the adorned rule (0-based) in the
    adorned program; ``target_position`` the body occurrence the rule
    feeds (for magic/counting/label/supplementary rules).
    ``body_origins`` parallels the rewritten rule's body literals.
    """

    role: str
    source_rule: Optional[int] = None
    target_position: Optional[int] = None
    body_origins: Tuple[BodyOrigin, ...] = ()


@dataclass(frozen=True)
class RewrittenRule:
    """A rewritten rule together with its provenance."""

    rule: Rule
    provenance: RuleProvenance

    def with_rule(self, rule: Rule, body_origins=None) -> "RewrittenRule":
        prov = self.provenance
        if body_origins is not None:
            prov = replace(prov, body_origins=tuple(body_origins))
        return RewrittenRule(rule, prov)


@dataclass
class RewrittenProgram:
    """The output of a rewriting algorithm, ready for bottom-up evaluation.

    ``seed_facts`` are the query-specific seeds (the paper keeps them out
    of ``P^mg`` so the rewrite can be reused across queries of the same
    form); :meth:`seeded_database` merges them into a database copy.

    Answer extraction: the rewritten program computes the query's
    predicate under ``answer_pred_key``; rows are filtered by
    ``answer_selection`` (position -> required constant) and projected on
    ``answer_projection`` (positions listed in the order of the query's
    free variables).  The counting rewrites prefix index fields and the
    semijoin optimization may drop bound argument positions; both adjust
    this metadata rather than burden the caller.
    """

    method: str
    rules: List[RewrittenRule]
    seed_facts: Tuple[Literal, ...]
    query: Query
    answer_pred_key: str
    answer_selection: Tuple[Tuple[int, Term], ...]
    answer_projection: Tuple[int, ...]
    adorned: object = None  # AdornedProgram; typed loosely to avoid cycles
    index_arity: int = 0
    #: generated predicate name -> ("indexed" | "counting" | "sup",
    #: original predicate, adornment); used by the semijoin optimization
    registry: Dict[str, Tuple[str, str, str]] = field(default_factory=dict)

    @property
    def program(self) -> Program:
        return Program(tuple(rr.rule for rr in self.rules))

    def seeded_database(self, database: Database) -> Database:
        """A copy of ``database`` with the seed facts added.

        Facts asserted under an *original derived* predicate name
        (``q(b).`` alongside rules for ``q``) participate in bottom-up
        evaluation of the original program, so they are mirrored into
        every same-arity adorned version of that predicate here --
        otherwise the rewritten program would silently ignore them,
        which under negation flips answers instead of merely shrinking
        them.  Mirrored facts are true facts of the original relation,
        so restricted (magic-guarded) relations only gain true rows and
        all-free relations remain exactly the original extension.
        Index-carrying counting predicates have different names or
        arities and are never mirrored.
        """
        seeded = database.copy()
        for seed in self.seed_facts:
            seeded.add_fact(seed)
        mirror: Dict[str, Set[Tuple[str, int]]] = {}
        for rewritten_rule in self.rules:
            head = rewritten_rule.rule.head
            if head.adornment is None or head.pred_key == head.pred:
                continue
            mirror.setdefault(head.pred, set()).add(
                (head.pred_key, head.arity)
            )
        for pred, targets in mirror.items():
            rows = database.tuples(pred)
            if not rows:
                continue
            arity = len(next(iter(rows)))
            for key, head_arity in sorted(targets):
                if head_arity == arity:
                    seeded.add_tuples(key, rows)
        return seeded

    def extract_answers(self, result: EvaluationResult) -> Set[Tuple[Term, ...]]:
        """Answers for the query from an evaluation of the program."""
        answers: Set[Tuple[Term, ...]] = set()
        for row in result.database.tuples(self.answer_pred_key):
            if all(row[i] == value for i, value in self.answer_selection):
                answers.add(tuple(row[i] for i in self.answer_projection))
        return answers

    # ------------------------------------------------------------------
    # fact accounting (Sections 9 and 11 measure facts, not time)
    # ------------------------------------------------------------------
    def fact_breakdown(self, result: EvaluationResult) -> Dict[str, int]:
        """Derived-fact counts split into answer-bearing vs auxiliary.

        Returns a dict with keys ``"adorned"`` (facts of the rewritten
        derived predicates carrying real tuples), ``"magic"`` (magic /
        counting / supplementary / label facts) and ``"total"``.
        """
        from .naming import is_generated_name  # local import, no cycle

        adorned = 0
        auxiliary = 0
        derived_keys = {rr.rule.head.pred_key for rr in self.rules}
        for key in derived_keys:
            count = len(result.database.tuples(key))
            pred = key.split("^")[0]
            if is_generated_name(pred) and not pred.endswith("_ix"):
                auxiliary += count
            else:
                adorned += count
        for seed in self.seed_facts:
            # seeds are auxiliary facts too, but they were inserted, not
            # derived; count them for the totals the paper discusses
            auxiliary += 1 if seed.pred_key not in derived_keys else 0
        return {
            "adorned": adorned,
            "magic": auxiliary,
            "total": adorned + auxiliary,
        }

    def __str__(self):
        lines = [f"% method: {self.method}"]
        for seed in self.seed_facts:
            lines.append(f"{seed}.  % seed")
        for rewritten in self.rules:
            lines.append(str(rewritten.rule))
        return "\n".join(lines)
