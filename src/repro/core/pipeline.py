"""One-call public API: rewrite a program for a query and answer it.

The typical use is two lines::

    from repro import parse_program, parse_query, pipeline

    source = '''
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    '''
    program, facts, _ = parse_program(source)
    ...
    answer = pipeline.answer_query(program, db, parse_query("anc(john, Y)?"))

``rewrite`` builds the adorned program (Section 3) and dispatches to one
of the four rewriting algorithms (Sections 4-7), optionally followed by
the semijoin optimization (Section 8).  ``answer_query`` additionally
evaluates the result bottom-up and extracts the answer; it also accepts
the baseline strategies (plain naive/semi-naive bottom-up of the original
program and top-down QSQ), so the benchmarks compare everything through
one interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..datalog.ast import Program, Query
from ..datalog.database import Database
from ..datalog.engine import (
    EvaluationResult,
    EvaluationStats,
    answer_tuples,
    evaluate,
)
from ..datalog.errors import RewriteError
from ..datalog.terms import Constant, Term
from ..datalog.topdown import QSQResult
from .adornment import AdornedProgram, adorn_program
from .counting import counting_rewrite
from .magic import magic_rewrite
from .provenance import RewrittenProgram
from .semijoin import semijoin_optimize
from .sips import SipBuilder, build_full_sip
from .stratify import stratify_or_raise
from .supplementary import supplementary_magic_rewrite
from .supplementary_counting import supplementary_counting_rewrite

__all__ = [
    "REWRITE_METHODS",
    "rewrite",
    "QueryAnswer",
    "answer_query",
    "bottom_up_answer",
    "unwrap_values",
]

#: The four rewriting algorithms of Sections 4-7.
REWRITE_METHODS = (
    "magic",
    "supplementary_magic",
    "counting",
    "supplementary_counting",
)


def rewrite(
    program: Program,
    query: Query,
    method: str = "supplementary_magic",
    sip_builder: SipBuilder = build_full_sip,
    mode: str = "numeric",
    optimize: bool = True,
    semijoin: bool = False,
    adorned: Optional[AdornedProgram] = None,
) -> RewrittenProgram:
    """Rewrite ``program`` for ``query`` with the chosen method.

    ``mode`` selects the counting index encoding (``"numeric"`` or
    ``"structural"``); it is ignored by the magic methods.  ``semijoin``
    applies the Section 8 optimization (counting methods only).

    Stratified programs are accepted by the magic methods via the
    conservative extension (negated literals carried unchanged, their
    definitions computed completely); the rewrite output is then
    re-stratified before it is handed to the engines -- the
    conservative construction preserves stratifiability, and a failure
    here names the broken invariant instead of blaming the input.  The
    counting methods remain positive-only.
    """
    if adorned is None:
        adorned = adorn_program(program, query, sip_builder)
    if method == "magic":
        result = magic_rewrite(adorned, optimize=optimize)
    elif method == "supplementary_magic":
        result = supplementary_magic_rewrite(adorned, optimize=optimize)
    elif method == "counting":
        result = counting_rewrite(adorned, mode=mode, optimize=optimize)
    elif method == "supplementary_counting":
        result = supplementary_counting_rewrite(
            adorned, mode=mode, optimize=optimize
        )
    else:
        raise ValueError(
            f"unknown rewrite method {method!r}; expected one of "
            f"{REWRITE_METHODS}"
        )
    if semijoin:
        if method not in ("counting", "supplementary_counting"):
            raise RewriteError(
                "the semijoin optimization relies on counting indices "
                "(Section 8); it does not apply to the magic-sets methods"
            )
        result = semijoin_optimize(result)
    if result.program.has_negation():
        # the conservative rewrite must never break stratifiability;
        # evaluating an unstratifiable output would be unsound, so this
        # is checked before any engine sees the program
        stratify_or_raise(
            result.program,
            context=f"internal invariant violated: the {method} rewrite "
            f"of a stratified program for query {query} produced an "
            "unstratifiable program (the conservative negation "
            "treatment should make this impossible)",
        )
    return result


@dataclass
class QueryAnswer:
    """An answered query: bindings for the query's free variables."""

    answers: Set[Tuple[Term, ...]]
    strategy: str
    stats: Optional[EvaluationStats] = None
    rewritten: Optional[RewrittenProgram] = None
    evaluation: Optional[EvaluationResult] = None
    #: the raw Q/F sets when the strategy was top-down QSQ
    qsq: Optional[QSQResult] = None

    def values(self) -> Set[Tuple[object, ...]]:
        """Answers with plain Python values in place of Constants."""
        return unwrap_values(self.answers)

    def __len__(self):
        return len(self.answers)


def unwrap_values(rows: Set[Tuple[Term, ...]]) -> Set[Tuple[object, ...]]:
    out = set()
    for row in rows:
        out.add(
            tuple(t.value if isinstance(t, Constant) else t for t in row)
        )
    return out


def answer_query(
    program: Program,
    database: Database,
    query: Query,
    method: str = "supplementary_magic",
    engine: str = "seminaive",
    sip_builder: SipBuilder = build_full_sip,
    mode: str = "numeric",
    optimize: bool = True,
    semijoin: bool = False,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_planner: bool = True,
    plan_cache=None,
    workers: int = 1,
    timeout: Optional[float] = None,
    budget=None,
    on_budget_exceeded: Optional[str] = None,
):
    """Answer a query end to end (legacy one-shot shim).

    ``method`` is a rewrite method, one of the baselines --
    ``"naive"`` / ``"seminaive"`` (bottom-up on the original program,
    then select/project: the Section 1 strawman) or ``"qsq"`` (top-down
    on the adorned program) -- or ``"auto"`` to let the dispatcher
    choose.

    Programs with negated body literals (stratified negation) are
    evaluable by the bottom-up baselines (stratum by stratum) and by
    the magic rewrite methods (conservative extension; ``"auto"``
    resolves to supplementary magic for them too); the counting
    rewrites and ``qsq`` raise
    :class:`~repro.datalog.errors.UnsupportedProgramError`.

    ``use_planner`` selects the execution path for both bottom-up and
    QSQ strategies: compiled plans (default) or the legacy interpretive
    evaluators -- the two are answer-equivalent, so A/B comparisons only
    move the work counters.

    This is now a thin shim over :class:`repro.session.Session`, which
    is the surface shaped for repeated traffic (stateful database,
    cross-evaluation answer memo, cached rewrites); a one-shot call
    constructs an ephemeral session, so it pays the rewrite and the
    evaluation every time but still shares the process-wide plan cache.

    Returns a :class:`repro.session.QueryResult` -- the same answer
    type every Session path produces (memo hits, materialized views,
    cold evaluations), so callers never branch on provenance.  The
    legacy ``QueryAnswer`` attribute names (``answers``, ``strategy``,
    ``rewritten``, ``evaluation``, ``qsq``) remain available as
    properties on it.
    """
    from ..session import Session

    session = Session(
        program=program,
        database=database,
        use_planner=use_planner,
        sip_builder=sip_builder,
        plan_cache=plan_cache,
    )
    return session.query(
        query,
        method=method,
        engine=engine,
        mode=mode,
        optimize=optimize,
        semijoin=semijoin,
        max_iterations=max_iterations,
        max_facts=max_facts,
        workers=workers,
        timeout=timeout,
        budget=budget,
        on_budget_exceeded=on_budget_exceeded,
    )


def bottom_up_answer(
    program: Program,
    database: Database,
    query: Query,
    engine: str = "seminaive",
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_planner: bool = True,
    plan_cache=None,
    meter=None,
    workers: int = 1,
) -> QueryAnswer:
    """The Section 1 strawman: evaluate everything, then select.

    ``meter`` is an optional :class:`repro.core.limits.BudgetMeter`
    checked at the engine's round/batch boundaries.  ``workers`` > 1
    evaluates on the sharded worker pool
    (:mod:`repro.datalog.parallel`) with identical answers and
    counters.
    """
    result = evaluate(
        program,
        database,
        method=engine,
        max_iterations=max_iterations,
        max_facts=max_facts,
        use_planner=use_planner,
        plan_cache=plan_cache,
        meter=meter,
        workers=workers,
    )
    return QueryAnswer(
        answers=answer_tuples(result, query.literal),
        strategy=engine,
        stats=result.stats,
        evaluation=result,
    )
