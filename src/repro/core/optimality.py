"""Sip-optimality of generalized magic sets -- Section 9.

A *sip strategy* (Definition in Section 9) must (1) compute all answers
to every query it generates and (2) generate a subquery for every body
occurrence reachable through the sips.  The least such pair of sets
``(Q, F)`` is computed by the QSQ evaluator
(:func:`repro.datalog.topdown.qsq_evaluate`).

Theorem 9.1 states that bottom-up evaluation of the magic rewrite is
*sip-optimal*: every fact it derives is either a query of ``Q`` (a magic
fact) or an answer of ``F`` (an adorned fact).  :func:`check_optimality`
verifies the correspondence exactly on a concrete database:

* for each adorned predicate ``p^a`` with bound arguments, the magic
  relation equals the set of bound-argument vectors in ``Q``;
* each adorned relation equals the answer set of ``F``.

Lemma 9.3 (fuller sips compute no more facts) is checked by
:func:`compare_sips`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..datalog.database import Database
from ..datalog.engine import evaluate
from ..datalog.topdown import QSQResult, qsq_evaluate
from .adornment import AdornedProgram
from .naming import magic_name
from .provenance import RewrittenProgram

__all__ = ["OptimalityReport", "check_optimality", "compare_sips", "SipComparison"]


@dataclass
class OptimalityReport:
    """Outcome of the Theorem 9.1 correspondence check."""

    sip_optimal: bool
    #: per adorned predicate: (magic facts, queries in Q)
    query_counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: per adorned predicate: (adorned facts, answers in F)
    fact_counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    mismatches: Tuple[str, ...] = ()

    def total_magic_facts(self) -> int:
        return sum(m for m, _ in self.query_counts.values())

    def total_adorned_facts(self) -> int:
        return sum(m for m, _ in self.fact_counts.values())


def check_optimality(
    rewritten: RewrittenProgram,
    database: Database,
    max_iterations: Optional[int] = None,
    use_planner: bool = True,
) -> OptimalityReport:
    """Check Theorem 9.1 on a concrete database.

    Evaluates both the rewritten program (bottom-up) and the QSQ oracle
    (the least sip-strategy sets ``Q`` and ``F``) and compares relation
    by relation.  Meaningful for the ``magic`` and
    ``supplementary_magic`` methods with full sips.  ``use_planner``
    selects compiled or legacy execution on *both* sides, so the
    theorem can be checked on either substrate.
    """
    adorned: AdornedProgram = rewritten.adorned
    seeded = rewritten.seeded_database(database)
    bottom_up = evaluate(
        rewritten.program, seeded, max_iterations=max_iterations,
        use_planner=use_planner,
    )
    oracle: QSQResult = qsq_evaluate(
        adorned.program,
        database,
        adorned.query_literal,
        max_iterations=max_iterations,
        use_planner=use_planner,
    )

    mismatches = []
    query_counts: Dict[str, Tuple[int, int]] = {}
    fact_counts: Dict[str, Tuple[int, int]] = {}
    for pred_key in sorted(adorned.adorned_predicates()):
        pred, _, adornment = pred_key.partition("^")
        answers = oracle.answers.get(pred_key, set())
        derived = bottom_up.database.tuples(pred_key)
        fact_counts[pred_key] = (len(derived), len(answers))
        if derived != answers:
            mismatches.append(
                f"{pred_key}: bottom-up derived {len(derived)} facts, "
                f"sip strategy computes {len(answers)}"
            )
        if "b" not in adornment:
            continue
        magic_key = magic_name(pred, adornment)
        magic_facts = bottom_up.database.tuples(magic_key)
        queries = oracle.queries.get(pred_key, set())
        query_counts[pred_key] = (len(magic_facts), len(queries))
        if magic_facts != queries:
            mismatches.append(
                f"{magic_key}: {len(magic_facts)} magic facts vs "
                f"{len(queries)} sip-strategy queries"
            )
    return OptimalityReport(
        sip_optimal=not mismatches,
        query_counts=query_counts,
        fact_counts=fact_counts,
        mismatches=tuple(mismatches),
    )


@dataclass
class SipComparison:
    """Outcome of the Lemma 9.3 containment check between two sips."""

    fuller_facts: int
    partial_facts: int
    contained: bool
    per_predicate: Dict[str, Tuple[int, int]] = field(default_factory=dict)


def compare_sips(
    fuller: RewrittenProgram,
    partial: RewrittenProgram,
    database: Database,
    max_iterations: Optional[int] = None,
    use_planner: bool = True,
) -> SipComparison:
    """Check Lemma 9.3: the fuller sip's facts are contained in the
    partial sip's facts, predicate by predicate.

    Both rewrites must stem from the same program/query (so the adorned
    predicate keys align -- they do for the paper's examples, where full
    and partial sips induce the same adornments).
    """
    results = {}
    for name, rewritten in (("fuller", fuller), ("partial", partial)):
        seeded = rewritten.seeded_database(database)
        results[name] = evaluate(
            rewritten.program, seeded, max_iterations=max_iterations,
            use_planner=use_planner,
        )

    contained = True
    per_predicate: Dict[str, Tuple[int, int]] = {}
    keys = {
        rr.rule.head.pred_key for rr in fuller.rules
    } | {rr.rule.head.pred_key for rr in partial.rules}
    fuller_total = 0
    partial_total = 0
    for key in sorted(keys):
        fuller_facts = results["fuller"].database.tuples(key)
        partial_facts = results["partial"].database.tuples(key)
        fuller_total += len(fuller_facts)
        partial_total += len(partial_facts)
        per_predicate[key] = (len(fuller_facts), len(partial_facts))
        if not fuller_facts <= partial_facts:
            contained = False
    return SipComparison(
        fuller_facts=fuller_total,
        partial_facts=partial_total,
        contained=contained,
        per_predicate=per_predicate,
    )
