"""Generalized counting (GC) -- Section 6.

Counting refines magic sets by recording *how* a binding was reached:
each counting fact carries indices encoding the derivation path (which
rules and which body occurrences were expanded).  The indices buy no
extra selectivity by themselves (projecting them out recovers exactly
the magic-sets facts) but enable the powerful semijoin optimization of
Section 8 (``repro.core.semijoin``).

Two index encodings are provided:

* ``mode="numeric"`` -- the paper's encoding: three fields ``(I, K, H)``;
  a child of ``(I, K, H)`` through rule ``i``, occurrence ``j`` is
  ``(I+1, K*m+i, H*t+j)`` where ``m`` is the number of adorned rules and
  ``t`` the maximal body length.  The arithmetic lives in
  :class:`~repro.datalog.terms.LinExpr` terms, which the engine evaluates
  when ground and inverts when matching -- so plain bottom-up evaluation
  runs these rules unchanged.
* ``mode="structural"`` -- one field holding the ground term
  ``ix(parent, i, j)``.  Both encodings are injective on derivation
  paths, so selectivity and the (non-)termination behaviour of
  Section 10 are identical; the structural mode exists because it
  stays within the pure term language.

Safety warning (Theorems 10.2/10.3): unlike magic sets, counting may
diverge -- on cyclic data, and statically whenever the query's reachable
argument graph is cyclic (e.g. the nonlinear ancestor program,
Appendix A.5.2).  Use ``repro.core.safety.counting_terminates`` before
running, or evaluation budgets.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..datalog.ast import Literal, Rule
from ..datalog.errors import RewriteError, UnsupportedProgramError
from ..datalog.terms import Constant, LinExpr, Struct, Term, Variable
from .adornment import AdornedProgram, AdornedRule
from .magic import prune_dominated_magic
from .naming import counting_name, indexed_name
from .provenance import (
    BodyOrigin,
    RewrittenProgram,
    RewrittenRule,
    RuleProvenance,
)

__all__ = [
    "counting_rewrite",
    "IndexScheme",
    "NumericIndexScheme",
    "StructuralIndexScheme",
]

#: Functor of structural index terms.
STRUCT_INDEX_FUNCTOR = "ix"


def _reject_negation(adorned: AdornedProgram, method: str) -> None:
    """The counting rewrites stay positive-only.

    Counting indices encode derivation paths; an anti-join against an
    index-carrying relation would compare paths, not tuples, so the
    conservative carry-the-literal treatment the magic rewrites use
    does not transfer.  Stratified programs get query-directed
    evaluation through the magic family instead.
    """
    if adorned.original.has_negation():
        offender = next(
            lit
            for rule in adorned.original.rules
            for lit in rule.body
            if lit.negated
        )
        raise UnsupportedProgramError(
            f"program contains the negated literal {offender}: the "
            f"{method} rewrite is defined for positive programs only; "
            "use --method magic/supplementary_magic (or --method auto, "
            "which resolves to the magic family) for stratified programs"
        )


class IndexScheme:
    """Strategy object producing the index argument vectors of Section 6."""

    arity: int

    def __init__(self, rule_count: int, max_body: int, rule_vars) -> None:
        raise NotImplementedError

    def head_args(self) -> Tuple[Term, ...]:
        """Index arguments of the rule head's own invocation."""
        raise NotImplementedError

    def child_args(self, rule_number: int, occurrence: int) -> Tuple[Term, ...]:
        """Index arguments for body occurrence ``occurrence`` (1-based)
        expanded through rule ``rule_number`` (1-based)."""
        raise NotImplementedError

    @staticmethod
    def seed_args() -> Tuple[Term, ...]:
        raise NotImplementedError


class NumericIndexScheme(IndexScheme):
    """The paper's ``(I, K, H)`` encoding with linear index expressions."""

    arity = 3

    def __init__(self, rule_count: int, max_body: int, rule_vars):
        self.rule_count = max(rule_count, 1)
        self.max_body = max(max_body, 1)
        taken = {v.name for v in rule_vars}
        self.level = _fresh_var("I", taken)
        self.rule_code = _fresh_var("K", taken)
        self.occurrence_code = _fresh_var("H", taken)

    def head_args(self) -> Tuple[Term, ...]:
        return (self.level, self.rule_code, self.occurrence_code)

    def child_args(self, rule_number: int, occurrence: int) -> Tuple[Term, ...]:
        return (
            LinExpr(self.level, 1, 1),
            LinExpr(self.rule_code, self.rule_count, rule_number),
            LinExpr(self.occurrence_code, self.max_body, occurrence),
        )

    @staticmethod
    def seed_args() -> Tuple[Term, ...]:
        return (Constant(0), Constant(0), Constant(0))


class StructuralIndexScheme(IndexScheme):
    """One ground-term index ``ix(parent, rule, occurrence)``."""

    arity = 1

    def __init__(self, rule_count: int, max_body: int, rule_vars):
        taken = {v.name for v in rule_vars}
        self.index = _fresh_var("IX", taken)

    def head_args(self) -> Tuple[Term, ...]:
        return (self.index,)

    def child_args(self, rule_number: int, occurrence: int) -> Tuple[Term, ...]:
        return (
            Struct(
                STRUCT_INDEX_FUNCTOR,
                (self.index, Constant(rule_number), Constant(occurrence)),
            ),
        )

    @staticmethod
    def seed_args() -> Tuple[Term, ...]:
        return (Constant(0),)


def _fresh_var(base: str, taken: Set[str]) -> Variable:
    name = base
    while name in taken:
        name += "_"
    return Variable(name)


_SCHEMES = {
    "numeric": NumericIndexScheme,
    "structural": StructuralIndexScheme,
}


def counting_rewrite(
    adorned: AdornedProgram,
    mode: str = "numeric",
    optimize: bool = True,
) -> RewrittenProgram:
    """Rewrite an adorned program by the generalized counting method."""
    _reject_negation(adorned, "counting")
    if mode not in _SCHEMES:
        raise ValueError(
            f"unknown index mode {mode!r}; expected one of {sorted(_SCHEMES)}"
        )
    scheme_cls = _SCHEMES[mode]
    rule_count = len(adorned.rules)
    max_body = adorned.max_body_length()

    registry: Dict[str, Tuple[str, str, str]] = {}
    rewritten: List[RewrittenRule] = []
    for rule_index, adorned_rule in enumerate(adorned.rules):
        scheme = scheme_cls(
            rule_count, max_body, adorned_rule.rule.variables()
        )
        rewritten.extend(
            _counting_rules_for(
                adorned_rule, rule_index, scheme, registry, optimize
            )
        )
        rewritten.append(
            _modified_rule_for(
                adorned_rule, rule_index, scheme, registry, optimize
            )
        )
    if optimize:
        rewritten = [prune_dominated_magic(rr, adorned) for rr in rewritten]
    for rewritten_rule in rewritten:
        _check_range_restricted(rewritten_rule.rule)

    query_literal = adorned.query_literal
    index_arity = scheme_cls.arity
    if "b" in query_literal.adornment:
        seed = Literal(
            counting_name(query_literal.pred, query_literal.adornment),
            scheme_cls.seed_args() + query_literal.bound_args(),
        )
        seeds: Tuple[Literal, ...] = (seed,)
        answer_key = indexed_name(query_literal.pred, query_literal.adornment)
        offset = index_arity
    else:
        seeds = ()
        answer_key = query_literal.pred_key
        offset = 0

    selection = tuple(
        (offset + i, arg)
        for i, arg in enumerate(query_literal.args)
        if arg.is_ground()
    )
    projection = tuple(
        offset + i
        for i, arg in enumerate(query_literal.args)
        if not arg.is_ground()
    )
    return RewrittenProgram(
        method="counting",
        rules=rewritten,
        seed_facts=seeds,
        query=adorned.query,
        answer_pred_key=answer_key,
        answer_selection=selection,
        answer_projection=projection,
        adorned=adorned,
        index_arity=index_arity,
        registry=registry,
    )


def _counting_literal(
    literal: Literal, index_args: Tuple[Term, ...], registry: Dict
) -> Literal:
    name = counting_name(literal.pred, literal.adornment)
    registry[name] = ("counting", literal.pred, literal.adornment)
    return Literal(name, index_args + literal.bound_args())


def _indexed_literal(
    literal: Literal, index_args: Tuple[Term, ...], registry: Dict
) -> Literal:
    name = indexed_name(literal.pred, literal.adornment)
    registry[name] = ("indexed", literal.pred, literal.adornment)
    return Literal(name, index_args + literal.args)


def _is_bound_adorned(literal: Literal) -> bool:
    return literal.adornment is not None and "b" in literal.adornment


def _counting_rules_for(
    adorned_rule: AdornedRule,
    rule_index: int,
    scheme: IndexScheme,
    registry: Dict,
    optimize: bool,
) -> List[RewrittenRule]:
    """Counting rules for every arc-fed derived body occurrence."""
    out: List[RewrittenRule] = []
    sip = adorned_rule.sip
    rule_number = rule_index + 1
    for position, literal in enumerate(adorned_rule.body):
        if not _is_bound_adorned(literal):
            continue
        arcs = sip.arcs_into(position)
        if not arcs:
            continue
        if len(arcs) > 1:
            raise RewriteError(
                "the counting transformation supports a single arc per "
                f"body occurrence; position {position} of rule "
                f"{adorned_rule.rule} has {len(arcs)} (use magic sets, or "
                "merge the arcs)"
            )
        arc = arcs[0]
        head = _counting_literal(
            literal, scheme.child_args(rule_number, position + 1), registry
        )
        body: List[Literal] = []
        origins: List[BodyOrigin] = []
        if arc.has_head():
            body.append(
                _counting_literal(
                    adorned_rule.head, scheme.head_args(), registry
                )
            )
            origins.append(BodyOrigin("guard"))
        for tail_position in arc.tail_positions():
            tail_literal = adorned_rule.body[tail_position]
            if _is_bound_adorned(tail_literal):
                child = scheme.child_args(rule_number, tail_position + 1)
                body.append(
                    _counting_literal(tail_literal, child, registry)
                )
                origins.append(BodyOrigin("magic", tail_position))
                body.append(
                    _indexed_literal(tail_literal, child, registry)
                )
                origins.append(BodyOrigin("literal", tail_position))
            else:
                body.append(tail_literal)
                origins.append(BodyOrigin("literal", tail_position))
        out.append(
            RewrittenRule(
                Rule(head, tuple(body)),
                RuleProvenance(
                    role="counting",
                    source_rule=rule_index,
                    target_position=position,
                    body_origins=tuple(origins),
                ),
            )
        )
    return out


def _modified_rule_for(
    adorned_rule: AdornedRule,
    rule_index: int,
    scheme: IndexScheme,
    registry: Dict,
    optimize: bool,
) -> RewrittenRule:
    """The indexed modified rule of Section 6.

    Per Lemma 6.2 the per-occurrence counting guards are unnecessary in
    modified rules; with ``optimize=False`` we include them anyway (the
    unoptimized form the paper describes before the lemma).
    """
    head_literal = adorned_rule.head
    rule_number = rule_index + 1
    body: List[Literal] = []
    origins: List[BodyOrigin] = []
    if _is_bound_adorned(head_literal):
        head = _indexed_literal(head_literal, scheme.head_args(), registry)
        body.append(
            _counting_literal(head_literal, scheme.head_args(), registry)
        )
        origins.append(BodyOrigin("guard"))
    else:
        head = head_literal
    for position, literal in enumerate(adorned_rule.body):
        if _is_bound_adorned(literal):
            child = scheme.child_args(rule_number, position + 1)
            if not optimize:
                body.append(_counting_literal(literal, child, registry))
                origins.append(BodyOrigin("magic", position))
            body.append(_indexed_literal(literal, child, registry))
            origins.append(BodyOrigin("literal", position))
        else:
            body.append(literal)
            origins.append(BodyOrigin("literal", position))
    return RewrittenRule(
        Rule(head, tuple(body)),
        RuleProvenance(
            role="modified",
            source_rule=rule_index,
            body_origins=tuple(origins),
        ),
    )


def _check_range_restricted(rule: Rule) -> None:
    """Reject rules whose head index variables cannot be bound.

    Happens for partial sips whose arcs carry no index-bearing literal
    (all-base tails feeding an indexed target).
    """
    body_vars: Set[Variable] = set()
    for literal in rule.body:
        body_vars.update(literal.variables())
    missing = [v for v in rule.head.variables() if v not in body_vars]
    if missing:
        names = ", ".join(v.name for v in missing)
        raise RewriteError(
            f"counting rule {rule} cannot bind index variables {{{names}}}; "
            "the chosen sip passes bindings through a tail with no indexed "
            "or counting literal (see Section 6: such sips cannot be "
            "indexed -- use the magic-sets methods instead)"
        )
