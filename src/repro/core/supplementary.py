"""Generalized supplementary magic sets (GSMS) -- Section 5.

GMS re-evaluates the same joins in every magic rule and again in the
modified rules.  GSMS stores those intermediate joins in *supplementary
magic predicates*: ``supmagicR_J`` holds, for rule ``R``, the join of the
head bindings with body literals ``1 .. J-1``, projected on the variables
still needed.  Magic rules and the modified rule then just project from
the supplementary predicates (this is Sacca & Zaniolo's idea, and the
Alexander method of Rohmer & Lescoeur).

The two optimizations the paper applies to its examples are applied here
too (always -- they never hurt):

* ``supmagicR_1`` (the join of nothing with the head bindings) is not
  materialized; its occurrences are replaced by ``magic_p^a(x^b)``;
* each ``phi_j`` keeps only variables still needed by the head or by
  body literals ``j..n`` (the "discard" optimization).

Rules whose head adornment has no bound argument have no magic seed to
anchor the supplementary chain; for those rules we fall back to plain
GMS magic rules (their body occurrences can still receive arcs from
body-only tails), which is a conservative, documented deviation.

Stratified programs (conservative extension): the adorned body places
every negated literal after the positive part, so the supplementary
chain and the magic rules it feeds are built from *positive prefixes
only*; negated literals are carried into the modified rule unchanged
(adorned all-free, computed completely -- see
:mod:`repro.core.adornment`) and never anchor or extend the chain.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..datalog.ast import Literal, Rule
from ..datalog.terms import Variable
from .adornment import AdornedProgram, AdornedRule
from .magic import magic_literal_for, prune_dominated_magic, _magic_rules_for
from .naming import supplementary_name
from .provenance import (
    BodyOrigin,
    RewrittenProgram,
    RewrittenRule,
    RuleProvenance,
)

__all__ = ["supplementary_magic_rewrite", "needed_variables"]


def needed_variables(
    adorned_rule: AdornedRule, from_position: int
) -> Set[Variable]:
    """Variables needed at/after a body position: head args or later body."""
    needed: Set[Variable] = set(adorned_rule.head.variables())
    for literal in adorned_rule.body[from_position:]:
        needed.update(literal.variables())
    return needed


def _ordered_subset(
    rule: Rule, variables: Set[Variable]
) -> Tuple[Variable, ...]:
    """Variables in first-occurrence (head-then-body) order."""
    return tuple(v for v in rule.variables() if v in variables)


def _last_arc_position(adorned_rule: AdornedRule) -> Optional[int]:
    """Last body position holding a derived adorned literal with arcs."""
    last = None
    for position, literal in enumerate(adorned_rule.body):
        if (
            literal.adornment is not None
            and "b" in literal.adornment
            and adorned_rule.sip.arcs_into(position)
        ):
            last = position
    return last


def supplementary_magic_rewrite(
    adorned: AdornedProgram,
    optimize: bool = True,
) -> RewrittenProgram:
    """Rewrite an adorned program by generalized supplementary magic sets."""
    rewritten: List[RewrittenRule] = []
    for rule_index, adorned_rule in enumerate(adorned.rules):
        rewritten.extend(_rewrite_rule(adorned_rule, rule_index, adorned, optimize))

    query_literal = adorned.query_literal
    seeds: Tuple[Literal, ...]
    if "b" in query_literal.adornment:
        seeds = (magic_literal_for(query_literal),)
    else:
        seeds = ()
    free_positions = tuple(
        i for i, arg in enumerate(query_literal.args) if not arg.is_ground()
    )
    selection = tuple(
        (i, arg)
        for i, arg in enumerate(query_literal.args)
        if arg.is_ground()
    )
    return RewrittenProgram(
        method="supplementary_magic",
        rules=rewritten,
        seed_facts=seeds,
        query=adorned.query,
        answer_pred_key=query_literal.pred_key,
        answer_selection=selection,
        answer_projection=free_positions,
        adorned=adorned,
        index_arity=0,
    )


def _rewrite_rule(
    adorned_rule: AdornedRule,
    rule_index: int,
    adorned: AdornedProgram,
    optimize: bool,
) -> List[RewrittenRule]:
    head = adorned_rule.head
    head_bound = head.adornment is not None and "b" in head.adornment
    if not head_bound:
        # no magic seed to anchor the supplementary chain: GMS fallback
        out = _magic_rules_for(adorned_rule, rule_index)
        if optimize:
            out = [prune_dominated_magic(rr, adorned) for rr in out]
        out.append(
            RewrittenRule(
                Rule(head, adorned_rule.body),
                RuleProvenance(
                    role="modified",
                    source_rule=rule_index,
                    body_origins=tuple(
                        BodyOrigin("literal", i)
                        for i in range(len(adorned_rule.body))
                    ),
                ),
            )
        )
        return out

    out: List[RewrittenRule] = []
    last = _last_arc_position(adorned_rule)
    guard = magic_literal_for(head)

    def sup_literal(position: int) -> Literal:
        """``sup_position``: join of head bindings and body[:position].

        Position 0 is the eliminated ``sup_1`` of the paper: the head's
        magic literal is used directly.
        """
        if position == 0:
            return guard
        available: Set[Variable] = set()
        for argument in head.bound_args():
            available.update(argument.variables())
        for literal in adorned_rule.body[:position]:
            available.update(literal.variables())
        kept = available & needed_variables(adorned_rule, position)
        args = _ordered_subset(adorned_rule.rule, kept)
        return Literal(
            supplementary_name(rule_index + 1, position + 1), args
        )

    # supplementary rules sup_j :- sup_{j-1}, body[j-1]  (j = 1..last)
    if last is not None:
        for position in range(1, last + 1):
            body = (sup_literal(position - 1), adorned_rule.body[position - 1])
            origins = (
                BodyOrigin(
                    "guard" if position - 1 == 0 else "supplementary",
                    position - 1,
                ),
                BodyOrigin("literal", position - 1),
            )
            out.append(
                RewrittenRule(
                    Rule(sup_literal(position), body),
                    RuleProvenance(
                        role="supplementary",
                        source_rule=rule_index,
                        target_position=position,
                        body_origins=origins,
                    ),
                )
            )

    # magic rules: magic_q(theta^b) :- sup_j  for each arc-fed position
    # (negated occurrences never qualify: adorned all-free, no magic)
    for position, literal in enumerate(adorned_rule.body):
        if (
            literal.negated
            or literal.adornment is None
            or "b" not in literal.adornment
            or not adorned_rule.sip.arcs_into(position)
        ):
            continue
        magic_head = magic_literal_for(literal)
        body_literal = sup_literal(position)
        rule = Rule(magic_head, (body_literal,))
        if optimize and _is_tautology(rule):
            continue
        out.append(
            RewrittenRule(
                rule,
                RuleProvenance(
                    role="magic",
                    source_rule=rule_index,
                    target_position=position,
                    body_origins=(
                        BodyOrigin(
                            "guard" if position == 0 else "supplementary",
                            position,
                        ),
                    ),
                ),
            )
        )

    # modified rule: head :- sup_last, body[last..]
    anchor = 0 if last is None else last
    body: List[Literal] = [sup_literal(anchor)]
    origins: List[BodyOrigin] = [
        BodyOrigin("guard" if anchor == 0 else "supplementary", anchor)
    ]
    for position in range(anchor, len(adorned_rule.body)):
        body.append(adorned_rule.body[position])
        origins.append(BodyOrigin("literal", position))
    out.append(
        RewrittenRule(
            Rule(head, tuple(body)),
            RuleProvenance(
                role="modified",
                source_rule=rule_index,
                body_origins=tuple(origins),
            ),
        )
    )
    return out


def _is_tautology(rule: Rule) -> bool:
    return len(rule.body) == 1 and rule.body[0] == rule.head
