"""Generalized magic sets (GMS) -- Section 4.

Given the adorned program, define for each adorned derived predicate
``p^a`` (with at least one bound argument) a *magic predicate* holding
the bindings for which ``p^a`` must be computed, and modify the original
rules to fire only for those bindings.  Bottom-up evaluation of the
result simulates the sips (Theorem 4.1) and is *sip-optimal*
(Theorem 9.1): it computes exactly the subqueries and answers any
strategy following the sips must produce.

The transformation (Section 4):

1. a magic predicate ``magic_p^a`` per adorned predicate, of arity =
   number of ``b`` positions;
2. for each rule and each body occurrence of an adorned predicate with
   incoming sip arcs, a *magic rule*: its head collects the occurrence's
   bound arguments; its body joins the arc's tail (predicates of ``N``,
   plus their magic predicates, plus ``magic_p^a`` when ``p_h`` is in the
   tail).  Targets with several incoming arcs go through *label rules*;
3. every original rule gains magic guards;
4. the query contributes a *seed* fact ``magic_q^a(c)``.

With ``optimize=True`` the redundant-magic-literal deletions of
Propositions 4.2/4.3 are applied: a magic literal is dropped whenever the
rule also contains a magic literal of a sip-predecessor (the ``=>``
relation), which reproduces the simplified rule sets of Example 4 and
Appendix A.3.

Stratified programs (conservative extension): magic rules are emitted
only for *positive* body occurrences, and their bodies only ever join
positive literals (sip tails exclude negated occurrences).  Negated
literals ride along in the modified rules unchanged -- adorned
all-free by :mod:`repro.core.adornment`, so their definitions are
computed completely and the anti-joins stay sound.  They never receive
a magic guard and never seed a magic predicate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datalog.ast import Literal, Rule
from ..datalog.errors import RewriteError
from ..datalog.terms import Variable
from .adornment import AdornedProgram, AdornedRule
from .naming import label_name, magic_name
from .provenance import (
    BodyOrigin,
    RewrittenProgram,
    RewrittenRule,
    RuleProvenance,
)
from .sips import HEAD, SipArc

__all__ = ["magic_rewrite", "magic_literal_for", "prune_dominated_magic"]


def magic_literal_for(literal: Literal) -> Literal:
    """The magic literal of an adorned literal: ``magic_p^a(theta^b)``."""
    if literal.adornment is None:
        raise RewriteError(
            f"literal {literal} has no adornment; only adorned predicates "
            "have magic versions"
        )
    if "b" not in literal.adornment:
        raise RewriteError(
            f"literal {literal} has no bound arguments; all-free predicates "
            "have no magic version (their magic predicate would be the "
            "0-ary FALSE)"
        )
    return Literal(
        magic_name(literal.pred, literal.adornment), literal.bound_args()
    )


def _ordered_tail(arc: SipArc) -> List:
    """Tail nodes in canonical order: head first, then positions ascending."""
    nodes: List = []
    if arc.has_head():
        nodes.append(HEAD)
    nodes.extend(arc.tail_positions())
    return nodes


def _arc_body(
    adorned_rule: AdornedRule,
    arc: SipArc,
    include_magic: bool,
) -> Tuple[List[Literal], List[BodyOrigin]]:
    """The body literals encoding one sip arc's tail (Section 4, step 2)."""
    body: List[Literal] = []
    origins: List[BodyOrigin] = []
    for node in _ordered_tail(arc):
        if node == HEAD:
            body.append(magic_literal_for(adorned_rule.head))
            origins.append(BodyOrigin("guard"))
            continue
        literal = adorned_rule.body[node]
        if (
            include_magic
            and not literal.negated
            and literal.adornment is not None
            and "b" in literal.adornment
        ):
            body.append(magic_literal_for(literal))
            origins.append(BodyOrigin("magic", node))
        body.append(literal)
        origins.append(BodyOrigin("literal", node))
    return body, origins


def _label_arguments(
    adorned_rule: AdornedRule, label_vars
) -> Tuple[Variable, ...]:
    """Label-rule arguments: label variables in rule-occurrence order."""
    ordered = []
    for var in adorned_rule.rule.variables():
        if var in label_vars:
            ordered.append(var)
    return tuple(ordered)


def magic_rewrite(
    adorned: AdornedProgram,
    optimize: bool = True,
) -> RewrittenProgram:
    """Rewrite an adorned program by the generalized magic-sets method."""
    rewritten: List[RewrittenRule] = []
    for rule_index, adorned_rule in enumerate(adorned.rules):
        rewritten.extend(_magic_rules_for(adorned_rule, rule_index))
        rewritten.append(_modified_rule_for(adorned_rule, rule_index))

    if optimize:
        rewritten = [
            prune_dominated_magic(rr, adorned) for rr in rewritten
        ]
        rewritten = [rr for rr in rewritten if not _is_tautology(rr.rule)]

    query_literal = adorned.query_literal
    seeds: Tuple[Literal, ...]
    if "b" in query_literal.adornment:
        seeds = (magic_literal_for(query_literal),)
    else:
        seeds = ()

    free_positions = tuple(
        i for i, arg in enumerate(query_literal.args) if not arg.is_ground()
    )
    selection = tuple(
        (i, arg)
        for i, arg in enumerate(query_literal.args)
        if arg.is_ground()
    )
    return RewrittenProgram(
        method="magic",
        rules=rewritten,
        seed_facts=seeds,
        query=adorned.query,
        answer_pred_key=query_literal.pred_key,
        answer_selection=selection,
        answer_projection=free_positions,
        adorned=adorned,
        index_arity=0,
    )


def _magic_rules_for(
    adorned_rule: AdornedRule, rule_index: int
) -> List[RewrittenRule]:
    """Magic (and label) rules for every arc-fed body occurrence."""
    out: List[RewrittenRule] = []
    sip = adorned_rule.sip
    for position, literal in enumerate(adorned_rule.body):
        if literal.negated:
            # conservative restriction: negated occurrences never seed
            # a magic predicate (they are adorned all-free anyway, so
            # the next check would skip them -- this spells it out)
            continue
        if literal.adornment is None or "b" not in literal.adornment:
            continue
        arcs = sip.arcs_into(position)
        if not arcs:
            continue
        magic_head = magic_literal_for(literal)
        if len(arcs) == 1:
            body, origins = _arc_body(adorned_rule, arcs[0], True)
            out.append(
                RewrittenRule(
                    Rule(magic_head, tuple(body)),
                    RuleProvenance(
                        role="magic",
                        source_rule=rule_index,
                        target_position=position,
                        body_origins=tuple(origins),
                    ),
                )
            )
            continue
        # several arcs: one label rule per arc, magic rule joins the labels
        label_literals: List[Literal] = []
        for arc_index, arc in enumerate(arcs):
            args = _label_arguments(adorned_rule, arc.label)
            label_head = Literal(
                label_name(literal.pred, rule_index + 1, position + 1, arc_index),
                args,
            )
            body, origins = _arc_body(adorned_rule, arc, True)
            out.append(
                RewrittenRule(
                    Rule(label_head, tuple(body)),
                    RuleProvenance(
                        role="label",
                        source_rule=rule_index,
                        target_position=position,
                        body_origins=tuple(origins),
                    ),
                )
            )
            label_literals.append(label_head)
        out.append(
            RewrittenRule(
                Rule(magic_head, tuple(label_literals)),
                RuleProvenance(
                    role="magic",
                    source_rule=rule_index,
                    target_position=position,
                    body_origins=tuple(
                        BodyOrigin("label", position)
                        for _ in label_literals
                    ),
                ),
            )
        )
    return out


def _modified_rule_for(
    adorned_rule: AdornedRule, rule_index: int
) -> RewrittenRule:
    """The modified rule: magic guards inserted before each occurrence."""
    body: List[Literal] = []
    origins: List[BodyOrigin] = []
    head = adorned_rule.head
    if head.adornment is not None and "b" in head.adornment:
        body.append(magic_literal_for(head))
        origins.append(BodyOrigin("guard"))
    for position, literal in enumerate(adorned_rule.body):
        if (
            not literal.negated
            and literal.adornment is not None
            and "b" in literal.adornment
        ):
            body.append(magic_literal_for(literal))
            origins.append(BodyOrigin("magic", position))
        body.append(literal)
        origins.append(BodyOrigin("literal", position))
    return RewrittenRule(
        Rule(head, tuple(body)),
        RuleProvenance(
            role="modified",
            source_rule=rule_index,
            body_origins=tuple(origins),
        ),
    )


def prune_dominated_magic(
    rewritten_rule: RewrittenRule, adorned: AdornedProgram
) -> RewrittenRule:
    """Apply the deletions of Proposition 4.2 to one rewritten rule.

    A magic (or guard) literal corresponding to sip node ``p_j`` is
    deleted when the rule also contains a magic literal for ``p_i`` with
    ``p_i => p_j`` in the sip's precedence relation: the earlier magic
    literal (together with the tail literals) already enforces the
    restriction.
    """
    provenance = rewritten_rule.provenance
    if provenance.source_rule is None:
        return rewritten_rule
    adorned_rule = adorned.rules[provenance.source_rule]
    precedes = adorned_rule.sip.precedes()

    nodes: List[Optional[object]] = []
    for origin in provenance.body_origins:
        if origin.kind == "guard":
            nodes.append(HEAD)
        elif origin.kind == "magic":
            nodes.append(origin.position)
        else:
            nodes.append(None)
    magic_nodes = {n for n in nodes if n is not None}

    keep: List[int] = []
    for index, node in enumerate(nodes):
        if node is None:
            keep.append(index)
            continue
        dominated = any(
            other != node and node in precedes.get(other, ())
            for other in magic_nodes
        )
        if not dominated:
            keep.append(index)
    if len(keep) == len(nodes):
        return rewritten_rule
    new_body = tuple(rewritten_rule.rule.body[i] for i in keep)
    new_origins = tuple(provenance.body_origins[i] for i in keep)
    return rewritten_rule.with_rule(
        Rule(rewritten_rule.rule.head, new_body), new_origins
    )


def _is_tautology(rule: Rule) -> bool:
    """True for rules of the form ``p(x) :- p(x)`` (noted deletable in
    Appendix A.3.2)."""
    return len(rule.body) == 1 and rule.body[0] == rule.head
