"""The adorned rule set ``P^ad`` -- Section 3.

Given a program, a query, and a sip builder, construct the adorned
program: every derived predicate is specialized by the binding patterns
(adornments) in which it can be invoked, starting from the query's
pattern and propagating through the chosen sips.

Key paper rules implemented here:

* an argument of a body occurrence is bound in its adornment iff *all*
  its variables appear in the union ``chi_i`` of incoming arc labels
  (a constant argument is vacuously bound -- unless the occurrence has
  no incoming arc at all, in which case the adornment is all-free);
* one adorned version of a rule per adorned head predicate, with the sip
  chosen at "compile time" (no dynamic sip selection);
* the construction terminates because there are finitely many adornments.

The body of each adorned rule is reordered by the sip's total order
(condition 3'), which is the "canonical" form the appendix uses, and the
sip is remapped onto the reordered body so downstream transforms can
assume arcs only point right.

Stratified negation (conservative extension, Balbin et al. / Kemp
style): the paper's construction is defined for positive programs, but
safe stratified programs are accepted here with the standard
conservative treatment.  A negated body literal is a pure *consumer*:
at evaluation time every one of its variables is bound by the positive
part of the rule (the safe-negation rule guarantees a binder exists,
and the adorned body places negated literals after all positive ones),
so the anti-join always runs fully bound.  For *specialization*,
however, bindings are never pushed through negation: a negated derived
occurrence is adorned all-free, so its definition is reached at the
all-free adornment and computed **completely** -- an anti-join that
probed a magic-restricted (hence possibly incomplete) relation would
treat "not derived yet" as "false" and be unsound.  The rewrites then
carry negated literals unchanged and never emit magic rules for them.
Programs whose dependency graph cycles through negation are rejected
up front (:class:`~repro.datalog.errors.StratificationError`), as are
unsafe rules (:class:`~repro.datalog.errors.UnsafeNegationError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from ..datalog.analysis import stratify_or_raise
from ..datalog.ast import ALL_FREE, Literal, Program, Query, Rule
from ..datalog.errors import AdornmentError
from .sips import Sip, SipBuilder, build_full_sip

__all__ = ["AdornedRule", "AdornedProgram", "adorn_program"]


@dataclass(frozen=True)
class AdornedRule:
    """One adorned rule: head/body literals adorned, body in sip order.

    ``sip`` refers to positions of the *reordered* body.  ``source`` is
    the original rule (before adornment/reordering).
    """

    rule: Rule
    sip: Sip
    source: Rule

    @property
    def head(self) -> Literal:
        return self.rule.head

    @property
    def body(self) -> Tuple[Literal, ...]:
        return self.rule.body

    def __str__(self):
        return str(self.rule)


@dataclass
class AdornedProgram:
    """The adorned program ``P^ad`` with its query and sips."""

    rules: Tuple[AdornedRule, ...]
    query: Query
    query_literal: Literal  # the adorned query literal
    original: Program

    @property
    def program(self) -> Program:
        return Program(tuple(ar.rule for ar in self.rules))

    def adorned_predicates(self) -> Set[str]:
        return {ar.head.pred_key for ar in self.rules}

    def rules_for(self, pred_key: str) -> Tuple[AdornedRule, ...]:
        return tuple(ar for ar in self.rules if ar.head.pred_key == pred_key)

    def max_body_length(self) -> int:
        """The paper's ``t``: the largest number of body literals."""
        if not self.rules:
            return 0
        return max(len(ar.body) for ar in self.rules)

    def __len__(self):
        return len(self.rules)

    def __str__(self):
        lines = [str(ar.rule) for ar in self.rules]
        lines.append(f"% query: {self.query_literal}?")
        return "\n".join(lines)


def adorn_program(
    program: Program,
    query: Query,
    sip_builder: SipBuilder = build_full_sip,
    require_connected: bool = True,
) -> AdornedProgram:
    """Construct the adorned program for a query (Section 3).

    Worklist over adorned predicates: start from the query's adornment;
    for each unmarked adorned predicate and each rule defining it, choose
    a sip (via ``sip_builder``), derive the body adornments from the
    incoming labels, and enqueue any new adorned predicates.

    Theorem 3.1 / Corollary 3.2 guarantee ``(P, q)`` and
    ``(P^ad, q^a)`` are equivalent; the integration tests check this on
    random databases.  Stratified programs are adorned conservatively
    (see the module docstring): unsafe or unstratifiable negation is
    rejected here, before any rewrite work happens.
    """
    if program.has_negation():
        for rule in program.rules:
            rule.check_safe_negation()
        stratify_or_raise(program)
    program.validate(
        require_connected=require_connected, require_well_formed=False
    )
    derived_names = {rule.head.pred for rule in program.rules}

    def is_derived(literal: Literal) -> bool:
        return literal.pred in derived_names

    query_adornment = query.adornment
    if query.pred not in derived_names:
        raise AdornmentError(
            f"query predicate {query.pred} is not defined by the program"
        )

    adorned_rules: List[AdornedRule] = []
    worklist: List[Tuple[str, str]] = [(query.pred, query_adornment)]
    processed: Set[Tuple[str, str]] = set()

    while worklist:
        pred, adornment = worklist.pop(0)
        if (pred, adornment) in processed:
            continue
        processed.add((pred, adornment))
        for rule in program.rules_for_pred_name(pred):
            adorned_rule = _adorn_rule(rule, adornment, sip_builder, is_derived)
            adorned_rules.append(adorned_rule)
            for literal in adorned_rule.body:
                if literal.adornment is not None:
                    key = (literal.pred, literal.adornment)
                    if key not in processed:
                        worklist.append(key)

    query_literal = query.literal.with_adornment(query_adornment)
    return AdornedProgram(
        rules=tuple(adorned_rules),
        query=query,
        query_literal=query_literal,
        original=program,
    )


def _adorn_rule(
    rule: Rule,
    adornment: str,
    sip_builder: SipBuilder,
    is_derived: Callable[[Literal], bool],
) -> AdornedRule:
    """Produce the adorned version of one rule for one head adornment."""
    sip = sip_builder(rule, adornment, is_derived)
    order = sip.total_order()
    if rule.has_negation():
        # negated literals go last (after every positive literal, in
        # their sip order among themselves): they are consumers whose
        # anti-join needs the positive prefix to have bound all their
        # variables, and the rewrites read the adorned body as
        # "positive prefix, then carried-along negated literals"
        order = tuple(
            p for p in order if not rule.body[p].negated
        ) + tuple(p for p in order if rule.body[p].negated)
    position_map = {old: new for new, old in enumerate(order)}

    adorned_body: List[Optional[Literal]] = [None] * len(rule.body)
    for old_position, literal in enumerate(rule.body):
        if is_derived(literal):
            if literal.negated:
                # conservative restriction: never specialize through
                # negation -- the occurrence's definition is reached
                # all-free and computed completely, so the anti-join
                # probes the full relation (at probe time all its
                # variables are nevertheless bound by the positive
                # prefix; safe negation guarantees the binders exist)
                adorned_body[position_map[old_position]] = (
                    literal.with_adornment(ALL_FREE(literal.arity))
                )
                continue
            incoming = sip.incoming_label(old_position)
            if sip.arcs_into(old_position):
                bound_vars = set(incoming)
                letters = []
                for argument in literal.args:
                    arg_vars = set(argument.variables())
                    if arg_vars <= bound_vars:
                        letters.append("b")
                    else:
                        letters.append("f")
                body_adornment = "".join(letters)
            else:
                # no incoming arc: all-free (Section 3)
                body_adornment = "f" * literal.arity
            adorned_body[position_map[old_position]] = literal.with_adornment(
                body_adornment
            )
        else:
            adorned_body[position_map[old_position]] = literal

    adorned_head = rule.head.with_adornment(adornment)
    adorned = Rule(adorned_head, tuple(adorned_body))
    remapped_sip = sip.remapped(position_map, adorned)
    return AdornedRule(rule=adorned, sip=remapped_sip, source=rule)
