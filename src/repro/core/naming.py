"""Predicate-name mangling for the rewriting algorithms.

The rewrites introduce auxiliary predicates (magic, supplementary,
counting, indexed, labels).  Generated names fold the adornment in
(``magic_sg_bf`` for the paper's ``magic_sg^bf``), so each adorned
version gets its own relation.  Keeping the scheme in one place makes the
appendix-comparison tests readable and guards against collisions with
user predicates.
"""

from __future__ import annotations

from typing import Iterable, Set

__all__ = [
    "magic_name",
    "supplementary_name",
    "counting_name",
    "indexed_name",
    "supplementary_counting_name",
    "label_name",
    "is_generated_name",
    "is_indexed_name",
    "ensure_fresh",
]

_MAGIC_PREFIX = "magic_"
_COUNTING_PREFIX = "cnt_"
_INDEXED_MARK = "_ix_"
_SUP_PREFIX = "supmagic"
_SUPCNT_PREFIX = "supcnt"
_LABEL_PREFIX = "label_"


def magic_name(pred: str, adornment: str) -> str:
    """Name of the magic predicate for ``pred^adornment`` (Section 4)."""
    return f"{_MAGIC_PREFIX}{pred}_{adornment}"


def supplementary_name(rule_index: int, position: int) -> str:
    """Name of a supplementary magic predicate (Section 5).

    ``rule_index`` is the 1-based index of the adorned rule; ``position``
    the 1-based body position the predicate feeds: ``supmagicR_J`` is the
    join of the head bindings with body literals ``1 .. J-1``.
    """
    return f"{_SUP_PREFIX}{rule_index}_{position}"


def counting_name(pred: str, adornment: str) -> str:
    """Name of the counting predicate for ``pred^adornment`` (Section 6)."""
    return f"{_COUNTING_PREFIX}{pred}_{adornment}"


def indexed_name(pred: str, adornment: str) -> str:
    """Name of the indexed version ``p_ind`` of an adorned predicate."""
    return f"{pred}{_INDEXED_MARK}{adornment}"


def supplementary_counting_name(rule_index: int, position: int) -> str:
    """Name of a supplementary counting predicate (Section 7)."""
    return f"{_SUPCNT_PREFIX}{rule_index}_{position}"


def label_name(pred: str, rule_index: int, position: int, arc_index: int) -> str:
    """Name of a label predicate (Section 4, multiple arcs per target)."""
    return f"{_LABEL_PREFIX}{pred}_{rule_index}_{position}_{arc_index}"


def is_generated_name(pred: str) -> bool:
    """True when a predicate name looks like one of our generated names."""
    return (
        pred.startswith(_MAGIC_PREFIX)
        or pred.startswith(_COUNTING_PREFIX)
        or pred.startswith(_SUP_PREFIX)
        or pred.startswith(_SUPCNT_PREFIX)
        or pred.startswith(_LABEL_PREFIX)
        or _INDEXED_MARK in pred
    )


def is_indexed_name(pred: str) -> bool:
    """True for indexed (``p_ind``) predicate names."""
    return _INDEXED_MARK in pred and not (
        pred.startswith(_COUNTING_PREFIX) or pred.startswith(_MAGIC_PREFIX)
    )


def ensure_fresh(name: str, taken: Iterable[str]) -> str:
    """Suffix underscores until ``name`` avoids every name in ``taken``."""
    taken_set: Set[str] = set(taken)
    fresh = name
    while fresh in taken_set:
        fresh += "_"
    return fresh
