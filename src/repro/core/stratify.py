"""Stratified negation: dependency strata for negation-as-failure.

The paper's programs are positive Horn clauses, but the scenarios magic
sets are routinely applied to -- bill-of-materials with exception lists,
reachability avoiding a node set, set-difference views -- need negated
body literals.  This module supplies the classic *stratified* semantics
[Apt, Blair & Walden; Van Gelder]:

* build the predicate dependency graph with polarity labels (an edge is
  *negative* when the body occurrence is negated);
* reject programs whose dependency graph has a cycle through negation
  (:class:`~repro.datalog.errors.StratificationError` -- such programs
  have no stratified model);
* otherwise emit a stratum numbering: base predicates at stratum 0,
  every positive dependency within a stratum, every negative dependency
  pointing strictly downward.

The bottom-up engines (:mod:`repro.datalog.engine`) consume the rule
partition directly: each stratum is evaluated to its fixpoint before any
higher stratum runs, so a negated literal always probes a *completed*
relation and negation-as-failure coincides with set complement.  The
planner compiles negated literals as anti-joins against those completed
relations.

Safe negation (every variable of a negated literal bound by a positive
literal of the same rule) is checked separately -- see
:func:`repro.core.safety.check_safe_negation`.

The magic/supplementary rewrites accept stratified programs through the
conservative extension (Balbin et al. / Kemp style) implemented in
:mod:`repro.core.adornment`: bindings are never pushed through
negation, negated occurrences are carried into the rewritten rules
unchanged, and the rewrite pipeline re-stratifies its output via
:func:`stratify_or_raise` (the conservative rewrite preserves
stratifiability; a failure there is an internal invariant violation).
The counting rewrites and the QSQ evaluator remain positive-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..datalog.analysis import polarity_edges, stratify_rules
from ..datalog.analysis import stratify_or_raise as _stratify_or_raise
from ..datalog.ast import Program
from ..datalog.errors import StratificationError

__all__ = [
    "Stratification",
    "stratify",
    "stratify_or_raise",
    "is_stratified",
    "check_stratified",
]


@dataclass(frozen=True)
class Stratification:
    """A stratum ordering for a program.

    ``predicate_stratum`` maps every predicate key (base and derived) to
    its stratum number; ``rule_strata`` partitions the program's rule
    indexes by head stratum, lowest stratum first, original rule order
    preserved within a stratum.
    """

    program: Program
    predicate_stratum: Dict[str, int]
    rule_strata: Tuple[Tuple[int, ...], ...]

    def __len__(self) -> int:
        """The number of (non-empty) rule strata."""
        return len(self.rule_strata)

    def stratum_of(self, pred_key: str) -> int:
        """The stratum of a predicate (base predicates sit at 0)."""
        return self.predicate_stratum.get(pred_key, 0)

    def stratum_programs(self) -> Tuple[Program, ...]:
        """One subprogram per stratum, in evaluation order."""
        return tuple(
            Program(tuple(self.program.rules[i] for i in indexes))
            for indexes in self.rule_strata
        )

    def negative_edges(self) -> Tuple[Tuple[str, str], ...]:
        """The (head, dependency) pairs linked through negation."""
        return tuple(
            (head, dep)
            for head, dep, negative in polarity_edges(self.program)
            if negative
        )

    def __str__(self) -> str:
        lines: List[str] = []
        for number, indexes in enumerate(self.rule_strata):
            heads = sorted(
                {self.program.rules[i].head.pred_key for i in indexes}
            )
            lines.append(
                f"stratum {number}: {', '.join(heads)} "
                f"({len(indexes)} rules)"
            )
        return "\n".join(lines)


def stratify(program: Program) -> Stratification:
    """Stratify a program, rejecting recursion through negation.

    Raises :class:`StratificationError` when the dependency graph has a
    cycle containing a negative edge.  A positive program stratifies
    into a single stratum, so the engines can stratify unconditionally.
    """
    predicate_stratum, rule_strata = stratify_rules(program)
    return Stratification(
        program=program,
        predicate_stratum=predicate_stratum,
        rule_strata=rule_strata,
    )


def stratify_or_raise(program: Program, context: str = "") -> Stratification:
    """:func:`stratify`, prefixing failures with a caller context.

    The rewrite pipeline calls this on rewrite *output*: the
    conservative magic rewrites preserve stratifiability, so a failure
    with a ``context`` names the rewrite invariant that broke rather
    than blaming the input program.
    """
    predicate_stratum, rule_strata = _stratify_or_raise(program, context)
    return Stratification(
        program=program,
        predicate_stratum=predicate_stratum,
        rule_strata=rule_strata,
    )


def is_stratified(program: Program) -> bool:
    """True when the program admits a stratification."""
    try:
        stratify_rules(program)
    except StratificationError:
        return False
    return True


def check_stratified(program: Program) -> None:
    """Raise :class:`StratificationError` unless stratified."""
    stratify_rules(program)
